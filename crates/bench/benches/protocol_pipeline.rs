//! End-to-end pipeline bench: one complete poll round (agent request
//! handling + content generation + snippet application), the unit of work
//! behind every synchronization in Figures 6–8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rcb_browser::{Browser, BrowserKind};
use rcb_core::agent::{AgentConfig, CacheMode, RcbAgent};
use rcb_core::snippet::AjaxSnippet;
use rcb_crypto::SessionKey;
use rcb_origin::OriginRegistry;
use rcb_sim::link::Pipe;
use rcb_sim::profiles::NetProfile;
use rcb_util::{DetRng, SimDuration, SimTime};

fn loaded_host(site: &str) -> Browser {
    let mut origins = OriginRegistry::with_alexa20();
    let profile = NetProfile::lan();
    let mut pipe = Pipe::new(profile.host_origin);
    let mut b = Browser::new(BrowserKind::Firefox);
    b.navigate(
        &rcb_url::Url::parse(&format!("http://{site}/")).unwrap(),
        &mut origins,
        &mut pipe,
        &profile,
        SimTime::ZERO,
    )
    .unwrap();
    b
}

fn bench_poll_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("poll_round");
    for site in ["google.com", "cnn.com"] {
        let key = SessionKey::generate_deterministic(&mut DetRng::new(1));
        let mut host = loaded_host(site);
        group.bench_function(BenchmarkId::new("full_sync", site), |b| {
            b.iter(|| {
                // Fresh agent/snippet each iteration so content is always
                // regenerated (the expensive path).
                let mut agent = RcbAgent::new(
                    key.clone(),
                    AgentConfig::builder()
                        .cache_mode(CacheMode::NonCache)
                        .build(),
                );
                let mut snippet = AjaxSnippet::new(1, key.clone(), SimDuration::from_secs(1));
                let mut participant = Browser::new(BrowserKind::Firefox);
                participant.doc = Some(rcb_html::parse_document(&agent.initial_page()));
                let poll = snippet.build_poll();
                let outcome = agent.handle_request(&poll, &mut host, SimTime::from_secs(1));
                snippet
                    .process_response(&outcome.response, &mut participant)
                    .unwrap()
            })
        });

        // The steady-state path: no content change, empty response.
        let key2 = SessionKey::generate_deterministic(&mut DetRng::new(2));
        let mut agent = RcbAgent::new(key2.clone(), AgentConfig::default());
        let mut snippet = AjaxSnippet::new(1, key2, SimDuration::from_secs(1));
        let mut participant = Browser::new(BrowserKind::Firefox);
        participant.doc = Some(rcb_html::parse_document(&agent.initial_page()));
        let first = snippet.build_poll();
        let outcome = agent.handle_request(&first, &mut host, SimTime::from_secs(1));
        snippet
            .process_response(&outcome.response, &mut participant)
            .unwrap();
        group.bench_function(BenchmarkId::new("idle_poll", site), |b| {
            b.iter(|| {
                let poll = snippet.build_poll();
                let outcome = agent.handle_request(&poll, &mut host, SimTime::from_secs(2));
                assert!(outcome.response.body.is_empty());
                outcome
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_poll_round
}
criterion_main!(benches);
