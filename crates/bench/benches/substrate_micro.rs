//! Microbenchmarks of the substrate crates on the protocol's hot paths:
//! HTML parsing, innerHTML serialization, Fig.-4 XML write/read, the JS
//! escape pair, HMAC signing, and HTTP parsing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rcb_crypto::SessionKey;
use rcb_origin::sites::{generate_homepage, site_by_index};
use rcb_util::DetRng;

fn bench_html(c: &mut Criterion) {
    let mut group = c.benchmark_group("html");
    for (idx, label) in [
        (2usize, "google_6.8k"),
        (7, "wikipedia_51.7k"),
        (13, "amazon_228.5k"),
    ] {
        let spec = site_by_index(idx).unwrap();
        let html = generate_homepage(&spec);
        group.throughput(Throughput::Bytes(html.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", label), &html, |b, html| {
            b.iter(|| rcb_html::parse_document(html))
        });
        let doc = rcb_html::parse_document(&html);
        group.bench_with_input(BenchmarkId::new("serialize", label), &doc, |b, doc| {
            b.iter(|| rcb_html::serialize::serialize_document(doc))
        });
    }
    group.finish();
}

fn bench_escape(c: &mut Criterion) {
    let spec = site_by_index(7).unwrap();
    let html = generate_homepage(&spec);
    let mut group = c.benchmark_group("jsescape");
    group.throughput(Throughput::Bytes(html.len() as u64));
    group.bench_function("escape_51.7k", |b| {
        b.iter(|| rcb_url::jsescape::escape(&html))
    });
    let escaped = rcb_url::jsescape::escape(&html);
    group.bench_function("unescape_51.7k", |b| {
        b.iter(|| rcb_url::jsescape::unescape(&escaped))
    });
    group.finish();
}

fn bench_xml(c: &mut Criterion) {
    use rcb_xml::{write_new_content, ElementPayload, NewContent, TopLevel};
    let spec = site_by_index(7).unwrap();
    let html = generate_homepage(&spec);
    let doc = rcb_html::parse_document(&html);
    let body = doc.body().unwrap();
    let nc = NewContent {
        doc_time: 1,
        head_children: vec![ElementPayload::new("title", "bench")],
        top: TopLevel::Body(ElementPayload {
            tag: "body".into(),
            attrs: vec![],
            inner_html: rcb_html::inner_html(&doc, body),
        }),
        user_actions: String::new(),
    };
    let mut group = c.benchmark_group("figure4_xml");
    group.bench_function("write_51.7k", |b| b.iter(|| write_new_content(&nc)));
    let xml = write_new_content(&nc);
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("parse_51.7k", |b| {
        b.iter(|| rcb_xml::parse_new_content(&xml).unwrap().unwrap())
    });
    group.finish();
}

fn bench_crypto_http(c: &mut Criterion) {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(1));
    let mut group = c.benchmark_group("protocol");
    // A representative polling request: tiny body, signed URI.
    let body = b"t=1244937600000\ninput|shipping|street|653+5th+Ave".to_vec();
    group.bench_function("sign_poll_request", |b| {
        b.iter(|| {
            let mut req = rcb_http::Request::post("/poll?p=3", body.clone());
            rcb_core::auth::sign_request(&key, &mut req);
            req
        })
    });
    let mut signed = rcb_http::Request::post("/poll?p=3", body);
    rcb_core::auth::sign_request(&key, &mut signed);
    group.bench_function("verify_poll_request", |b| {
        b.iter(|| rcb_core::auth::verify_request(&key, &signed))
    });
    let wire = rcb_http::serialize::serialize_request(&signed);
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("http_parse_poll", |b| {
        b.iter(|| rcb_http::parse_request(&wire).unwrap())
    });
    group.finish();

    let mut sha = c.benchmark_group("sha256");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xABu8; size];
        sha.throughput(Throughput::Bytes(size as u64));
        sha.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| rcb_crypto::Sha256::digest(d))
        });
    }
    sha.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_html, bench_escape, bench_xml, bench_crypto_http
}
criterion_main!(benches);
