//! Criterion benches for Table 1's CPU columns.
//!
//! `m5_noncache/<site>` and `m5_cache/<site>` time the agent's response
//! content generation (Fig. 3); `m6/<site>` times the snippet's four-step
//! content update (Fig. 5). Three representative page sizes span the
//! Table-1 range (6.8 KB → 228.5 KB).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rcb_browser::{Browser, BrowserKind};
use rcb_cache::MappingTable;
use rcb_core::agent::CacheMode;
use rcb_core::content::generate_content;
use rcb_core::snippet::apply_new_content;
use rcb_crypto::SessionKey;
use rcb_origin::OriginRegistry;
use rcb_sim::link::Pipe;
use rcb_sim::profiles::NetProfile;
use rcb_util::{DetRng, SimTime};

const SITES: [&str; 3] = ["google.com", "wikipedia.org", "amazon.com"];

fn loaded_host(site: &str) -> Browser {
    let mut origins = OriginRegistry::with_alexa20();
    let profile = NetProfile::lan();
    let mut pipe = Pipe::new(profile.host_origin);
    let mut b = Browser::new(BrowserKind::Firefox);
    b.navigate(
        &rcb_url::Url::parse(&format!("http://{site}/")).unwrap(),
        &mut origins,
        &mut pipe,
        &profile,
        SimTime::ZERO,
    )
    .unwrap();
    b
}

fn bench_m5(c: &mut Criterion) {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(1));
    let mut group = c.benchmark_group("table1_m5");
    for site in SITES {
        let host = loaded_host(site);
        group.bench_with_input(BenchmarkId::new("noncache", site), &host, |b, host| {
            b.iter(|| {
                let mut m = MappingTable::new();
                generate_content(host, CacheMode::NonCache, &mut m, &key, "", 1, "").unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cache", site), &host, |b, host| {
            b.iter(|| {
                let mut m = MappingTable::new();
                generate_content(host, CacheMode::Cache, &mut m, &key, "", 1, "").unwrap()
            })
        });
    }
    group.finish();
}

fn bench_m6(c: &mut Criterion) {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(1));
    let mut group = c.benchmark_group("table1_m6");
    for site in SITES {
        let host = loaded_host(site);
        let mut m = MappingTable::new();
        let gc = generate_content(&host, CacheMode::NonCache, &mut m, &key, "", 1, "").unwrap();
        let nc = rcb_xml::parse_new_content(&gc.xml).unwrap().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(site), &nc, |b, nc| {
            b.iter(|| {
                let mut doc = rcb_html::parse_document(
                    "<html><head><script id=\"ajax-snippet\">/*rcb*/</script></head><body></body></html>",
                );
                apply_new_content(&mut doc, BrowserKind::Firefox, &nc.head_children, &nc.top)
                    .unwrap();
                doc
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_m5, bench_m6
}
criterion_main!(benches);
