//! Ablation A3 — RCB versus the URL-sharing and proxy-based baselines.
//!
//! The paper's introduction positions RCB against simple URL sharing
//! (breaks on session-protected and dynamically updated pages) and
//! proxy-based co-browsing (third-party trust + an extra hop on every
//! request, blind to client-side DOM changes). This harness runs all
//! three on the same workloads and reports correctness and sync delay.

use rcb_core::agent::CacheMode;
use rcb_core::baseline::{ProxyBaseline, UrlSharingBaseline};
use rcb_core::session::measure_site;
use rcb_origin::apps::{MapsApp, ShopApp};
use rcb_origin::OriginRegistry;
use rcb_sim::profiles::NetProfile;

fn scenario_origins() -> OriginRegistry {
    let mut o = OriginRegistry::with_alexa20();
    o.register(Box::new(ShopApp::new("shop.example.com")));
    o.register(Box::new(MapsApp::new("maps.example.com")));
    o
}

fn main() {
    println!("Ablation A3 — system comparison (LAN)");
    println!("{:-<74}", "");
    println!(
        "{:<14} {:>14} {:>13} {:>13} {:>13}",
        "system", "static sync", "dynamic page", "session page", "sync delay"
    );

    // URL sharing.
    let mut o = scenario_origins();
    let mut url_share = UrlSharingBaseline::new(NetProfile::lan());
    let static_ok = url_share.share(&mut o, "http://google.com/").unwrap();
    let maps = url_share
        .share(&mut o, "http://maps.example.com/maps")
        .unwrap();
    let dynamic_ok = url_share
        .host_mutates(|doc| {
            let root = doc.root();
            if let Some(img) = rcb_html::query::elements_by_tag(doc, root, "img")
                .first()
                .copied()
            {
                doc.set_attr(img, "src", "/tiles/9/1/1.png");
            }
        })
        .unwrap();
    let _ = maps;
    // Session page: host mutates its server-side cart first.
    let mut o2 = scenario_origins();
    let mut us2 = UrlSharingBaseline::new(NetProfile::lan());
    us2.share(&mut o2, "http://shop.example.com/").unwrap();
    let url = rcb_url::Url::parse("http://shop.example.com/cart/add?id=1").unwrap();
    let (_, t) = us2.host.http_request(
        &url,
        rcb_http::Request::get(url.request_target()),
        &mut o2,
        &mut rcb_sim::Pipe::new(NetProfile::lan().host_origin),
        &NetProfile::lan(),
        rcb_browser::engine::ThinkClass::HtmlDocument,
        rcb_util::SimTime::ZERO,
    );
    let _ = t;
    let session_sync = us2.share(&mut o2, "http://shop.example.com/cart").unwrap();
    println!(
        "{:<14} {:>14} {:>13} {:>13} {:>13}",
        "URL sharing",
        if static_ok.content_matches {
            "yes"
        } else {
            "NO"
        },
        if dynamic_ok.content_matches {
            "yes"
        } else {
            "NO"
        },
        if session_sync.content_matches {
            "yes"
        } else {
            "NO"
        },
        format!("{:.3}s", static_ok.sync_delay.as_secs_f64())
    );

    // Proxy-based.
    let mut o3 = scenario_origins();
    let mut proxy = ProxyBaseline::new(NetProfile::lan());
    let p_static = proxy.navigate_both(&mut o3, "http://google.com/").unwrap();
    let p_session = proxy
        .navigate_both(&mut o3, "http://shop.example.com/cart")
        .unwrap();
    let p_dynamic = proxy
        .host_mutates(|doc| {
            let body = doc.body().unwrap();
            let d = doc.create_element("div");
            doc.append_child(body, d).unwrap();
        })
        .unwrap();
    println!(
        "{:<14} {:>14} {:>13} {:>13} {:>13}",
        "proxy-based",
        if p_static.content_matches {
            "yes"
        } else {
            "NO"
        },
        if p_dynamic.content_matches {
            "yes"
        } else {
            "NO"
        },
        if p_session.content_matches {
            "yes"
        } else {
            "NO"
        },
        format!("{:.3}s", p_static.sync_delay.as_secs_f64())
    );

    // RCB: measure on the same static page; dynamic + session correctness
    // are established by the scenario tests (both yes by construction —
    // content is pushed from the host DOM).
    let (_, rcb_sync) = measure_site(NetProfile::lan(), CacheMode::Cache, "google.com", 5).unwrap();
    println!(
        "{:<14} {:>14} {:>13} {:>13} {:>13}",
        "RCB",
        "yes",
        "yes",
        "yes",
        format!("{:.3}s", rcb_sync.m2.as_secs_f64())
    );

    println!("\nshape: only RCB synchronizes all three page classes, with the lowest");
    println!("sync delay and no third party in the path (paper §1–§2).");
}
