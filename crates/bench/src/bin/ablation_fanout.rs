//! Ablation A2 — participant fan-out.
//!
//! §4.1.2: "the whole response content generation procedure is executed
//! only once for each new document content, and the generated XML format
//! response content is reusable for multiple participant browsers."
//! This ablation scales the participant count and shows (a) generations
//! stay at one per page regardless of fan-out, and (b) how the last
//! participant's sync completion time grows as the host uplink serializes
//! the deliveries.

use rcb_browser::BrowserKind;
use rcb_core::agent::{AgentConfig, CacheMode};
use rcb_core::session::CoBrowsingWorld;
use rcb_sim::profiles::NetProfile;
use rcb_util::SimDuration;

fn main() {
    println!("Ablation A2 — participant fan-out (LAN and WAN, cnn.com)");
    println!("{:-<76}", "");
    println!(
        "{:>5} {:>12} {:>13} {:>18} {:>18}",
        "N", "profile", "generations", "first sync m2", "last sync m2"
    );
    for profile in [NetProfile::lan(), NetProfile::wan()] {
        for n in [1usize, 2, 4, 8, 16, 32] {
            let config = AgentConfig::builder().cache_mode(CacheMode::Cache).build();
            let mut world = CoBrowsingWorld::with_alexa20(profile.clone(), config, n as u64);
            let participants: Vec<usize> = (0..n)
                .map(|_| world.add_participant(BrowserKind::Firefox))
                .collect();
            world.host_navigate("http://cnn.com/").unwrap();
            // All snippets poll within the same interval tick: reset the
            // clock to the same instant per participant so deliveries
            // contend on the shared host access link.
            let t0 = world.now;
            let mut first = SimDuration::ZERO;
            let mut last = SimDuration::ZERO;
            for (i, &p) in participants.iter().enumerate() {
                world.now = t0;
                let (sync, _) = world.poll_participant(p).unwrap();
                let m2 = sync.expect("content on first poll").m2;
                if i == 0 {
                    first = m2;
                }
                last = last.max(m2);
            }
            println!(
                "{:>5} {:>12} {:>13} {:>18} {:>18}",
                n,
                profile.name,
                world.host.agent.stats.generations.get(),
                first.to_string(),
                last.to_string()
            );
        }
    }
    println!("\nshape: exactly one generation per page at every fan-out (content reuse);");
    println!("the last participant's delivery queues behind earlier documents *and their");
    println!("cache-mode object downloads* on the shared host uplink — mild on 100 Mbps");
    println!("Ethernet, prohibitive on the 384 Kbps WAN uplink. Cache mode should be");
    println!("switched off per participant as fan-out grows on slow uplinks (the per-");
    println!("object mode flexibility of §4.1.2).");
}
