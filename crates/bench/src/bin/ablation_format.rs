//! Ablation A4 — the content format choice.
//!
//! §4.1.2 argues the Fig.-4 XML format "combines both the structural
//! advantages of using DOM and the performance and simplicity advantages
//! of using innerHTML". This ablation compares three designs for moving a
//! document update to a participant:
//!
//! 1. **RCB (Fig. 4)** — per-top-element payloads, JS-escaped in CDATA;
//! 2. **naive full-page resend** — raw outerHTML of the whole document
//!    (no structure: snippet placement, head preservation and partial
//!    updates all become the client's problem);
//! 3. **per-node DOM protocol** — one XML element per DOM node (pure
//!    structure: maximal flexibility, heavy encode cost and bytes).
//!
//! Reported: wire bytes and encode CPU per site, on three Table-1 sizes.

use rcb_browser::{Browser, BrowserKind};
use rcb_cache::MappingTable;
use rcb_core::agent::CacheMode;
use rcb_core::content::generate_content;
use rcb_crypto::SessionKey;
use rcb_html::dom::{Document, NodeData, NodeId};
use rcb_origin::OriginRegistry;
use rcb_sim::link::Pipe;
use rcb_sim::profiles::NetProfile;
use rcb_util::{DetRng, SimTime, Stopwatch};

fn loaded_host(site: &str) -> Browser {
    let mut origins = OriginRegistry::with_alexa20();
    let profile = NetProfile::lan();
    let mut pipe = Pipe::new(profile.host_origin);
    let mut b = Browser::new(BrowserKind::Firefox);
    b.navigate(
        &rcb_url::Url::parse(&format!("http://{site}/")).unwrap(),
        &mut origins,
        &mut pipe,
        &profile,
        SimTime::ZERO,
    )
    .unwrap();
    b
}

/// The per-node strawman: every DOM node becomes its own XML element.
fn per_node_encode(doc: &Document, node: NodeId, out: &mut String) {
    match doc.data(node) {
        NodeData::Element { tag, attrs } => {
            out.push_str(&format!("<n t=\"{tag}\""));
            for (i, (k, v)) in attrs.iter().enumerate() {
                out.push_str(&format!(
                    " a{i}=\"{}={}\"",
                    k,
                    rcb_xml::scanner::encode_attr(v)
                ));
            }
            out.push('>');
            for &c in doc.children(node) {
                per_node_encode(doc, c, out);
            }
            out.push_str("</n>");
        }
        NodeData::Text(t) => {
            out.push_str(&format!(
                "<x><![CDATA[{}]]></x>",
                rcb_url::jsescape::escape(t)
            ));
        }
        NodeData::Comment(_) | NodeData::Doctype(_) | NodeData::Document => {}
    }
}

fn main() {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(1));
    println!("Ablation A4 — content format comparison (encode CPU + wire bytes)");
    println!("{:-<86}", "");
    println!(
        "{:<14} {:>9} | {:>11} {:>10} | {:>11} {:>10} | {:>11} {:>10}",
        "site",
        "page KB",
        "rcb bytes",
        "rcb cpu",
        "naive bytes",
        "naive cpu",
        "pernode B",
        "pernode cpu"
    );
    for site in ["google.com", "wikipedia.org", "amazon.com"] {
        let host = loaded_host(site);
        let doc = host.doc.as_ref().unwrap();
        let kb = rcb_origin::sites::TABLE1_SIZES_KB
            .iter()
            .find(|(_, s, _)| *s == site)
            .map(|(_, _, kb)| *kb)
            .unwrap();

        // RCB Fig.-4 format (best of 5).
        let mut rcb_bytes = 0;
        let mut rcb_cpu = u64::MAX;
        for _ in 0..5 {
            let mut m = MappingTable::new();
            let sw = Stopwatch::start();
            let gc = generate_content(&host, CacheMode::NonCache, &mut m, &key, "", 1, "").unwrap();
            rcb_cpu = rcb_cpu.min(sw.elapsed().as_micros());
            rcb_bytes = gc.xml.len();
        }

        // Naive full-document resend.
        let mut naive_bytes = 0;
        let mut naive_cpu = u64::MAX;
        for _ in 0..5 {
            let sw = Stopwatch::start();
            let s = rcb_html::serialize::serialize_document(doc);
            naive_cpu = naive_cpu.min(sw.elapsed().as_micros());
            naive_bytes = s.len();
        }

        // Per-node protocol.
        let mut pn_bytes = 0;
        let mut pn_cpu = u64::MAX;
        for _ in 0..5 {
            let sw = Stopwatch::start();
            let mut s = String::new();
            per_node_encode(doc, doc.document_element().unwrap(), &mut s);
            pn_cpu = pn_cpu.min(sw.elapsed().as_micros());
            pn_bytes = s.len();
        }

        println!(
            "{:<14} {:>9.1} | {:>11} {:>9}us | {:>11} {:>9}us | {:>11} {:>9}us",
            site, kb, rcb_bytes, rcb_cpu, naive_bytes, naive_cpu, pn_bytes, pn_cpu
        );
    }
    println!("\nshape: the naive resend is cheapest to encode but loses the structural");
    println!("guarantees (snippet survival, per-element head updates, frames switching);");
    println!("the per-node protocol pays the most CPU and bytes; Fig. 4 sits between —");
    println!("structure exactly where the update algorithm needs it, innerHTML elsewhere.");
}
