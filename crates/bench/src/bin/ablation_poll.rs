//! Ablation A1 — the poll-interval trade-off.
//!
//! The paper fixed the Ajax-Snippet polling interval at one second,
//! arguing users' average think time is ~10 s (§5.1.1). This ablation
//! sweeps the interval and measures both sides of the trade: how stale a
//! participant's view can get (worst-case sync lag after a host change)
//! versus how many requests the host must absorb per minute of idle
//! session.

use rcb_browser::BrowserKind;
use rcb_core::agent::{AgentConfig, CacheMode};
use rcb_core::session::CoBrowsingWorld;
use rcb_sim::profiles::NetProfile;
use rcb_util::SimDuration;

fn main() {
    println!("Ablation A1 — poll interval sweep (LAN, wikipedia.org)");
    println!("{:-<72}", "");
    println!(
        "{:>12} {:>16} {:>20} {:>16}",
        "interval", "polls/min idle", "worst-case lag", "mean sync m2"
    );
    for interval_ms in [100u64, 250, 500, 1000, 2000, 5000] {
        let config = AgentConfig::builder()
            .cache_mode(CacheMode::Cache)
            .poll_interval(SimDuration::from_millis(interval_ms))
            .build();
        let mut world = CoBrowsingWorld::with_alexa20(NetProfile::lan(), config, interval_ms);
        let p = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://wikipedia.org/").unwrap();
        let (first, _) = world.poll_participant(p).unwrap();
        let m2 = first.expect("initial sync").m2;

        // Idle-phase cost: polls for one virtual minute without changes.
        let start_polls = world.host.agent.stats.polls_empty.get();
        let idle_rounds = (60_000 / interval_ms) as usize;
        for _ in 0..idle_rounds {
            world.sleep(SimDuration::from_millis(interval_ms));
            world.poll_participant(p).unwrap();
        }
        let polls_per_min = world.host.agent.stats.polls_empty.get() - start_polls;

        // Staleness: a change can land right after a poll; worst-case lag
        // is one full interval plus the sync time itself.
        let worst_lag = SimDuration::from_millis(interval_ms) + m2;
        println!(
            "{:>12} {:>16} {:>20} {:>16}",
            format!("{} ms", interval_ms),
            polls_per_min,
            worst_lag.to_string(),
            m2.to_string()
        );
    }
    println!("\nshape: staleness scales with the interval; request load scales inversely —");
    println!("1 s sits where worst-case lag (~1 s) stays well under the ~10 s think time.");
}
