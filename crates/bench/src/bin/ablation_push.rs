//! Ablation A5 — poll-based vs `multipart/x-mixed-replace` push (§3.2.3).
//!
//! The paper chose polling and asserted the push alternative "increases
//! the complexity of co-browsing synchronization and decreases its
//! reliability". This ablation quantifies the trade: expected sync delay
//! of both models across poll intervals and stream-reliability levels,
//! plus a sampled run of the push stream model.

use rcb_core::push::{expected_sync_delay, PushDelivery, PushStream};
use rcb_sim::link::{Direction, LinkSpec, Pipe};
use rcb_sim::profiles::NetProfile;
use rcb_util::{SimDuration, SimTime};

fn main() {
    // Representative update: a wikipedia-sized Fig.-4 payload on the LAN.
    let profile = NetProfile::lan();
    let mut pipe = Pipe::new(profile.host_participant);
    let payload = 72 * 1024; // escaped 51.7 KB document
    let transfer = pipe
        .transfer(SimTime::ZERO, payload, Direction::Down)
        .since(SimTime::ZERO);

    println!("Ablation A5 — polling vs multipart/x-mixed-replace push");
    println!(
        "update payload: {} KB → transfer {} on the LAN path\n",
        payload / 1024,
        transfer
    );
    println!(
        "{:>12} {:>12} | {:>14} {:>14} {:>10}",
        "interval", "drop prob", "poll expected", "push expected", "winner"
    );
    for interval_ms in [250u64, 1000, 5000] {
        for drop in [0.0, 0.01, 0.03, 0.10] {
            let (poll, push) = expected_sync_delay(
                SimDuration::from_millis(interval_ms),
                transfer,
                drop,
                SimDuration::from_secs(5),
            );
            println!(
                "{:>12} {:>12} | {:>14} {:>14} {:>10}",
                format!("{} ms", interval_ms),
                format!("{:.0}%", drop * 100.0),
                poll.to_string(),
                push.to_string(),
                if push < poll { "push" } else { "poll" }
            );
        }
    }

    // Sampled stream behaviour at the default reliability model.
    let mut stream = PushStream::new(2009);
    let mut worst = SimDuration::ZERO;
    let mut delivered = 0u32;
    for i in 0..1_000 {
        let sent = SimTime::from_secs(i);
        match stream.deliver(sent, transfer) {
            PushDelivery::Delivered { at } => {
                delivered += 1;
                worst = worst.max(at.since(sent));
            }
            PushDelivery::StreamBroken { recovered_at } => {
                worst = worst.max(recovered_at.since(sent));
            }
        }
    }
    println!(
        "\nsampled stream (1000 updates, {:.1}% loss): {} delivered, worst-case gap {}",
        stream.loss_rate() * 100.0,
        delivered,
        worst
    );
    println!("\nshape: push wins on mean latency while the stream holds, but its tail is");
    println!("the recovery timeout — with 2009-era intermediary behaviour (~3% breaks),");
    println!("the worst-case user experience is strictly worse than a 1 s poll, matching");
    println!("the paper's reliability argument for poll-based synchronization.");

    // And a second channel is now needed for actions: each user action
    // pays its own POST instead of riding a poll.
    let action_req = 420; // signed action POST
    let t = Pipe::new(LinkSpec::symmetric(
        100_000_000,
        SimDuration::from_micros(150),
    ))
    .transfer(SimTime::ZERO, action_req, Direction::Up)
    .since(SimTime::ZERO);
    println!("\naction side-channel cost under push: one {action_req}-byte POST ({t}) per action,");
    println!("vs. zero marginal requests when piggybacked on polls (§4.1.1).");
}
