//! Extension — the §6 mobile experiment (Fennec on a Nokia N810).
//!
//! The paper's future work reports that RCB-Agent, ported to Fennec on an
//! N810 Internet tablet, "can also efficiently support co-browsing using
//! mobile devices". This harness runs the same M1/M2 sweep on the mobile
//! profile (slow cellular backhaul for the host, Wi-Fi to participants)
//! with a CPU slow-down factor applied to the agent's generation cost —
//! an ARM11 at 400 MHz is orders of magnitude slower than this machine.

use rcb_bench::{print_two_series, run_all_sites_quick};
use rcb_core::agent::CacheMode;
use rcb_sim::profiles::NetProfile;
use rcb_util::SimDuration;

/// Rough single-thread slowdown of a 2008 N810 (ARM11 @ 400 MHz running
/// interpreted JavaScript) against this native build.
const MOBILE_CPU_SLOWDOWN: u64 = 300;

fn main() {
    let profile = NetProfile::mobile();
    let rows = run_all_sites_quick(&profile, CacheMode::Cache).expect("experiment runs");
    let series: Vec<_> = rows.iter().map(|r| (r.site.clone(), r.m1, r.m2)).collect();
    print_two_series(
        "Extension — mobile host (N810/Fennec profile): document load vs sync",
        "M1 (s)",
        "M2 (s)",
        &series,
    );

    // Scale our native M5 to the tablet and check it stays usable.
    let (nc, _c, _m6) = rcb_bench::measure_m5_m6("wikipedia.org", 5).unwrap();
    let scaled = SimDuration::from_micros(nc.as_micros() * MOBILE_CPU_SLOWDOWN);
    println!(
        "wikipedia.org generation cost: {} native → ~{} at {}x N810 slowdown",
        nc, scaled, MOBILE_CPU_SLOWDOWN
    );
    let ok = scaled.as_millis() < 2_000;
    println!(
        "agent remains interactive (<2 s generation) on tablet-class CPU: {ok}   (paper: \"can also efficiently support co-browsing\")"
    );
}
