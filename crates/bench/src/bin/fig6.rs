//! Figure 6 — HTML document load time in the LAN environment.
//!
//! Regenerates the M1-vs-M2 comparison for the 20 sample sites on the
//! campus-LAN profile, averaged over five repetitions (paper §5.1.2).
//! Expected shape: M2 < 0.4 s and far below M1 for every site.

use rcb_bench::{print_two_series, run_all_sites};
use rcb_core::agent::CacheMode;
use rcb_sim::profiles::NetProfile;

fn main() {
    let profile = NetProfile::lan();
    let rows = run_all_sites(&profile, CacheMode::Cache).expect("experiment runs");
    let series: Vec<_> = rows.iter().map(|r| (r.site.clone(), r.m1, r.m2)).collect();
    print_two_series(
        "Figure 6 — HTML document load time, LAN (5-run averages)",
        "M1 (s)",
        "M2 (s)",
        &series,
    );
    let all_below = rows.iter().all(|r| r.m2 < r.m1);
    let max_m2 = rows.iter().map(|r| r.m2).max().unwrap();
    println!("M2 < M1 for all 20 sites: {all_below}   (paper: yes)");
    println!(
        "max M2 = {} — paper: \"the values of M2 are less than 0.4 seconds\"",
        max_m2
    );
}
