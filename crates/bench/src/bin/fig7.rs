//! Figure 7 — HTML document load time in the WAN environment.
//!
//! Regenerates the M1-vs-M2 comparison over the home-DSL profile
//! (1.5 Mbps down / 384 Kbps up at both ends). Expected shape: M2 grows
//! (the host's 384 Kbps uplink is the bottleneck) but stays below M1 for
//! most sites — the paper reports 17 of 20 — with only the largest pages
//! crossing over.

use rcb_bench::{print_two_series, run_all_sites};
use rcb_core::agent::CacheMode;
use rcb_sim::profiles::NetProfile;

fn main() {
    let profile = NetProfile::wan();
    let rows = run_all_sites(&profile, CacheMode::Cache).expect("experiment runs");
    let series: Vec<_> = rows.iter().map(|r| (r.site.clone(), r.m1, r.m2)).collect();
    print_two_series(
        "Figure 7 — HTML document load time, WAN (5-run averages)",
        "M1 (s)",
        "M2 (s)",
        &series,
    );
    let below: Vec<&str> = rows
        .iter()
        .filter(|r| r.m2 < r.m1)
        .map(|r| r.site.as_str())
        .collect();
    let above: Vec<String> = rows
        .iter()
        .filter(|r| r.m2 >= r.m1)
        .map(|r| format!("{} ({:.1} KB)", r.site, r.page_bytes as f64 / 1024.0))
        .collect();
    println!("M2 < M1 for {}/20 sites  (paper: 17/20)", below.len());
    println!(
        "crossed over (largest pages expected): {}",
        above.join(", ")
    );
}
