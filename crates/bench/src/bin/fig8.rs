//! Figure 8 — cache-mode performance gain in the LAN environment.
//!
//! Regenerates the M3-vs-M4 comparison (supplementary-object download
//! time from the origin vs. from the host browser cache) on the LAN.
//! Expected shape: M4 < M3 for all 20 sites ("downloading the
//! supplementary Web objects from the host browser is faster than
//! retrieving them from the remote Web server").

use rcb_bench::{print_two_series, run_all_sites};
use rcb_core::agent::CacheMode;
use rcb_sim::profiles::NetProfile;

fn main() {
    let profile = NetProfile::lan();
    let noncache = run_all_sites(&profile, CacheMode::NonCache).expect("M3 run");
    let cache = run_all_sites(&profile, CacheMode::Cache).expect("M4 run");
    let series: Vec<_> = noncache
        .iter()
        .zip(cache.iter())
        .map(|(nc, c)| (nc.site.clone(), nc.m3, c.m4))
        .collect();
    print_two_series(
        "Figure 8 — supplementary object download time, LAN (5-run averages)",
        "M3 (s)",
        "M4 (s)",
        &series,
    );
    let wins = series.iter().filter(|(_, m3, m4)| m4 < m3).count();
    println!("M4 < M3 for {wins}/20 sites  (paper: 20/20)");
    let avg_gain: f64 = series
        .iter()
        .map(|(_, m3, m4)| m3.as_secs_f64() / m4.as_secs_f64().max(1e-9))
        .sum::<f64>()
        / series.len() as f64;
    println!("mean speedup from cache mode: {avg_gain:.1}x");
}
