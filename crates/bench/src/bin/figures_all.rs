//! Convenience driver: regenerates every figure and table in one run,
//! printing a compact pass/fail summary of the paper's shape claims.
//!
//! `cargo run --release -p rcb-bench --bin figures_all`

use rcb_bench::{measure_m5_m6, run_all_sites_quick};
use rcb_core::agent::CacheMode;
use rcb_core::usability::{likert, run_session};
use rcb_origin::sites::TABLE1_SIZES_KB;
use rcb_sim::profiles::NetProfile;

struct Check {
    name: &'static str,
    paper: &'static str,
    ok: bool,
    detail: String,
}

fn main() {
    let mut checks: Vec<Check> = Vec::new();

    // Figure 6.
    let lan = run_all_sites_quick(&NetProfile::lan(), CacheMode::Cache).expect("LAN run");
    let below = lan.iter().filter(|r| r.m2 < r.m1).count();
    let max_m2 = lan.iter().map(|r| r.m2).max().expect("20 rows");
    checks.push(Check {
        name: "Fig 6  LAN M2 < M1",
        paper: "all 20 sites, M2 < 0.4 s",
        ok: below == 20 && max_m2.as_millis() < 400,
        detail: format!("{below}/20 below, max M2 {max_m2}"),
    });

    // Figure 7.
    let wan = run_all_sites_quick(&NetProfile::wan(), CacheMode::Cache).expect("WAN run");
    let wan_below = wan.iter().filter(|r| r.m2 < r.m1).count();
    let crossed: Vec<&str> = wan
        .iter()
        .filter(|r| r.m2 >= r.m1)
        .map(|r| r.site.as_str())
        .collect();
    checks.push(Check {
        name: "Fig 7  WAN M2 < M1 mostly",
        paper: "17 of 20 sites",
        ok: (14..=19).contains(&wan_below),
        detail: format!("{wan_below}/20 below; crossed: {}", crossed.join(", ")),
    });

    // Figure 8.
    let m3 = run_all_sites_quick(&NetProfile::lan(), CacheMode::NonCache).expect("M3 run");
    let m4 = &lan;
    let cache_wins = m3
        .iter()
        .zip(m4.iter())
        .filter(|(nc, c)| c.m4 < nc.m3)
        .count();
    checks.push(Check {
        name: "Fig 8  cache gain (M4<M3)",
        paper: "all 20 sites",
        ok: cache_wins == 20,
        detail: format!("{cache_wins}/20"),
    });

    // Table 1 shapes.
    let (g_nc, g_c, g_m6) = measure_m5_m6("google.com", 5).expect("google M5/M6");
    let (a_nc, a_c, a_m6) = measure_m5_m6("amazon.com", 5).expect("amazon M5/M6");
    checks.push(Check {
        name: "Tab 1  M5 grows with size",
        paper: "larger page ⇒ more time",
        ok: a_nc > g_nc && a_c > g_c,
        detail: format!(
            "google {:.0}us → amazon {:.0}us (non-cache)",
            g_nc.as_micros(),
            a_nc.as_micros()
        ),
    });
    checks.push(Check {
        name: "Tab 1  M5 cache > non-cache",
        paper: "every site",
        ok: a_c > a_nc && g_c >= g_nc,
        detail: format!(
            "amazon cache {:.0}us vs non-cache {:.0}us",
            a_c.as_micros(),
            a_nc.as_micros()
        ),
    });
    checks.push(Check {
        name: "Tab 1  M6 < 1/3 s",
        paper: "all 20 webpages",
        ok: g_m6.as_millis() < 333 && a_m6.as_millis() < 333,
        detail: format!("amazon M6 {:.0}us", a_m6.as_micros()),
    });

    // Table 2.
    let session = run_session(4242).expect("session runs");
    checks.push(Check {
        name: "Tab 2  20-task session",
        paper: "100% completion",
        ok: session.all_ok(),
        detail: format!(
            "{}/20 tasks ok in {:.1} min",
            session.tasks.iter().filter(|t| t.ok).count(),
            session.total.as_secs_f64() / 60.0
        ),
    });

    // Table 4. At the paper's n=20 the mode can legitimately flip between
    // Agree and Strongly Agree under resampling; the stable regenerated
    // claim is that both median and mode stay on the positive side for
    // every question (and at larger n they converge to Agree/Agree — see
    // the unit test in rcb-core::usability).
    let summaries = likert(20, 4242);
    let positive = |label: &str| label == "Agree" || label == "Strongly Agree";
    let all_positive = summaries
        .iter()
        .all(|s| positive(s.median) && positive(s.mode));
    let agree_count = summaries
        .iter()
        .filter(|s| s.median == "Agree" && s.mode == "Agree")
        .count();
    checks.push(Check {
        name: "Tab 4  Likert median/mode",
        paper: "positive Agree for all questions",
        ok: all_positive && agree_count >= 6,
        detail: format!(
            "{}/{} exactly Agree/Agree, all positive: {}",
            agree_count,
            summaries.len(),
            all_positive
        ),
    });

    println!(
        "\nShape summary over {} sites / {} claims",
        TABLE1_SIZES_KB.len(),
        checks.len()
    );
    println!("{:-<100}", "");
    let mut failures = 0;
    for c in &checks {
        if !c.ok {
            failures += 1;
        }
        println!(
            "{:<5} {:<28} paper: {:<28} ours: {}",
            if c.ok { "PASS" } else { "FAIL" },
            c.name,
            c.paper,
            c.detail
        );
    }
    println!("{:-<100}", "");
    println!(
        "{} / {} shape claims reproduced",
        checks.len() - failures,
        checks.len()
    );
    std::process::exit(i32::from(failures > 0));
}
