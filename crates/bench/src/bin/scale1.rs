//! scale1 — poll throughput, latency, zero-copy accounting, and
//! regeneration-overlap behaviour vs. participant count, over real sockets.
//!
//! The paper's §5.1.2 bottleneck analysis assumes the host *uplink* is
//! the limit; this bench verifies the agent itself is not: with the
//! snapshot-based concurrent request path, aggregate poll throughput must
//! *grow* with participant count (it flat-lined when every poll
//! serialized on one host mutex). Each participant is a real
//! `TcpParticipant` on its own thread and persistent connection, polling
//! in a closed loop while a mutator thread keeps the host page churning.
//!
//! Wall-clock scaling needs CPUs to scale onto, so the pass criteria are
//! parallelism-aware: on any machine the bench requires that aggregate
//! throughput does not *collapse* as participants are added (the lock
//! convoy signature) and that polls demonstrably overlap inside the
//! agent; on machines with ≥ 4 available cores it additionally requires
//! the aggregate rate to grow with participant count.
//!
//! Three further phases:
//!
//! * **payload sweep** (16 KB → 1 MB of page text): drives content polls
//!   at each payload size and requires the per-poll heap-copied
//!   response-body byte count to be exactly zero — every content poll and
//!   object request is served from a prefab wire image (`Arc` clone), no
//!   matter how large the content is;
//! * **regeneration overlap**: measures poll p99 while back-to-back
//!   regenerations of a heavy page are in flight and requires it within
//!   2× the quiescent p99 (plus a scheduler floor) on multi-core machines
//!   — direct evidence content generation runs outside the host mutex;
//! * **memory bound**: ≥ 1000 DOM versions with the agent's
//!   generated-content and timestamp maps staying within the
//!   two-generation bound;
//! * **connection hold**: many keep-alive connections open at once on a
//!   small handler pool — 256 per event-loop shard on the epoll engines
//!   (whose ceiling is the fd limit; the sharded backend therefore holds
//!   `256 × shards`, verified to spread across every loop), 32 on the
//!   workers backend (whose ceiling is the rotation design). The target
//!   is capped to the process fd limit read via `prlimit64`.
//! * **overload**: a 16-client storm against a deliberately low admission
//!   mark. The server must actually shed (prefab `503 + Retry-After`,
//!   counted in `requests_shed`), the polls it *does* admit must keep a
//!   bounded p99 while shedding, and a calm cohort after the storm must
//!   recover at least 90% of the pre-storm rate.
//! * **sessions**: one process serves hundreds of routed sessions at once
//!   (512 on the epoll engines, 64 on workers, fd-capped) with one
//!   participant connection held per session, then one session storms
//!   against a tight per-session in-flight bound while a round-robin
//!   probe keeps polling the quiet cohort. The storm must demonstrably
//!   queue or shed at the session bound, the quiet cohort must keep ≥
//!   30% of its calm rate within a bounded p99, and aggregate throughput
//!   must not collapse — per-session fairness, measured, with the
//!   per-session spread (outlier sessions by sheds and snapshot size)
//!   stamped into the JSON.
//!
//! Every phase runs on the server backend selected by `--backend
//! {workers,epoll,epoll-sharded[:N]}` (falling back to the
//! `RCB_SERVER_BACKEND` environment variable, then to workers; the
//! sharded backend's auto shard count follows `RCB_SERVER_SHARDS`, then
//! available cores), so CI can run the whole bench once per backend and
//! compare like with like. The pass/fail predicates themselves live in
//! `rcb_bench::gates` as pure functions with their own unit tests — a
//! gate regression is caught without running a socket.
//!
//! Alongside the human-readable output the bench always writes a
//! machine-readable `BENCH_scale1.json` (path override: `--json <path>`).
//! `--compare <baseline.json>` fails the run if aggregate throughput
//! regressed more than 20% against the committed baseline; the throughput
//! gate arms only when the baseline's cores, mode, and backend match the
//! running configuration, and prints an explicit "gate disarmed" line
//! otherwise.
//!
//! Run: `cargo run --release -p rcb-bench --bin scale1 [-- --smoke]`
//! (`--smoke` shrinks participant counts and durations for CI).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rcb_bench::gates;
use rcb_browser::{Browser, BrowserKind};
use rcb_core::agent::{AgentConfig, LIVE_GENERATIONS};
use rcb_core::router::{fixed_page_factory, RouterConfig, RouterHost, SessionOutlier};
use rcb_core::tcp::{TcpHost, TcpParticipant};
use rcb_crypto::SessionKey;
use rcb_http::server::{OverloadConfig, ServerBackend, ServerConfig};
use rcb_util::{DetRng, Histogram, SimDuration};

const PAGE: &str = "<html><head><title>scale</title></head>\
    <body><h1 id=\"headline\">scale bench</h1><div id=\"ticker\">0</div></body></html>";

/// The backend every host in this run uses: `--backend <name>` beats
/// `RCB_SERVER_BACKEND` beats the workers default — resolved once in
/// `main` and threaded through each phase.
fn start_host_with_page(backend: ServerBackend, workers: usize, page: &str) -> TcpHost {
    start_host_sized(backend, workers, 256, page)
}

fn start_host_sized(
    backend: ServerBackend,
    workers: usize,
    queue_capacity: usize,
    page: &str,
) -> TcpHost {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(4242));
    let mut browser = Browser::new(BrowserKind::Firefox);
    browser.url = Some(rcb_url::Url::parse("http://scale.local/").expect("static URL"));
    browser.doc = Some(rcb_html::parse_document(page));
    browser.mutate_dom(|_| {}).expect("document just loaded");
    TcpHost::start_from_browser(
        "127.0.0.1:0",
        browser,
        key,
        AgentConfig::default(),
        ServerConfig::builder()
            .backend(backend)
            .workers(workers)
            .queue_capacity(queue_capacity)
            .read_timeout(Duration::from_millis(2))
            .build(),
    )
    .expect("bind ephemeral port")
}

fn start_host(backend: ServerBackend, workers: usize) -> TcpHost {
    start_host_with_page(backend, workers, PAGE)
}

/// A page whose text payload is roughly `bytes` of passthrough characters
/// (so the Fig.-4 XML stays close to the same size after JS-escaping).
fn sized_page(bytes: usize) -> String {
    let filler = "abcdefghij0123456789".repeat(bytes / (20 * 16) + 1);
    let mut page =
        String::from("<html><head><title>payload</title></head><body><div id=\"ticker\">0</div>");
    for i in 0..16 {
        page.push_str(&format!("<div id=\"blk{i}\">{filler}</div>"));
    }
    page.push_str("</body></html>");
    page
}

/// One load point: `n` participants polling for `duration`.
/// Returns `(total_polls, elapsed, latency histogram, max_concurrency)`.
fn run_point(
    backend: ServerBackend,
    n: u64,
    duration: Duration,
    mutate_every: Duration,
) -> (u64, f64, Histogram, u64) {
    let mut host = start_host(backend, 8);
    let addr = host.addr().to_string();
    let key = host.key().clone();
    let stop = Arc::new(AtomicBool::new(false));

    let threads: Vec<_> = (1..=n)
        .map(|pid| {
            let addr = addr.clone();
            let key = key.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> Vec<u64> {
                let mut p = TcpParticipant::join(&addr, key, pid).expect("join");
                let mut lat_us = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    if p.poll().is_err() {
                        break;
                    }
                    lat_us.push(t0.elapsed().as_micros() as u64);
                }
                lat_us
            })
        })
        .collect();

    let bench_start = Instant::now();
    let mut last_mutation = Instant::now();
    let mut tick = 0u64;
    while bench_start.elapsed() < duration {
        if last_mutation.elapsed() >= mutate_every {
            tick += 1;
            host.mutate_page(move |doc| {
                let root = doc.root();
                if let Some(t) = rcb_html::query::element_by_id(doc, root, "ticker") {
                    doc.set_attr(t, "data-tick", tick.to_string());
                }
            })
            .expect("mutate");
            last_mutation = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    // Measure the window before joining: the join tail (final in-flight
    // polls, histogram drains) grows with N and would bias rates down.
    let elapsed = bench_start.elapsed().as_secs_f64();

    let mut hist = Histogram::new();
    let mut total = 0u64;
    for t in threads {
        for us in t.join().expect("participant thread") {
            total += 1;
            hist.record(SimDuration::from_micros(us));
        }
    }
    let max_conc = host.stats().max_concurrent_polls;
    host.shutdown();
    (total, elapsed, hist, max_conc)
}

/// One payload-sweep point: `rounds` mutate→sync cycles at the given page
/// size. Returns `(xml_bytes, content_polls, total_polls, bytes_copied)`.
fn run_payload_point(
    backend: ServerBackend,
    payload_bytes: usize,
    rounds: u32,
) -> (usize, u64, u64, u64) {
    let page = sized_page(payload_bytes);
    let mut host = start_host_with_page(backend, 4, &page);
    let addr = host.addr().to_string();
    let mut p = TcpParticipant::join(&addr, host.key().clone(), 1).expect("join");
    // Initial sync carries the full payload.
    p.poll_until_update(50, Duration::from_millis(2))
        .expect("initial sync");
    assert!(p.browser.doc.is_some(), "document synced");
    let xml_bytes = host.published_xml_len();
    for i in 0..rounds {
        host.mutate_page(move |doc| {
            let root = doc.root();
            if let Some(t) = rcb_html::query::element_by_id(doc, root, "ticker") {
                doc.set_attr(t, "data-tick", i.to_string());
            }
        })
        .expect("mutate");
        p.poll_until_update(50, Duration::from_millis(2))
            .expect("sync after mutation");
    }
    let stats = host.stats();
    let total_polls = stats.polls_with_content + stats.polls_empty;
    let out = (
        xml_bytes,
        stats.polls_with_content,
        total_polls,
        stats.body_bytes_copied,
    );
    host.shutdown();
    out
}

/// Regeneration-overlap point: poll p99 with no write traffic vs. poll
/// p99 while back-to-back heavy regenerations run. Returns
/// `(quiescent_p99_us, during_p99_us, avg_regen_us)`.
fn run_regen_overlap(backend: ServerBackend) -> (u64, u64, u64) {
    let page = sized_page(1 << 20);
    let host = Arc::new(start_host_with_page(backend, 4, &page));
    let addr = host.addr().to_string();
    let key = host.key().clone();

    // Raw signed polls with a far-future timestamp: every reply is the
    // tiny empty-content prefab, and the piggybacked mouse move forces
    // the merge path (host mutex) — the path a regeneration could block.
    let mut conn = rcb_http::client::HttpConnection::connect(&addr).expect("connect");
    let poll_us = |conn: &mut rcb_http::client::HttpConnection| -> u64 {
        let mut req =
            rcb_http::Request::post("/poll?p=1", b"t=99999999999999999\nmouse|3|4".to_vec());
        rcb_core::auth::sign_request(&key, &mut req);
        let t0 = Instant::now();
        let resp = conn.round_trip(&req).expect("poll");
        assert!(resp.status.is_success() && resp.body.is_empty());
        t0.elapsed().as_micros() as u64
    };
    let percentile = |samples: &mut [u64], p: f64| -> u64 {
        samples.sort_unstable();
        rcb_util::percentile_nearest_rank(samples, p).expect("non-empty sample set")
    };

    for _ in 0..20 {
        poll_us(&mut conn);
    }
    let mut quiescent: Vec<u64> = (0..150).map(|_| poll_us(&mut conn)).collect();

    let stop = Arc::new(AtomicBool::new(false));
    let mutations = Arc::new(AtomicU32::new(0));
    let mutator = {
        let host = Arc::clone(&host);
        let stop = Arc::clone(&stop);
        let mutations = Arc::clone(&mutations);
        std::thread::spawn(move || -> Duration {
            let t0 = Instant::now();
            let mut n = 0u32;
            while !stop.load(Ordering::Relaxed) || n < 2 {
                host.mutate_page(move |doc| {
                    let root = doc.root();
                    if let Some(t) = rcb_html::query::element_by_id(doc, root, "ticker") {
                        doc.set_attr(t, "data-v", n.to_string());
                    }
                })
                .expect("mutate");
                n += 1;
                mutations.store(n, Ordering::Relaxed);
            }
            t0.elapsed()
        })
    };
    let mut during: Vec<u64> = (0..150).map(|_| poll_us(&mut conn)).collect();
    stop.store(true, Ordering::Relaxed);
    let regen_total = mutator.join().expect("mutator");
    let n = mutations.load(Ordering::Relaxed).max(1);

    (
        percentile(&mut quiescent, 99.0),
        percentile(&mut during, 99.0),
        regen_total.as_micros() as u64 / u64::from(n),
    )
}

/// Memory-bound phase: ≥ `versions` DOM versions with a participant
/// syncing along; returns the final `(content_cache, timestamps)` sizes.
fn run_memory_bound(backend: ServerBackend, versions: u64) -> (usize, usize, u64, u64) {
    let mut host = start_host(backend, 2);
    let addr = host.addr().to_string();
    let mut p = TcpParticipant::join(&addr, host.key().clone(), 1).expect("join");
    for i in 0..versions {
        host.mutate_page(move |doc| {
            let root = doc.root();
            if let Some(t) = rcb_html::query::element_by_id(doc, root, "ticker") {
                doc.set_attr(t, "data-tick", i.to_string());
            }
        })
        .expect("mutate");
        if i % 50 == 0 {
            let _ = p.poll();
        }
    }
    let (content, ts) = host.agent_cache_lens();
    let (content_ev, ts_ev) =
        host.with_agent_stats(|s| (s.content_evictions.get(), s.timestamp_evictions.get()));
    host.shutdown();
    (content, ts, content_ev, ts_ev)
}

/// Connection-hold phase: `conns` keep-alive connections held open
/// *simultaneously* and each polled `rounds` times round-robin, with a
/// handler pool of only `pool` threads. On the epoll engines this is the
/// headline capability — the connection ceiling is the fd limit, so a
/// dispatch pool of 8 services 256 live sessions per shard; the workers
/// backend is exercised at a smaller count (idle connections cost a
/// rotation slot each, which is exactly the limitation that motivated the
/// event loop). Returns `(connections, pool, all_ok, per_shard_conns)` —
/// the spread proves a sharded run exercised every event loop.
fn run_conn_hold(
    backend: ServerBackend,
    conns: usize,
    rounds: usize,
) -> (usize, usize, bool, Vec<u64>) {
    let pool = 8;
    let mut host = start_host_sized(backend, pool, conns * 2, PAGE);
    let addr = host.addr().to_string();
    let key = host.key().clone();
    let mut ok = true;

    let mut clients = Vec::with_capacity(conns);
    for _ in 0..conns {
        let mut c = rcb_http::client::HttpConnection::connect(&addr).expect("connect");
        let resp = c
            .round_trip(&rcb_http::Request::get("/"))
            .expect("initial page");
        ok &= resp.status.is_success();
        clients.push(c);
    }
    // Every connection is open at once; each stays responsive across
    // multiple keep-alive polls (far-future timestamp → empty prefab).
    for _ in 0..rounds {
        for (i, c) in clients.iter_mut().enumerate() {
            let mut req = rcb_http::Request::post(
                format!("/poll?p={}", i + 1),
                b"t=99999999999999999".to_vec(),
            );
            rcb_core::auth::sign_request(&key, &mut req);
            match c.round_trip(&req) {
                Ok(resp) => ok &= resp.status.is_success() && resp.body.is_empty(),
                Err(_) => ok = false,
            }
        }
    }
    ok &= host.stats().connections == conns as u64;
    let per_shard = host.server_stats().connections_per_shard;
    ok &= gates::shard_spread_ok(&per_shard);
    host.shutdown();
    (conns, pool, ok, per_shard)
}

/// Outcome of one update-latency cohort run (full-XML or delta wakes).
struct UpdateLatencyRun {
    p99_us: u64,
    completed_polls: u64,
    polls_parked: u64,
    polls_woken: u64,
    polls_woken_delta: u64,
    delta_fallbacks: u64,
    /// Wire bytes (responses as serialized, poll replies plus any object
    /// fetches) per delivered update, averaged over the whole cohort.
    bytes_per_update: u64,
}

/// The update-latency page: a heavy, *unchanging* head (inline styles,
/// as real co-browsed pages carry) over a small mutating body. The
/// delta cohort's wakes should ship only the changed body section;
/// the full-XML cohort re-ships the head on every wake — that gap is
/// what the bytes-on-wire gate measures.
fn update_latency_page() -> String {
    let style = ".c{color:#abc;margin:0 1px 2px 3px;padding:4px;}".repeat(256);
    format!(
        "<html><head><title>update latency</title><style>{style}</style></head>\
         <body><div id=\"ticker\">0</div></body></html>"
    )
}

/// Update-latency phase: `participants` watchers sit in parked long-polls
/// (`lp=3000` ms) while the host publishes `updates` page changes at a
/// slow cadence. Measures change-to-delivery latency per update per
/// participant, counts the polls the engine completed inside the
/// measurement window — the long-poll economy: one completed poll per
/// participant per update, none between — and sums the wire bytes each
/// delivered update cost. With `delta`, watchers advertise `d=1` and
/// woken parks complete with delta-encoded payloads.
fn run_update_latency(
    backend: ServerBackend,
    participants: u64,
    updates: u64,
    delta: bool,
) -> UpdateLatencyRun {
    let page = update_latency_page();
    let mut host = start_host_with_page(backend, 8, &page);
    let addr = host.addr().to_string();
    let key = host.key().clone();
    let epoch = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(AtomicU32::new(0));
    let delivered = Arc::new(AtomicU32::new(0));
    // Micros-since-epoch of the most recent mutation; 0 = none yet.
    let last_mutate_us = Arc::new(std::sync::atomic::AtomicU64::new(0));

    let threads: Vec<_> = (1..=participants)
        .map(|pid| {
            let addr = addr.clone();
            let key = key.clone();
            let stop = Arc::clone(&stop);
            let ready = Arc::clone(&ready);
            let delivered = Arc::clone(&delivered);
            let last_mutate_us = Arc::clone(&last_mutate_us);
            std::thread::spawn(move || -> (Vec<u64>, u64) {
                let mut p = TcpParticipant::join(&addr, key, pid).expect("join");
                p.poll().expect("initial sync"); // immediate content
                p.enable_long_poll(SimDuration::from_millis(3_000));
                p.snippet.delta = delta;
                ready.fetch_add(1, Ordering::Relaxed);
                let mut lat_us = Vec::new();
                // Wire bytes attributed to measured update deliveries
                // only (not empty re-parks, not the unblocking wake).
                let mut update_bytes = 0u64;
                let mut bytes_mark = p.wire_bytes_in;
                while !stop.load(Ordering::Relaxed) {
                    match p.poll() {
                        Ok(rcb_core::snippet::SnippetOutcome::Updated { .. }) => {
                            let at = last_mutate_us.load(Ordering::Relaxed);
                            if at != 0 {
                                lat_us.push(epoch.elapsed().as_micros() as u64 - at);
                                delivered.fetch_add(1, Ordering::Relaxed);
                                update_bytes += p.wire_bytes_in - bytes_mark;
                            }
                        }
                        Ok(_) => {} // park window ran dry; re-park
                        Err(_) => break,
                    }
                    bytes_mark = p.wire_bytes_in;
                }
                (lat_us, update_bytes)
            })
        })
        .collect();

    while u64::from(ready.load(Ordering::Relaxed)) < participants {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(30)); // let everyone park
    let polls_before = {
        let s = host.stats();
        s.polls_with_content + s.polls_empty
    };
    for u in 0..updates {
        last_mutate_us.store(epoch.elapsed().as_micros() as u64, Ordering::Relaxed);
        host.mutate_page(move |doc| {
            let root = doc.root();
            if let Some(t) = rcb_html::query::element_by_id(doc, root, "ticker") {
                doc.set_attr(t, "data-update", u.to_string());
            }
        })
        .expect("mutate");
        // Every watcher receives this update before the next publishes.
        let target = (participants * (u + 1)) as u32;
        let wait_start = Instant::now();
        while delivered.load(Ordering::Relaxed) < target {
            assert!(
                wait_start.elapsed() < Duration::from_secs(10),
                "update {u} not delivered to all watchers"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(30)); // re-park gap
    }
    let stats = host.stats();
    let completed = stats.polls_with_content + stats.polls_empty - polls_before;

    // Unblock the final parks so joining does not wait out a window; the
    // zeroed mutate stamp keeps this wake out of the latency samples.
    stop.store(true, Ordering::Relaxed);
    last_mutate_us.store(0, Ordering::Relaxed);
    host.mutate_page(|doc| {
        let root = doc.root();
        if let Some(t) = rcb_html::query::element_by_id(doc, root, "ticker") {
            doc.set_attr(t, "data-update", "fin");
        }
    })
    .expect("final mutate");

    let mut hist = Histogram::new();
    let mut total_update_bytes = 0u64;
    for t in threads {
        let (lat_us, update_bytes) = t.join().expect("watcher thread");
        for us in lat_us {
            hist.record(SimDuration::from_micros(us));
        }
        total_update_bytes += update_bytes;
    }
    host.shutdown();
    UpdateLatencyRun {
        p99_us: hist.percentile(99.0).as_micros(),
        completed_polls: completed,
        polls_parked: stats.polls_parked,
        polls_woken: stats.polls_woken,
        polls_woken_delta: stats.polls_woken_delta,
        delta_fallbacks: stats.delta_fallbacks,
        bytes_per_update: total_update_bytes / (participants * updates).max(1),
    }
}

/// One overload-phase client cohort: `n` raw connections hammer signed
/// polls (far-future timestamp → the tiny empty prefab) for `dur`. A
/// shed (`503`) costs the client a brief back-off sleep and is counted;
/// only admitted (`2xx`) polls land in the latency histogram. Returns
/// `(admitted, sheds_seen, elapsed_secs, latency_hist)`.
fn overload_clients(
    addr: &str,
    key: &SessionKey,
    n: u64,
    dur: Duration,
) -> (u64, u64, f64, Histogram) {
    let t0 = Instant::now();
    let threads: Vec<_> = (1..=n)
        .map(|pid| {
            let addr = addr.to_string();
            let key = key.clone();
            std::thread::spawn(move || -> (u64, u64, Vec<u64>) {
                let mut conn = match rcb_http::client::HttpConnection::connect(&addr) {
                    Ok(c) => c,
                    Err(_) => return (0, 0, Vec::new()),
                };
                let (mut ok, mut shed, mut lat_us) = (0u64, 0u64, Vec::new());
                let start = Instant::now();
                while start.elapsed() < dur {
                    let mut req = rcb_http::Request::post(
                        format!("/poll?p={pid}"),
                        b"t=99999999999999999".to_vec(),
                    );
                    rcb_core::auth::sign_request(&key, &mut req);
                    let s = Instant::now();
                    match conn.round_trip(&req) {
                        Ok(resp) if resp.status == rcb_http::Status::SERVICE_UNAVAILABLE => {
                            shed += 1;
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Ok(resp) if resp.status.is_success() => {
                            ok += 1;
                            lat_us.push(s.elapsed().as_micros() as u64);
                        }
                        Ok(_) => {}
                        Err(_) => match rcb_http::client::HttpConnection::connect(&addr) {
                            Ok(c) => conn = c,
                            Err(_) => break,
                        },
                    }
                }
                (ok, shed, lat_us)
            })
        })
        .collect();
    let (mut ok, mut shed) = (0u64, 0u64);
    let mut hist = Histogram::new();
    for t in threads {
        let (o, s, lat) = t.join().expect("overload client");
        ok += o;
        shed += s;
        for us in lat {
            hist.record(SimDuration::from_micros(us));
        }
    }
    (ok, shed, t0.elapsed().as_secs_f64(), hist)
}

/// Overload phase: a healthy 4-client baseline, a 16-client storm against
/// a deliberately low admission mark, and a 4-client recovery cohort once
/// the storm leaves. The storm must actually shed (the mark is real), the
/// polls that *are* admitted under storm must stay within the latency
/// bound (shedding keeps the served path fast), and the recovery rate
/// must reach 90% of the baseline (degradation is graceful both ways).
/// Returns `(pre_rate, storm_p99_us, storm_bound_us, requests_shed,
/// post_rate)`.
fn run_overload(backend: ServerBackend, smoke: bool) -> (f64, u64, u64, u64, f64) {
    // The mark counts different things per engine — the workers rotation
    // queue holds idle keep-alive connections, the epoll dispatch queue
    // holds requests awaiting the pool — so the mark that separates "4
    // clients healthy / 16 clients shedding" differs too.
    let queue_high_water = match backend {
        ServerBackend::Workers => 8,
        _ => 2,
    };
    let key = SessionKey::generate_deterministic(&mut DetRng::new(4242));
    let mut browser = Browser::new(BrowserKind::Firefox);
    browser.url = Some(rcb_url::Url::parse("http://scale.local/").expect("static URL"));
    browser.doc = Some(rcb_html::parse_document(PAGE));
    browser.mutate_dom(|_| {}).expect("document just loaded");
    let mut host = TcpHost::start_from_browser(
        "127.0.0.1:0",
        browser,
        key,
        AgentConfig::default(),
        ServerConfig::builder()
            .backend(backend)
            .workers(2)
            .queue_capacity(256)
            .read_timeout(Duration::from_millis(2))
            .overload(OverloadConfig {
                queue_high_water,
                ..OverloadConfig::default()
            })
            .build(),
    )
    .expect("bind ephemeral port");
    let addr = host.addr().to_string();
    let key = host.key().clone();
    let (calm_dur, storm_dur) = if smoke {
        (Duration::from_millis(400), Duration::from_millis(600))
    } else {
        (Duration::from_secs(1), Duration::from_secs(2))
    };
    // Short calm windows are noisy on shared machines: measure each calm
    // cohort twice and keep the better window (the gate asks whether the
    // capacity exists, not whether every window was quiet).
    let calm_rate = |hist_out: &mut Histogram| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..2 {
            let (ok, _, elapsed, hist) = overload_clients(&addr, &key, 4, calm_dur);
            let rate = ok as f64 / elapsed;
            if rate > best {
                best = rate;
                *hist_out = hist;
            }
        }
        best
    };
    let mut pre_hist = Histogram::new();
    let pre_rate = calm_rate(&mut pre_hist);
    let shed_before = host.server_stats().requests_shed;
    let (_, _, _, storm_hist) = overload_clients(&addr, &key, 16, storm_dur);
    let requests_shed = host.server_stats().requests_shed - shed_before;
    // Let the storm cohort's closed connections drain before measuring
    // recovery.
    std::thread::sleep(Duration::from_millis(100));
    let mut post_hist = Histogram::new();
    let post_rate = calm_rate(&mut post_hist);
    host.shutdown();
    // Bound: the calm p99 with generous headroom, floored so scheduler
    // noise on a loaded CI box cannot fail a healthy run.
    let storm_bound_us = (5 * pre_hist.percentile(99.0).as_micros()).max(100_000);
    (
        pre_rate,
        storm_hist.percentile(99.0).as_micros(),
        storm_bound_us,
        requests_shed,
        post_rate,
    )
}

/// Everything the many-sessions phase measured.
struct SessionsResult {
    target: usize,
    sessions_live: usize,
    calm_rate: f64,
    calm_p99_us: u64,
    storm_quiet_rate: f64,
    storm_quiet_p99_us: u64,
    aggregate_storm_rate: f64,
    storm_polls: u64,
    storm_sheds: u64,
    fairness_queued: u64,
    fairness_shed: u64,
    max_shed: Option<SessionOutlier>,
    p99_shed: Option<SessionOutlier>,
    max_snapshot: Option<SessionOutlier>,
    p99_snapshot: Option<SessionOutlier>,
}

/// One round-robin probe window over the quiet sessions (`s1..sN`; `s0`
/// is the storm tenant): raw signed polls with the far-future timestamp
/// (→ the tiny empty prefab), one keep-alive connection, each poll signed
/// with its session's own key. Returns `(polls, elapsed_secs, hist)`.
fn probe_quiet_sessions(addr: &str, keys: &[SessionKey], dur: Duration) -> (u64, f64, Histogram) {
    let mut conn = rcb_http::client::HttpConnection::connect(addr).expect("probe connect");
    let mut hist = Histogram::new();
    let mut polls = 0u64;
    let mut idx = 1usize;
    let t0 = Instant::now();
    while t0.elapsed() < dur {
        let mut req = rcb_http::Request::post(
            format!("/s/s{idx}/poll?p=777"),
            b"t=99999999999999999".to_vec(),
        );
        rcb_core::auth::sign_request(&keys[idx], &mut req);
        let s = Instant::now();
        match conn.round_trip(&req) {
            Ok(resp) if resp.status.is_success() => {
                polls += 1;
                hist.record(SimDuration::from_micros(s.elapsed().as_micros() as u64));
            }
            Ok(_) => {}
            Err(_) => match rcb_http::client::HttpConnection::connect(addr) {
                Ok(c) => conn = c,
                Err(_) => break,
            },
        }
        idx += 1;
        if idx >= keys.len() {
            idx = 1;
        }
    }
    (polls, t0.elapsed().as_secs_f64(), hist)
}

/// Many-sessions phase: the router serves `target` concurrent sessions
/// from one process — joined through the real client path, one
/// participant connection held per session for the whole phase — then
/// session `s0` storms from 8 connections against a deliberately tight
/// per-session bound (2 in flight, 2 waiters) while the quiet cohort is
/// probed round-robin, concurrently, exactly as it was during the calm
/// baseline window.
fn run_sessions(backend: ServerBackend, smoke: bool) -> SessionsResult {
    let target = gates::sessions_target(backend, rcb_util::nofile_soft());
    let sids = (0..target).map(|i| format!("s{i}")).collect();
    let mut host = RouterHost::start(
        "127.0.0.1:0",
        fixed_page_factory(
            "http://scale.local/".to_string(),
            PAGE.to_string(),
            sids,
            "scale1-sessions".to_string(),
        ),
        AgentConfig::default(),
        RouterConfig {
            max_sessions: target + 8,
            // The fairness lever under test: 2 dispatches in flight per
            // session, 2 more may wait, the rest shed — so a storming
            // tenant can occupy at most 4 of the 8 pool threads.
            session_inflight: 2,
            session_waiters: 2,
            ..RouterConfig::default()
        },
        ServerConfig::builder()
            .backend(backend)
            .workers(8)
            .queue_capacity(target * 2 + 64)
            .read_timeout(Duration::from_millis(2))
            .build(),
    )
    .expect("bind ephemeral port");
    let addr = host.addr().to_string();

    // Join: 16 threads create the sessions and hold one participant
    // connection per session open for the rest of the phase.
    let joiners: Vec<_> = (0..16usize)
        .map(|t| {
            let addr = addr.clone();
            let router = Arc::clone(host.router());
            std::thread::spawn(move || -> Vec<TcpParticipant> {
                let mut held = Vec::new();
                let mut i = t;
                while i < target {
                    let sid = format!("s{i}");
                    let handle = router.create_session(&sid).expect("create session");
                    held.push(
                        TcpParticipant::join_session(
                            &addr,
                            &sid,
                            handle.key().clone(),
                            1,
                            &AgentConfig::default(),
                        )
                        .expect("join session"),
                    );
                    i += 16;
                }
                held
            })
        })
        .collect();
    let mut held: Vec<TcpParticipant> = Vec::with_capacity(target);
    for j in joiners {
        held.extend(j.join().expect("joiner thread"));
    }
    let sessions_live = host.stats().sessions_live;
    let keys: Vec<SessionKey> = (0..target)
        .map(|i| {
            host.router()
                .session(&format!("s{i}"))
                .expect("live session")
                .key()
                .clone()
        })
        .collect();

    let (calm_dur, storm_dur) = if smoke {
        (Duration::from_millis(400), Duration::from_millis(600))
    } else {
        (Duration::from_secs(1), Duration::from_secs(2))
    };
    // Calm baseline, best of two windows (short windows are noisy on
    // shared machines; the gates ask for the capacity, not quiet air).
    let (mut calm_rate, mut calm_hist) = (0.0f64, Histogram::new());
    for _ in 0..2 {
        let (polls, elapsed, hist) = probe_quiet_sessions(&addr, &keys, calm_dur);
        let rate = polls as f64 / elapsed;
        if rate > calm_rate {
            (calm_rate, calm_hist) = (rate, hist);
        }
    }

    // Storm: 8 connections hammer s0 while the quiet probe runs
    // concurrently. A fairness shed (prefab 503) costs the storm client a
    // brief back-off, like any well-behaved participant.
    let before = host.stats();
    let storm_key = keys[0].clone();
    let storm_threads: Vec<_> = (1..=8u64)
        .map(|pid| {
            let addr = addr.clone();
            let key = storm_key.clone();
            std::thread::spawn(move || -> (u64, u64) {
                let mut conn = match rcb_http::client::HttpConnection::connect(&addr) {
                    Ok(c) => c,
                    Err(_) => return (0, 0),
                };
                let (mut ok, mut shed) = (0u64, 0u64);
                let start = Instant::now();
                while start.elapsed() < storm_dur {
                    let mut req = rcb_http::Request::post(
                        format!("/s/s0/poll?p={pid}"),
                        b"t=99999999999999999".to_vec(),
                    );
                    rcb_core::auth::sign_request(&key, &mut req);
                    match conn.round_trip(&req) {
                        Ok(resp) if resp.status == rcb_http::Status::SERVICE_UNAVAILABLE => {
                            shed += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Ok(resp) if resp.status.is_success() => ok += 1,
                        Ok(_) => {}
                        Err(_) => match rcb_http::client::HttpConnection::connect(&addr) {
                            Ok(c) => conn = c,
                            Err(_) => break,
                        },
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let (quiet_polls, quiet_elapsed, quiet_hist) = probe_quiet_sessions(&addr, &keys, storm_dur);
    let (mut storm_polls, mut storm_sheds) = (0u64, 0u64);
    for t in storm_threads {
        let (ok, shed) = t.join().expect("storm client");
        storm_polls += ok;
        storm_sheds += shed;
    }
    let after = host.stats();

    let result = SessionsResult {
        target,
        sessions_live,
        calm_rate,
        calm_p99_us: calm_hist.percentile(99.0).as_micros(),
        storm_quiet_rate: quiet_polls as f64 / quiet_elapsed,
        storm_quiet_p99_us: quiet_hist.percentile(99.0).as_micros(),
        aggregate_storm_rate: (quiet_polls + storm_polls) as f64 / quiet_elapsed,
        storm_polls,
        storm_sheds,
        fairness_queued: after.fairness_queued - before.fairness_queued,
        fairness_shed: after.fairness_shed - before.fairness_shed,
        max_shed: after.max_shed_requests,
        p99_shed: after.p99_shed_requests,
        max_snapshot: after.max_snapshot_bytes,
        p99_snapshot: after.p99_snapshot_bytes,
    };
    drop(held);
    host.shutdown();
    result
}

/// Pulls the scalar after `"key":` out of a (baseline) JSON file — the
/// workspace is dependency-free, so the comparison reads the one number
/// it needs instead of parsing the full document.
fn json_scalar(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let idx = text.find(&needle)? + needle.len();
    let rest = text[idx..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls the string after `"key":"` out of a (baseline) JSON file.
fn json_string(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let idx = text.find(&needle)? + needle.len();
    let rest = &text[idx..];
    rest.find('"').map(|end| rest[..end].to_string())
}

/// The baseline's recorded configuration, with defaults for fields that
/// predate them (no backend field → workers, the only backend that
/// existed; no shards field → one loop).
fn baseline_config(text: &str) -> gates::GateConfig {
    gates::GateConfig {
        cores: json_scalar(text, "cores").unwrap_or(0.0) as usize,
        mode: json_string(text, "mode").unwrap_or_else(|| "full".to_string()),
        backend: json_string(text, "backend").unwrap_or_else(|| "workers".to_string()),
        shards: json_scalar(text, "shards").map_or(1, |s| s as usize),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let json_path = flag_value("--json").unwrap_or_else(|| "BENCH_scale1.json".to_string());
    let compare_path = flag_value("--compare");
    // Backend: `--backend <name>` beats `RCB_SERVER_BACKEND` beats the
    // workers default; `resolved()` folds in platform availability and
    // pins the sharded backend's auto shard count (RCB_SERVER_SHARDS,
    // else available cores) so every phase runs the same loop count.
    let backend = flag_value("--backend")
        .map(|v| ServerBackend::parse(&v))
        .unwrap_or_else(ServerBackend::from_env)
        .unwrap_or_else(|e| panic!("{e}"))
        .resolved();
    let shards = backend.shard_count();

    let (counts, duration, versions, sweep_rounds): (&[u64], Duration, u64, u32) = if smoke {
        (&[1, 4, 8], Duration::from_millis(400), 1_000, 2)
    } else {
        (&[1, 2, 4, 8, 16, 32, 64], Duration::from_secs(2), 5_000, 5)
    };
    let mutate_every = Duration::from_millis(100);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!(
        "scale1 — poll throughput vs participant count (real sockets, {backend} backend{}{})",
        if matches!(backend, ServerBackend::EpollSharded(_)) {
            format!(" × {shards} shards")
        } else {
            String::new()
        },
        if smoke { ", smoke" } else { "" }
    );
    println!("{:-<72}", "");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "N", "polls", "polls/s", "p50 us", "p99 us", "max conc"
    );
    let mut first_rate = 0.0f64;
    let mut last_rate = 0.0f64;
    let mut rate_sum = 0.0f64;
    let mut peak_conc = 0u64;
    let mut throughput_rows = String::new();
    // Short smoke windows are noisy on shared machines; gate on the best
    // of two runs per point so the regression compare measures the code,
    // not transient load.
    let attempts = if smoke { 2 } else { 1 };
    for &n in counts {
        let (mut total, mut elapsed, mut hist, mut max_conc) =
            run_point(backend, n, duration, mutate_every);
        for _ in 1..attempts {
            let (t2, e2, h2, c2) = run_point(backend, n, duration, mutate_every);
            max_conc = max_conc.max(c2);
            if t2 as f64 / e2 > total as f64 / elapsed {
                (total, elapsed, hist) = (t2, e2, h2);
            }
        }
        let rate = total as f64 / elapsed;
        if n == counts[0] {
            first_rate = rate;
        }
        last_rate = rate;
        rate_sum += rate;
        peak_conc = peak_conc.max(max_conc);
        let (p50, p99) = (
            hist.percentile(50.0).as_micros(),
            hist.percentile(99.0).as_micros(),
        );
        println!("{n:>5} {total:>12} {rate:>12.0} {p50:>10} {p99:>10} {max_conc:>10}");
        let _ = write!(
            throughput_rows,
            "{}{{\"participants\":{n},\"polls\":{total},\"polls_per_sec\":{rate:.1},\
             \"p50_us\":{p50},\"p99_us\":{p99},\"max_concurrent\":{max_conc}}}",
            if throughput_rows.is_empty() { "" } else { "," }
        );
    }
    println!("{:-<72}", "");
    // The pass predicates are pure functions in `rcb_bench::gates` (unit
    // tested on synthetic results, so the gate logic itself is covered
    // without sockets): no lock convoy, observed overlap, and — with real
    // cores to scale onto — actual growth.
    let no_collapse = gates::no_collapse(first_rate, last_rate);
    let overlapped = gates::polls_overlapped(peak_conc);
    let scaled = gates::scaling_ok(cores, first_rate, last_rate);
    println!(
        "cores={cores}  no-collapse: {no_collapse} ({first_rate:.0} → {last_rate:.0} polls/s)  \
         polls overlapped: {overlapped} (peak {peak_conc})  scaling: {}",
        if cores < 4 {
            "n/a (needs ≥4 cores)".to_string()
        } else {
            format!("{scaled}")
        }
    );

    // Payload sweep: per-poll heap-copied response-body bytes must be
    // exactly zero at every size — content polls, object requests, and
    // empty replies are all served from prefab wire images.
    println!("payload sweep — heap-copied response-body bytes per poll");
    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>14}",
        "payload B", "xml B", "content polls", "copied B", "copied/poll"
    );
    let mut copied_per_point = Vec::new();
    let mut sweep_rows = String::new();
    for payload in [16 << 10, 64 << 10, 256 << 10, 1 << 20] {
        let (xml_bytes, content_polls, total_polls, copied) =
            run_payload_point(backend, payload, sweep_rounds);
        let per_poll = copied as f64 / total_polls.max(1) as f64;
        copied_per_point.push(copied);
        println!("{payload:>12} {xml_bytes:>12} {content_polls:>14} {copied:>12} {per_poll:>14.1}");
        let _ = write!(
            sweep_rows,
            "{}{{\"payload_bytes\":{payload},\"xml_bytes\":{xml_bytes},\
             \"content_polls\":{content_polls},\"total_polls\":{total_polls},\
             \"body_bytes_copied\":{copied},\"copied_per_poll\":{per_poll:.3}}}",
            if sweep_rows.is_empty() { "" } else { "," }
        );
    }
    let zero_copy = gates::zero_copy_ok(copied_per_point.iter().copied());
    println!(
        "zero-copy read path: {}",
        if zero_copy {
            "ok (0 bytes copied per poll at every payload size)"
        } else {
            "FAILED"
        }
    );

    // Regeneration overlap: generation runs outside the host mutex, so
    // merge-carrying polls keep their quiescent latency during a storm.
    let (q_p99, d_p99, avg_regen) = run_regen_overlap(backend);
    let regen_bound = gates::regen_bound_us(q_p99);
    let regen_enforced = cores >= 2;
    let regen_ok = gates::regen_overlap_ok(cores, q_p99, d_p99);
    println!(
        "regen overlap: quiescent p99 {q_p99} us, during-regen p99 {d_p99} us \
         (bound {regen_bound} us, avg regen {avg_regen} us): {}",
        if !regen_enforced {
            "n/a (needs ≥2 cores)".to_string()
        } else if regen_ok {
            "ok".to_string()
        } else {
            "FAILED".to_string()
        }
    );

    let (content, ts, content_ev, ts_ev) = run_memory_bound(backend, versions);
    let bounded = gates::memory_bounded(content, ts, LIVE_GENERATIONS);
    println!(
        "memory bound after {versions} DOM versions: content_cache={content} \
         timestamps={ts} (bound {LIVE_GENERATIONS}), evictions content={content_ev} \
         timestamps={ts_ev}: {}",
        if bounded { "ok" } else { "FAILED" }
    );

    // Connection hold: the epoll engines must sustain ≥ 256 concurrent
    // keep-alive connections *per shard* with a dispatch pool far smaller
    // than the connection count (their ceiling is the fd limit, read via
    // the prlimit64 shim and respected by the target); the workers
    // backend is held to what its rotation design affords. On the sharded
    // backend the phase also requires the connections to have spread
    // across every event loop.
    let hold_target = gates::conn_hold_target(backend, shards, rcb_util::nofile_soft());
    let (hold_conns, hold_pool, hold_ok, hold_spread) = run_conn_hold(backend, hold_target, 2);
    println!(
        "connection hold: {hold_conns} concurrent keep-alive connections on a \
         {hold_pool}-thread pool ({backend}{}): {}",
        if hold_spread.is_empty() {
            String::new()
        } else {
            format!(", per-shard {hold_spread:?}")
        },
        if hold_ok { "ok" } else { "FAILED" }
    );

    // Update latency: parked long-polls must deliver a change in exactly
    // one completed poll per watcher (≤ 1.1 with slack), within a tight
    // change-to-delivery p99. The gates arm on the event-loop backends —
    // the workers backend degrades to bounded condvar waits, so its
    // numbers are reported but not gated.
    let (ul_participants, ul_updates): (u64, u64) = if smoke { (4, 8) } else { (4, 30) };
    let full = run_update_latency(backend, ul_participants, ul_updates, false);
    let (ul_p99, ul_polls, ul_parked, ul_woken) = (
        full.p99_us,
        full.completed_polls,
        full.polls_parked,
        full.polls_woken,
    );
    const UPDATE_LATENCY_BOUND_US: u64 = 200_000;
    let ul_armed = !matches!(backend, ServerBackend::Workers);
    let ul_per_update = ul_polls as f64 / (ul_participants * ul_updates) as f64;
    let ul_economy = gates::polls_per_update_ok(ul_polls, ul_participants, ul_updates, 0.1);
    let ul_latency = gates::update_latency_ok(ul_p99, UPDATE_LATENCY_BOUND_US);
    let ul_ok = !ul_armed || (ul_economy && ul_latency);
    println!(
        "update latency: {ul_participants} watchers × {ul_updates} updates, p99 {ul_p99} us \
         (bound {UPDATE_LATENCY_BOUND_US} us), {ul_polls} completed polls \
         ({ul_per_update:.2}/update, parked {ul_parked}, woken {ul_woken}): {}",
        if !ul_armed {
            "n/a (gated on epoll backends)".to_string()
        } else if ul_ok {
            "ok".to_string()
        } else {
            "FAILED".to_string()
        }
    );

    // Bytes on wire per update: the same phase with a delta cohort
    // (`d=1`) — woken parks complete with delta-encoded payloads, so a
    // delivered update must cost strictly fewer wire bytes than the
    // full-XML cohort's. Gated on every backend (the wake path is
    // engine-independent); degenerate zero measurements fail red.
    let dl = run_update_latency(backend, ul_participants, ul_updates, true);
    let wire_ok = gates::wire_bytes_per_update_ok(dl.bytes_per_update, full.bytes_per_update);
    println!(
        "bytes on wire per update: delta {} B vs full {} B \
         (woken {} of which delta {}, fallbacks {}): {}",
        dl.bytes_per_update,
        full.bytes_per_update,
        dl.polls_woken,
        dl.polls_woken_delta,
        dl.delta_fallbacks,
        if wire_ok { "ok" } else { "FAILED" }
    );

    // Overload: the admission mark must actually shed under a 16-client
    // storm, the admitted polls must stay fast while it does, and a calm
    // cohort afterwards must recover ≥ 90% of the pre-storm rate.
    let (ov_pre_rate, ov_p99, ov_bound, ov_shed, ov_post_rate) = run_overload(backend, smoke);
    let ov_shed_ok = gates::overload_shed_ok(ov_shed);
    // The admitted-p99 gate arms on the event-loop backends: the workers
    // rotation queue counts idle keep-alive connections, so under a
    // 16-connection storm essentially *every* request sheds and the
    // handful admitted waited out rotation — a number, not a measurement.
    let ov_p99_armed = !matches!(backend, ServerBackend::Workers);
    let ov_p99_ok = !ov_p99_armed || gates::overload_p99_ok(ov_p99, ov_bound);
    let ov_recovered = gates::overload_recovery_ok(ov_pre_rate, ov_post_rate);
    let ov_ok = ov_shed_ok && ov_p99_ok && ov_recovered;
    println!(
        "overload: pre {ov_pre_rate:.0} polls/s, storm shed {ov_shed} \
         (admitted p99 {ov_p99} us, bound {ov_bound} us{}), post {ov_post_rate:.0} polls/s \
         ({:.0}% recovered): {}",
        if ov_p99_armed {
            ""
        } else {
            ", p99 gated on epoll backends"
        },
        if ov_pre_rate > 0.0 {
            ov_post_rate / ov_pre_rate * 100.0
        } else {
            0.0
        },
        if ov_ok { "ok" } else { "FAILED" }
    );

    // Many-sessions: the router holds the full session target live in one
    // process, and per-session fairness keeps a quiet cohort served while
    // one tenant storms. The behavioural gates arm on the event-loop
    // backends — the workers rotation time-shares every held connection,
    // so its probe rates measure the rotation period, not the router —
    // and only with ≥ 4 cores: on fewer, the 8 storm client threads
    // time-share the CPU with the quiet probe, so a rate drop measures
    // scheduler starvation of the *clients*, not router unfairness, and
    // the per-session gate never sees concurrent dispatches to contend.
    // (The deterministic fairness proof independent of core count is the
    // `world_sessions` sim suite.) Holding the session target always
    // gates.
    let sr = run_sessions(backend, smoke);
    let sess_armed = !matches!(backend, ServerBackend::Workers) && cores >= 4;
    let sess_served = gates::sessions_served_ok(sr.sessions_live, sr.target);
    let sess_bound = gates::session_quiet_bound_us(sr.calm_p99_us);
    let sess_fair = !sess_armed || gates::session_fairness_ok(sr.calm_rate, sr.storm_quiet_rate);
    let sess_p99 = !sess_armed || gates::session_quiet_p99_ok(sr.storm_quiet_p99_us, sess_bound);
    let sess_contained =
        !sess_armed || gates::storm_contained_ok(sr.fairness_queued, sr.fairness_shed);
    let sess_aggregate =
        !sess_armed || gates::sessions_aggregate_ok(sr.calm_rate, sr.aggregate_storm_rate);
    let sess_ok = sess_served && sess_fair && sess_p99 && sess_contained && sess_aggregate;
    println!(
        "sessions: {} live (target {}), calm {:.0} polls/s p99 {} us; under storm: \
         quiet {:.0} polls/s p99 {} us (bound {sess_bound} us), aggregate {:.0} polls/s, \
         storm {} polls / {} sheds (queued {}, shed {}{}){}: {}",
        sr.sessions_live,
        sr.target,
        sr.calm_rate,
        sr.calm_p99_us,
        sr.storm_quiet_rate,
        sr.storm_quiet_p99_us,
        sr.aggregate_storm_rate,
        sr.storm_polls,
        sr.storm_sheds,
        sr.fairness_queued,
        sr.fairness_shed,
        sr.max_shed
            .as_ref()
            .filter(|o| o.value > 0)
            .map(|o| format!(", outlier {}={}", o.sid, o.value))
            .unwrap_or_default(),
        if sess_armed {
            ""
        } else {
            ", fairness gated on epoll backends with ≥4 cores"
        },
        if sess_ok { "ok" } else { "FAILED" }
    );

    // Machine-readable result, alongside the human output.
    let per_shard_json = hold_spread
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let outlier_json = |o: &Option<SessionOutlier>| -> String {
        match o {
            Some(o) => format!("{{\"sid\":\"{}\",\"value\":{}}}", o.sid, o.value),
            None => "null".to_string(),
        }
    };
    let sessions_json = format!(
        "{{\"target\":{},\"live\":{},\"calm_rate\":{:.1},\"calm_p99_us\":{},\
         \"storm_quiet_rate\":{:.1},\"storm_quiet_p99_us\":{},\"quiet_bound_us\":{sess_bound},\
         \"aggregate_storm_rate\":{:.1},\"storm_polls\":{},\"storm_sheds\":{},\
         \"fairness_queued\":{},\"fairness_shed\":{},\"armed\":{sess_armed},\
         \"spread\":{{\"max_shed_requests\":{},\"p99_shed_requests\":{},\
         \"max_snapshot_bytes\":{},\"p99_snapshot_bytes\":{}}}}}",
        sr.target,
        sr.sessions_live,
        sr.calm_rate,
        sr.calm_p99_us,
        sr.storm_quiet_rate,
        sr.storm_quiet_p99_us,
        sr.aggregate_storm_rate,
        sr.storm_polls,
        sr.storm_sheds,
        sr.fairness_queued,
        sr.fairness_shed,
        outlier_json(&sr.max_shed),
        outlier_json(&sr.p99_shed),
        outlier_json(&sr.max_snapshot),
        outlier_json(&sr.p99_snapshot),
    );
    let json = format!(
        "{{\n\"bench\":\"scale1\",\n\"mode\":\"{mode}\",\n\"backend\":\"{backend}\",\n\
         \"shards\":{shards},\n\
         \"cores\":{cores},\n\
         \"throughput\":[{throughput_rows}],\n\
         \"throughput_sum\":{rate_sum:.1},\n\
         \"payload_sweep\":[{sweep_rows}],\n\
         \"regen_latency\":{{\"quiescent_p99_us\":{q_p99},\"during_regen_p99_us\":{d_p99},\
         \"avg_regen_us\":{avg_regen},\"bound_us\":{regen_bound},\"enforced\":{regen_enforced}}},\n\
         \"memory_bound\":{{\"versions\":{versions},\"content_cache\":{content},\
         \"timestamps\":{ts},\"bound\":{LIVE_GENERATIONS}}},\n\
         \"conn_hold\":{{\"connections\":{hold_conns},\"pool\":{hold_pool},\
         \"per_shard\":[{per_shard_json}],\"ok\":{hold_ok}}},\n\
         \"update_latency\":{{\"participants\":{ul_participants},\"updates\":{ul_updates},\
         \"p99_us\":{ul_p99},\"bound_us\":{UPDATE_LATENCY_BOUND_US},\
         \"completed_polls\":{ul_polls},\"polls_per_update\":{ul_per_update:.3},\
         \"polls_parked\":{ul_parked},\"polls_woken\":{ul_woken},\"armed\":{ul_armed},\
         \"bytes_on_wire_per_update\":{{\"full\":{full_bpu},\"delta\":{delta_bpu},\
         \"polls_woken_delta\":{dl_woken_delta},\"delta_fallbacks\":{dl_fallbacks}}}}},\n\
         \"overload\":{{\"pre_rate\":{ov_pre_rate:.1},\"requests_shed\":{ov_shed},\
         \"storm_p99_us\":{ov_p99},\"bound_us\":{ov_bound},\"p99_armed\":{ov_p99_armed},\
         \"post_rate\":{ov_post_rate:.1}}},\n\
         \"sessions\":{sessions_json},\n\
         \"pass\":{{\"no_collapse\":{no_collapse},\"overlapped\":{overlapped},\
         \"scaled\":{scaled},\"zero_copy\":{zero_copy},\"regen_overlap\":{regen_ok},\
         \"memory_bounded\":{bounded},\"conn_hold\":{hold_ok},\
         \"update_latency\":{ul_ok},\"wire_bytes_per_update\":{wire_ok},\
         \"overload_shed\":{ov_shed_ok},\
         \"overload_p99\":{ov_p99_ok},\"overload_recovery\":{ov_recovered},\
         \"sessions_served\":{sess_served},\"session_fairness\":{sess_fair},\
         \"session_quiet_p99\":{sess_p99},\"storm_contained\":{sess_contained},\
         \"sessions_aggregate\":{sess_aggregate}}}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        full_bpu = full.bytes_per_update,
        delta_bpu = dl.bytes_per_update,
        dl_woken_delta = dl.polls_woken_delta,
        dl_fallbacks = dl.delta_fallbacks,
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }

    // Regression gate against a committed baseline (CI runs this in
    // --smoke mode): >20% aggregate-throughput drop fails the run.
    // Absolute polls/s only compare meaningfully on like hardware and
    // like load shape, so the throughput gate is ARMED only when the
    // baseline was recorded with the same core count, mode, and server
    // backend; otherwise it prints an explicit "gate disarmed" line (so
    // CI logs show at a glance whether the regression gate was live) and
    // skips — the machine-independent criteria (zero-copy, regen overlap,
    // memory bound, connection hold) still gate — and the baseline should
    // be refreshed from a run in this configuration.
    let mode = if smoke { "smoke" } else { "full" };
    let run_config = gates::GateConfig {
        cores,
        mode: mode.to_string(),
        backend: backend.label().to_string(),
        shards,
    };
    let mut regression = false;
    if let Some(baseline_path) = compare_path {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => {
                let baseline = baseline_config(&text);
                let armed = gates::compare_gate_armed(&baseline, &run_config);
                match json_scalar(&text, "throughput_sum") {
                    Some(baseline_sum) if baseline_sum > 0.0 && armed => {
                        let ratio = rate_sum / baseline_sum;
                        regression = gates::throughput_regressed(rate_sum, baseline_sum);
                        println!(
                            "baseline compare: {rate_sum:.0} vs {baseline_sum:.0} polls/s \
                             (ratio {ratio:.2}): {}",
                            if regression { "REGRESSION >20%" } else { "ok" }
                        );
                    }
                    Some(baseline_sum) if baseline_sum > 0.0 => {
                        println!(
                            "baseline compare: gate disarmed (baseline cores={}, \
                             machine cores={cores}; baseline mode={}, run \
                             mode={mode}; baseline backend={}, run \
                             backend={backend}; baseline shards={}, run \
                             shards={shards}) — throughput gate not live; refresh \
                             {baseline_path} from a run in this configuration",
                            baseline.cores, baseline.mode, baseline.backend, baseline.shards
                        );
                    }
                    _ => {
                        eprintln!("baseline {baseline_path} has no throughput_sum; failing");
                        regression = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                regression = true;
            }
        }
    }

    if !no_collapse
        || !overlapped
        || !scaled
        || !bounded
        || !zero_copy
        || !regen_ok
        || !hold_ok
        || !ul_ok
        || !wire_ok
        || !ov_ok
        || !sess_ok
        || regression
    {
        std::process::exit(1);
    }
}
