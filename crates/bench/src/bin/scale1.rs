//! scale1 — poll throughput and latency vs. participant count, over real
//! sockets.
//!
//! The paper's §5.1.2 bottleneck analysis assumes the host *uplink* is
//! the limit; this bench verifies the agent itself is not: with the
//! snapshot-based concurrent request path, aggregate poll throughput must
//! *grow* with participant count (it flat-lined when every poll
//! serialized on one host mutex). Each participant is a real
//! `TcpParticipant` on its own thread and persistent connection, polling
//! in a closed loop while a mutator thread keeps the host page churning.
//!
//! Wall-clock scaling needs CPUs to scale onto, so the pass criteria are
//! parallelism-aware: on any machine the bench requires that aggregate
//! throughput does not *collapse* as participants are added (the lock
//! convoy signature) and that polls demonstrably overlap inside the
//! agent; on machines with ≥ 4 available cores it additionally requires
//! the aggregate rate to grow with participant count.
//!
//! A second phase drives 1000+ DOM versions through the host and reports
//! the agent's generated-content/timestamp map sizes, demonstrating the
//! two-generation memory bound.
//!
//! Run: `cargo run --release -p rcb-bench --bin scale1 [-- --smoke]`
//! (`--smoke` shrinks participant counts and durations for CI).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rcb_browser::{Browser, BrowserKind};
use rcb_core::agent::{AgentConfig, LIVE_GENERATIONS};
use rcb_core::tcp::{TcpHost, TcpParticipant};
use rcb_crypto::SessionKey;
use rcb_http::server::ServerConfig;
use rcb_util::{DetRng, Histogram, SimDuration};

const PAGE: &str = "<html><head><title>scale</title></head>\
    <body><h1 id=\"headline\">scale bench</h1><div id=\"ticker\">0</div></body></html>";

fn start_host(workers: usize) -> TcpHost {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(4242));
    let mut browser = Browser::new(BrowserKind::Firefox);
    browser.url = Some(rcb_url::Url::parse("http://scale.local/").expect("static URL"));
    browser.doc = Some(rcb_html::parse_document(PAGE));
    browser.mutate_dom(|_| {}).expect("document just loaded");
    TcpHost::start_from_browser(
        "127.0.0.1:0",
        browser,
        key,
        AgentConfig::default(),
        ServerConfig {
            workers,
            queue_capacity: 256,
            read_timeout: Duration::from_millis(2),
        },
    )
    .expect("bind ephemeral port")
}

/// One load point: `n` participants polling for `duration`.
/// Returns `(total_polls, elapsed, latency histogram, max_concurrency)`.
fn run_point(n: u64, duration: Duration, mutate_every: Duration) -> (u64, f64, Histogram, u64) {
    let mut host = start_host(8);
    let addr = host.addr().to_string();
    let key = host.key().clone();
    let stop = Arc::new(AtomicBool::new(false));

    let threads: Vec<_> = (1..=n)
        .map(|pid| {
            let addr = addr.clone();
            let key = key.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> Vec<u64> {
                let mut p = TcpParticipant::join(&addr, key, pid).expect("join");
                let mut lat_us = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    if p.poll().is_err() {
                        break;
                    }
                    lat_us.push(t0.elapsed().as_micros() as u64);
                }
                lat_us
            })
        })
        .collect();

    let bench_start = Instant::now();
    let mut last_mutation = Instant::now();
    let mut tick = 0u64;
    while bench_start.elapsed() < duration {
        if last_mutation.elapsed() >= mutate_every {
            tick += 1;
            host.mutate_page(move |doc| {
                let root = doc.root();
                if let Some(t) = rcb_html::query::element_by_id(doc, root, "ticker") {
                    doc.set_attr(t, "data-tick", tick.to_string());
                }
            })
            .expect("mutate");
            last_mutation = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    // Measure the window before joining: the join tail (final in-flight
    // polls, histogram drains) grows with N and would bias rates down.
    let elapsed = bench_start.elapsed().as_secs_f64();

    let mut hist = Histogram::new();
    let mut total = 0u64;
    for t in threads {
        for us in t.join().expect("participant thread") {
            total += 1;
            hist.record(SimDuration::from_micros(us));
        }
    }
    let max_conc = host.stats().max_concurrent_polls;
    host.shutdown();
    (total, elapsed, hist, max_conc)
}

/// Memory-bound phase: ≥ `versions` DOM versions with a participant
/// syncing along; returns the final `(content_cache, timestamps)` sizes.
fn run_memory_bound(versions: u64) -> (usize, usize, u64, u64) {
    let mut host = start_host(2);
    let addr = host.addr().to_string();
    let mut p = TcpParticipant::join(&addr, host.key().clone(), 1).expect("join");
    for i in 0..versions {
        host.mutate_page(move |doc| {
            let root = doc.root();
            if let Some(t) = rcb_html::query::element_by_id(doc, root, "ticker") {
                doc.set_attr(t, "data-tick", i.to_string());
            }
        })
        .expect("mutate");
        if i % 50 == 0 {
            let _ = p.poll();
        }
    }
    let (content, ts) = host.agent_cache_lens();
    let (content_ev, ts_ev) = host.with_agent_stats(|s| {
        (s.content_evictions.get(), s.timestamp_evictions.get())
    });
    host.shutdown();
    (content, ts, content_ev, ts_ev)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (counts, duration, versions): (&[u64], Duration, u64) = if smoke {
        (&[1, 4, 8], Duration::from_millis(400), 1_000)
    } else {
        (&[1, 2, 4, 8, 16, 32, 64], Duration::from_secs(2), 5_000)
    };
    let mutate_every = Duration::from_millis(100);

    println!(
        "scale1 — poll throughput vs participant count (real sockets{})",
        if smoke { ", smoke" } else { "" }
    );
    println!("{:-<72}", "");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "N", "polls", "polls/s", "p50 us", "p99 us", "max conc"
    );
    let mut first_rate = 0.0f64;
    let mut last_rate = 0.0f64;
    let mut peak_conc = 0u64;
    for &n in counts {
        let (total, elapsed, hist, max_conc) = run_point(n, duration, mutate_every);
        let rate = total as f64 / elapsed;
        if n == counts[0] {
            first_rate = rate;
        }
        last_rate = rate;
        peak_conc = peak_conc.max(max_conc);
        println!(
            "{:>5} {:>12} {:>12.0} {:>10} {:>10} {:>10}",
            n,
            total,
            rate,
            hist.percentile(50.0).as_micros(),
            hist.percentile(99.0).as_micros(),
            max_conc
        );
    }
    println!("{:-<72}", "");
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    // No lock convoy: adding participants must not collapse the aggregate
    // rate (the global-lock design degraded as N serialized contenders).
    let no_collapse = last_rate > first_rate * 0.35;
    // The read path is concurrent: polls overlapped inside the agent.
    let overlapped = peak_conc >= 2;
    // With real cores to scale onto, demand actual growth too.
    let scaled = cores < 4 || last_rate > first_rate * 1.3;
    println!(
        "cores={cores}  no-collapse: {no_collapse} ({first_rate:.0} → {last_rate:.0} polls/s)  \
         polls overlapped: {overlapped} (peak {peak_conc})  scaling: {}",
        if cores < 4 {
            "n/a (needs ≥4 cores)".to_string()
        } else {
            format!("{scaled}")
        }
    );

    let (content, ts, content_ev, ts_ev) = run_memory_bound(versions);
    let bounded = content <= LIVE_GENERATIONS && ts <= LIVE_GENERATIONS;
    println!(
        "memory bound after {versions} DOM versions: content_cache={content} \
         timestamps={ts} (bound {LIVE_GENERATIONS}), evictions content={content_ev} \
         timestamps={ts_ev}: {}",
        if bounded { "ok" } else { "FAILED" }
    );
    if !no_collapse || !overlapped || !scaled || !bounded {
        std::process::exit(1);
    }
}
