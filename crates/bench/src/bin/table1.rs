//! Table 1 — homepage size and processing time of the 20 sites.
//!
//! Regenerates the M5 (response-content generation, non-cache and cache
//! modes) and M6 (participant content update) columns with real CPU
//! timing of this implementation, printed beside the paper's 2009
//! numbers. Absolute values differ (2009 JavaScript-in-Firefox vs. 2026
//! native Rust); the shape must hold: M5 grows with page size,
//! M5 cache > M5 non-cache, M6 well under a third of a second.

use rcb_bench::{measure_m5_m6, PAPER_TABLE1};
use rcb_origin::sites::TABLE1_SIZES_KB;

fn main() {
    println!("Table 1 — homepage size and processing time (best of 7 runs)");
    println!("{:-<100}", "");
    println!(
        "{:<4} {:<14} {:>9} | {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9}",
        "#",
        "site",
        "size KB",
        "M5nc ours ms",
        "M5c ours ms",
        "M6 ours ms",
        "M5nc paper s",
        "M5c paper s",
        "M6 paper s"
    );
    let mut ours_nc_total = 0.0;
    let mut ours_c_total = 0.0;
    for (i, &(idx, site, kb)) in TABLE1_SIZES_KB.iter().enumerate() {
        let (nc, c, m6) = measure_m5_m6(site, 7).expect("measurement runs");
        let (_, p_nc, p_c, p_m6) = PAPER_TABLE1[i];
        ours_nc_total += nc.as_secs_f64();
        ours_c_total += c.as_secs_f64();
        println!(
            "{:<4} {:<14} {:>9.1} | {:>12.3} {:>12.3} {:>9.3} | {:>12.3} {:>12.3} {:>9.3}",
            idx,
            site,
            kb,
            nc.as_micros() as f64 / 1e3,
            c.as_micros() as f64 / 1e3,
            m6.as_micros() as f64 / 1e3,
            p_nc,
            p_c,
            p_m6
        );
    }
    println!("{:-<100}", "");
    println!(
        "shape checks: M5 cache > M5 non-cache in aggregate: {}   (paper: per-site yes)",
        ours_c_total > ours_nc_total
    );
    println!("note: ours is native Rust on 2026 hardware; the paper measured JavaScript in Firefox 3 on 2009 hardware — compare shapes, not absolutes.");
}
