//! Table 2 — the 20 tasks of a usability-study co-browsing session.
//!
//! Regenerates the study protocol: 10 pairs × 2 sessions (roles swapped),
//! each running the 20 tasks of Table 2 against the live RCB stack.
//! Reports per-task outcomes and the aggregate the paper gives in §5.2.3
//! (100% completion; pairs averaged 10.8 minutes for two sessions).

use rcb_core::usability::{run_session, run_study};

fn main() {
    // One session in full detail.
    let detail = run_session(2009).expect("session runs");
    println!("Table 2 — task protocol for one session (Bob hosts, Alice joins)\n");
    println!(
        "{:<7} {:<46} {:>9} {:>7}",
        "Task#", "Description", "Duration", "Result"
    );
    for t in &detail.tasks {
        println!(
            "{:<7} {:<46} {:>9} {:>7}",
            t.id,
            t.description,
            t.duration.to_string(),
            if t.ok { "ok" } else { "FAILED" }
        );
    }

    // The full study: 10 pairs, two sessions each.
    let sessions = run_study(10, 42).expect("study runs");
    let completed = sessions.iter().filter(|s| s.all_ok()).count();
    let total_minutes: f64 = sessions.iter().map(|s| s.total.as_secs_f64() / 60.0).sum();
    let per_pair = total_minutes / 10.0;
    println!(
        "\nstudy aggregate: {completed}/{} sessions completed all 20 tasks",
        sessions.len()
    );
    println!("(paper: \"the 10 pairs of test subjects successfully completed all their co-browsing sessions\")");
    println!(
        "average per pair (two sessions): {per_pair:.1} virtual minutes   (paper: 10.8 minutes)"
    );
}
