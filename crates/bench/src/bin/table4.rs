//! Tables 3 and 4 — the Likert questionnaire summary.
//!
//! Regenerates the questionnaire pipeline with 20 simulated subjects
//! sampled from the paper's published response distributions (this is a
//! calibrated regeneration — humans cannot be re-run; see EXPERIMENTS.md).
//! Negative (inverted) questions are mirrored about the neutral mark and
//! merged with the positive twins, exactly as the paper's Table 4 does.

use rcb_core::usability::{likert, questions, LIKERT_LEVELS};

fn main() {
    println!("Table 3 — the eight positive questions (each has an inverted negative twin)\n");
    for q in questions() {
        println!("  {}-P: {}", q.id, q.positive);
    }

    let summaries = likert(20, 2009);
    println!("\nTable 4 — summary of responses (20 simulated subjects × positive+negative)\n");
    println!(
        "{:<5} {:>9} {:>9} {:>13} {:>7} {:>9}   {:<8} {:<8}",
        "Q", "Str.dis%", "Disagr%", "Neither%", "Agree%", "Str.agr%", "Median", "Mode"
    );
    for s in &summaries {
        println!(
            "{:<5} {:>9.1} {:>9.1} {:>13.1} {:>7.1} {:>9.1}   {:<8} {:<8}",
            s.id,
            s.percent[0],
            s.percent[1],
            s.percent[2],
            s.percent[3],
            s.percent[4],
            s.median,
            s.mode
        );
    }
    println!(
        "\npaper's summary: median and mode responses are \"Agree\" for all questions — ours: {}",
        if summaries
            .iter()
            .all(|s| s.median == LIKERT_LEVELS[3] && s.mode == LIKERT_LEVELS[3])
        {
            "same"
        } else {
            "DIFFERS"
        }
    );
    println!("(synthetic regeneration calibrated to the paper's Table 4 distributions)");
}
