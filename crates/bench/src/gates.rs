//! The `scale1` pass/fail gate predicates, as pure functions.
//!
//! `scale1` is itself a gate in CI, so a bug in its pass logic is a bug
//! in the safety net: a predicate that silently always passes would wave
//! regressions through, one that misfires would redden CI on healthy
//! code. Factoring the predicates out of the binary makes them unit
//! testable on synthetic phase results — no sockets, no timing — so a
//! gate regression is caught by `cargo test` alone.
//!
//! Every function here is pure: inputs are the measured phase results
//! (rates, percentiles, counters) plus frozen machine facts (core count,
//! fd limit) that the *binary* reads once and passes in.

use rcb_http::server::ServerBackend;

// ---------------------------------------------------------------------------
// Throughput-phase gates
// ---------------------------------------------------------------------------

/// No lock convoy: adding participants must not collapse the aggregate
/// poll rate. The global-lock design degraded to a fraction of its
/// single-participant rate as contenders serialized; a healthy concurrent
/// read path keeps the loaded rate above 35% of the unloaded one even on
/// a saturated single-core machine.
pub fn no_collapse(first_rate: f64, last_rate: f64) -> bool {
    last_rate > first_rate * 0.35
}

/// The read path is actually concurrent: at least two polls were observed
/// inside the agent simultaneously at some point during the run.
pub fn polls_overlapped(peak_concurrency: u64) -> bool {
    peak_concurrency >= 2
}

/// With real cores to scale onto, demand genuine growth too (on fewer
/// than 4 cores wall-clock growth is not physically available, so the
/// gate passes vacuously and `no_collapse` carries the load).
pub fn scaling_ok(cores: usize, first_rate: f64, last_rate: f64) -> bool {
    cores < 4 || last_rate > first_rate * 1.3
}

// ---------------------------------------------------------------------------
// Zero-copy / regeneration / memory gates
// ---------------------------------------------------------------------------

/// The zero-copy read path: every payload-sweep point must report exactly
/// zero heap-copied response-body bytes.
pub fn zero_copy_ok(copied_per_point: impl IntoIterator<Item = u64>) -> bool {
    copied_per_point.into_iter().all(|copied| copied == 0)
}

/// The p99 bound a during-regeneration poll must stay within: twice the
/// quiescent p99, floored at 10 ms so scheduler noise on a quiet machine
/// cannot fail the gate.
pub fn regen_bound_us(quiescent_p99_us: u64) -> u64 {
    (2 * quiescent_p99_us).max(10_000)
}

/// Content generation runs outside the host mutex: polls during a
/// regeneration storm keep (twice) their quiescent latency. Enforced only
/// with ≥ 2 cores — on one core the storm and the polls time-share the
/// CPU and the measurement means nothing.
pub fn regen_overlap_ok(cores: usize, quiescent_p99_us: u64, during_p99_us: u64) -> bool {
    cores < 2 || during_p99_us <= regen_bound_us(quiescent_p99_us)
}

/// The agent's generated-content and timestamp maps stay within the
/// two-generation bound regardless of how many DOM versions passed.
pub fn memory_bounded(content_cache: usize, timestamps: usize, bound: usize) -> bool {
    content_cache <= bound && timestamps <= bound
}

// ---------------------------------------------------------------------------
// Connection-hold gate
// ---------------------------------------------------------------------------

/// How many concurrent keep-alive connections the hold phase demands:
/// 256 per event-loop shard on the epoll engines (whose ceiling is the fd
/// limit), 32 on the workers backend (whose ceiling is the rotation
/// design). When the process fd limit is known, the target is capped so
/// the bench fits — each held loopback connection costs two fds in the
/// bench process (client end + server end), plus headroom for everything
/// else — and never drops below the workers floor.
pub fn conn_hold_target(backend: ServerBackend, shards: usize, nofile_soft: Option<u64>) -> usize {
    let base = match backend {
        ServerBackend::Workers => 32,
        ServerBackend::Epoll => 256,
        ServerBackend::EpollSharded(_) => 256 * shards.max(1),
    };
    match nofile_soft {
        Some(limit) => base.min((limit.saturating_sub(128) / 2) as usize).max(32),
        None => base,
    }
}

/// Sharded hold runs must actually have exercised every event loop.
/// (Vacuously true off the sharded backend, where there is no spread to
/// check — the slice is empty.)
pub fn shard_spread_ok(connections_per_shard: &[u64]) -> bool {
    connections_per_shard.iter().all(|&c| c > 0)
}

// ---------------------------------------------------------------------------
// Update-latency (parked long-poll) gates
// ---------------------------------------------------------------------------

/// The long-poll economy contract: delivering `updates` changes to
/// `participants` parked watchers must complete at most `1 + epsilon`
/// polls per delivered update. A ratio meaningfully above 1 means
/// participants were busy re-polling between changes — exactly what
/// parking exists to eliminate. Zero expected deliveries is a failed
/// phase, not a vacuous pass.
pub fn polls_per_update_ok(
    completed_polls: u64,
    participants: u64,
    updates: u64,
    epsilon: f64,
) -> bool {
    let expected = (participants * updates) as f64;
    expected > 0.0 && completed_polls as f64 <= expected * (1.0 + epsilon)
}

/// Change-to-delivery p99 must sit within the bound: a parked poll
/// completes on the publish wake, not on a polling-interval boundary, so
/// the latency budget is scheduler noise plus one regeneration — not a
/// poll period.
pub fn update_latency_ok(p99_us: u64, bound_us: u64) -> bool {
    p99_us <= bound_us
}

/// The delta-encoding economy contract: a woken long-poll one
/// generation behind must deliver **strictly fewer** wire bytes per
/// update than the full-XML wake for the same document. Degenerate
/// measurements fail red: zero bytes on either side means the phase
/// never actually delivered (or never measured) an update, not that
/// deltas are infinitely good.
pub fn wire_bytes_per_update_ok(delta_bytes_per_update: u64, full_bytes_per_update: u64) -> bool {
    delta_bytes_per_update > 0
        && full_bytes_per_update > 0
        && delta_bytes_per_update < full_bytes_per_update
}

// ---------------------------------------------------------------------------
// Overload-phase gates
// ---------------------------------------------------------------------------

/// The overload storm must actually overload: a run where the admission
/// mark never tripped proves nothing about shedding, so zero sheds is a
/// failed phase, not a vacuous pass.
pub fn overload_shed_ok(requests_shed: u64) -> bool {
    requests_shed > 0
}

/// Latency under overload stays bounded: the point of shedding is that
/// the polls which *are* admitted answer promptly instead of queueing
/// behind the storm. The bound is supplied by the caller (the quiescent
/// p99 with generous headroom, floored for scheduler noise).
pub fn overload_p99_ok(storm_p99_us: u64, bound_us: u64) -> bool {
    storm_p99_us <= bound_us
}

/// Graceful degradation cuts both ways: once the storm clients leave,
/// throughput must recover to at least 90% of the pre-storm rate. A
/// non-positive pre-storm rate means the phase never measured a healthy
/// baseline — red, not vacuous.
pub fn overload_recovery_ok(pre_storm_rate: f64, post_storm_rate: f64) -> bool {
    pre_storm_rate > 0.0 && post_storm_rate >= pre_storm_rate * 0.9
}

// ---------------------------------------------------------------------------
// Many-sessions (session router) gates
// ---------------------------------------------------------------------------

/// How many concurrent sessions the many-sessions phase demands: 512 on
/// the event-loop engines (the multi-tenancy acceptance point — one
/// process, one shared socket, hundreds of isolated sessions), 64 on the
/// workers backend (each idle session connection costs a rotation slot,
/// the same design limit the hold phase respects). Capped to the fd
/// budget: each session holds one loopback participant connection — two
/// fds in the bench process — plus headroom.
pub fn sessions_target(backend: ServerBackend, nofile_soft: Option<u64>) -> usize {
    let base = match backend {
        ServerBackend::Workers => 64,
        ServerBackend::Epoll | ServerBackend::EpollSharded(_) => 512,
    };
    match nofile_soft {
        Some(limit) => base.min((limit.saturating_sub(256) / 2) as usize).max(16),
        None => base,
    }
}

/// The phase must actually have held the target session count live at
/// once — fewer means joins failed or sessions fell over.
pub fn sessions_served_ok(sessions_live: usize, target: usize) -> bool {
    sessions_live >= target
}

/// Per-session fairness: while one session storms, the quiet cohort must
/// keep at least 30% of its calm poll rate. An unfair router lets the
/// storm occupy the whole dispatch pool and the quiet rate collapses —
/// the cross-tenant convoy this gate exists to catch. A non-positive
/// calm rate is a failed measurement, not a vacuous pass.
pub fn session_fairness_ok(calm_rate: f64, under_storm_rate: f64) -> bool {
    calm_rate > 0.0 && under_storm_rate >= calm_rate * 0.3
}

/// The p99 bound a quiet-session poll must stay within while a foreign
/// session storms: the calm p99 with generous headroom, floored so
/// scheduler noise on a loaded CI box cannot fail a healthy run.
pub fn session_quiet_bound_us(calm_p99_us: u64) -> u64 {
    (5 * calm_p99_us).max(100_000)
}

/// Quiet-session latency under a foreign storm stays within the bound.
pub fn session_quiet_p99_ok(under_storm_p99_us: u64, bound_us: u64) -> bool {
    under_storm_p99_us <= bound_us
}

/// The storm must actually have hit its per-session in-flight bound
/// (dispatches queued behind the session or shed at its waiter cap) —
/// otherwise the fairness run never exercised the lever it gates.
pub fn storm_contained_ok(fairness_queued: u64, fairness_shed: u64) -> bool {
    fairness_queued + fairness_shed > 0
}

/// Aggregate throughput across every session must not collapse while the
/// storm runs: the whole point of per-session fairness is that
/// containing one tenant keeps the *process* serving, so the aggregate
/// rate under storm must at least match half the quiet cohort's calm
/// rate.
pub fn sessions_aggregate_ok(calm_rate: f64, aggregate_storm_rate: f64) -> bool {
    calm_rate > 0.0 && aggregate_storm_rate >= calm_rate * 0.5
}

// ---------------------------------------------------------------------------
// Baseline-comparison gate
// ---------------------------------------------------------------------------

/// The run configuration a baseline must match for the absolute
/// throughput comparison to be meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateConfig {
    /// Available cores when the numbers were recorded.
    pub cores: usize,
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// Backend label (`"workers"` / `"epoll"` / `"epoll-sharded"`).
    pub backend: String,
    /// Resolved shard count (1 for non-sharded backends).
    pub shards: usize,
}

/// The >20% regression gate arms only when the baseline was recorded in
/// the same configuration — same hardware class, same load shape, same
/// engine. Anything else compares apples to oranges and must print an
/// explicit "gate disarmed" line instead of failing or silently passing.
pub fn compare_gate_armed(baseline: &GateConfig, run: &GateConfig) -> bool {
    baseline == run
}

/// More than 20% below the baseline aggregate throughput is a regression.
/// A non-positive baseline never arms this far (the caller fails the run
/// on a malformed baseline instead).
pub fn throughput_regressed(current_sum: f64, baseline_sum: f64) -> bool {
    baseline_sum > 0.0 && current_sum / baseline_sum < 0.8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_gate_tracks_the_35_percent_floor() {
        assert!(no_collapse(1000.0, 1000.0), "flat is healthy");
        assert!(no_collapse(1000.0, 360.0), "just above the floor");
        assert!(!no_collapse(1000.0, 350.0), "at the floor fails");
        assert!(!no_collapse(1000.0, 80.0), "the lock-convoy signature");
        // A run that served zero polls is a failure, not a pass — the
        // strict inequality keeps the degenerate case red.
        assert!(!no_collapse(0.0, 0.0));
    }

    #[test]
    fn overlap_gate_needs_two_in_flight() {
        assert!(!polls_overlapped(0));
        assert!(!polls_overlapped(1));
        assert!(polls_overlapped(2));
        assert!(polls_overlapped(64));
    }

    #[test]
    fn polls_per_update_gate_tracks_the_epsilon_budget() {
        // 4 participants × 10 updates: exactly one poll each passes.
        assert!(polls_per_update_ok(40, 4, 10, 0.1));
        // 10% slack: 44 is the ceiling, 45 busts it.
        assert!(polls_per_update_ok(44, 4, 10, 0.1));
        assert!(!polls_per_update_ok(45, 4, 10, 0.1));
        // The short-poll shape (many empties per update) must fail.
        assert!(!polls_per_update_ok(400, 4, 10, 0.1));
        // A phase that delivered nothing is red, not vacuously green.
        assert!(!polls_per_update_ok(0, 0, 10, 0.1));
        assert!(!polls_per_update_ok(0, 4, 0, 0.1));
    }

    #[test]
    fn update_latency_gate_is_a_simple_bound() {
        assert!(update_latency_ok(0, 200_000));
        assert!(update_latency_ok(200_000, 200_000));
        assert!(!update_latency_ok(200_001, 200_000));
    }

    #[test]
    fn wire_bytes_gate_demands_strict_savings_and_real_measurements() {
        assert!(wire_bytes_per_update_ok(100, 5_000));
        assert!(wire_bytes_per_update_ok(4_999, 5_000));
        // Equal is a failure: the delta path must actually save bytes.
        assert!(!wire_bytes_per_update_ok(5_000, 5_000));
        assert!(!wire_bytes_per_update_ok(5_001, 5_000));
        // Degenerate measurements are red, not vacuously green.
        assert!(!wire_bytes_per_update_ok(0, 5_000));
        assert!(!wire_bytes_per_update_ok(100, 0));
        assert!(!wire_bytes_per_update_ok(0, 0));
    }

    #[test]
    fn scaling_gate_is_parallelism_aware() {
        // Under 4 cores the gate is vacuous, whatever the rates did.
        assert!(scaling_ok(1, 1000.0, 400.0));
        assert!(scaling_ok(3, 1000.0, 1000.0));
        // With cores available, 1.3x growth is demanded.
        assert!(scaling_ok(4, 1000.0, 1301.0));
        assert!(!scaling_ok(4, 1000.0, 1300.0));
        assert!(!scaling_ok(16, 1000.0, 900.0));
    }

    #[test]
    fn zero_copy_gate_fails_on_any_copied_byte() {
        assert!(zero_copy_ok([0, 0, 0, 0]));
        assert!(zero_copy_ok([]));
        assert!(!zero_copy_ok([0, 0, 1, 0]));
        assert!(!zero_copy_ok([u64::MAX]));
    }

    #[test]
    fn regen_gate_doubles_with_a_floor() {
        assert_eq!(regen_bound_us(1_000), 10_000, "floored for quiet machines");
        assert_eq!(regen_bound_us(5_000), 10_000);
        assert_eq!(regen_bound_us(6_000), 12_000, "2x past the floor");
        // Enforced only with ≥ 2 cores.
        assert!(regen_overlap_ok(1, 1_000, 1_000_000));
        assert!(regen_overlap_ok(2, 6_000, 12_000));
        assert!(!regen_overlap_ok(2, 6_000, 12_001));
        assert!(regen_overlap_ok(8, 1_000, 10_000), "floor absorbs noise");
    }

    #[test]
    fn memory_gate_bounds_both_maps() {
        assert!(memory_bounded(2, 2, 2));
        assert!(memory_bounded(0, 1, 2));
        assert!(!memory_bounded(3, 2, 2), "content cache over");
        assert!(!memory_bounded(2, 3, 2), "timestamps over");
    }

    #[test]
    fn conn_hold_targets_scale_with_shards() {
        assert_eq!(conn_hold_target(ServerBackend::Workers, 1, None), 32);
        assert_eq!(conn_hold_target(ServerBackend::Epoll, 1, None), 256);
        assert_eq!(
            conn_hold_target(ServerBackend::EpollSharded(2), 2, None),
            512,
            "the 2-shard acceptance point"
        );
        assert_eq!(
            conn_hold_target(ServerBackend::EpollSharded(8), 8, None),
            2048
        );
        // Shard count 0 is treated as 1 (defensive; resolution happens
        // upstream).
        assert_eq!(
            conn_hold_target(ServerBackend::EpollSharded(0), 0, None),
            256
        );
    }

    #[test]
    fn conn_hold_target_respects_the_fd_budget() {
        // 20000 fds: plenty for the 2-shard target.
        assert_eq!(
            conn_hold_target(ServerBackend::EpollSharded(2), 2, Some(20_000)),
            512
        );
        // 1024 fds: 8 shards want 2048 conns = 4096 fds; capped to what
        // fits ((1024 - 128) / 2 = 448).
        assert_eq!(
            conn_hold_target(ServerBackend::EpollSharded(8), 8, Some(1_024)),
            448
        );
        // Pathologically tiny limits still leave the workers floor.
        assert_eq!(
            conn_hold_target(ServerBackend::EpollSharded(2), 2, Some(64)),
            32
        );
        assert_eq!(conn_hold_target(ServerBackend::Workers, 1, Some(1_024)), 32);
    }

    #[test]
    fn shard_spread_needs_every_loop_used() {
        assert!(shard_spread_ok(&[]), "non-sharded runs are vacuous");
        assert!(shard_spread_ok(&[128, 128]));
        assert!(shard_spread_ok(&[1, 255]));
        assert!(!shard_spread_ok(&[256, 0]), "an idle shard fails");
    }

    #[test]
    fn overload_shed_gate_demands_a_real_storm() {
        assert!(overload_shed_ok(1));
        assert!(overload_shed_ok(10_000));
        assert!(!overload_shed_ok(0), "an untripped mark is a failed phase");
    }

    #[test]
    fn overload_p99_gate_is_a_simple_bound() {
        assert!(overload_p99_ok(0, 500_000));
        assert!(overload_p99_ok(500_000, 500_000));
        assert!(!overload_p99_ok(500_001, 500_000));
    }

    #[test]
    fn overload_recovery_gate_demands_90_percent() {
        assert!(overload_recovery_ok(1000.0, 1000.0));
        assert!(overload_recovery_ok(1000.0, 900.0), "exactly 90% passes");
        assert!(!overload_recovery_ok(1000.0, 899.0));
        assert!(overload_recovery_ok(1000.0, 1500.0), "improvement passes");
        // A phase with no healthy baseline is red, not vacuous.
        assert!(!overload_recovery_ok(0.0, 1000.0));
        assert!(!overload_recovery_ok(-1.0, 1000.0));
    }

    #[test]
    fn sessions_targets_differ_by_engine_and_respect_the_fd_budget() {
        assert_eq!(sessions_target(ServerBackend::Workers, None), 64);
        assert_eq!(sessions_target(ServerBackend::Epoll, None), 512);
        assert_eq!(sessions_target(ServerBackend::EpollSharded(2), None), 512);
        // 20000 fds is plenty for the full 512-session acceptance point.
        assert_eq!(sessions_target(ServerBackend::Epoll, Some(20_000)), 512);
        // 1024 fds: (1024 - 256) / 2 = 384 sessions fit.
        assert_eq!(sessions_target(ServerBackend::Epoll, Some(1_024)), 384);
        // Pathologically tiny limits keep a usable floor.
        assert_eq!(sessions_target(ServerBackend::Epoll, Some(64)), 16);
        assert_eq!(sessions_target(ServerBackend::Workers, Some(20_000)), 64);
    }

    #[test]
    fn sessions_served_gate_demands_the_full_target() {
        assert!(sessions_served_ok(512, 512));
        assert!(sessions_served_ok(600, 512));
        assert!(!sessions_served_ok(511, 512));
        assert!(!sessions_served_ok(0, 512));
    }

    #[test]
    fn session_fairness_gate_tracks_the_30_percent_floor() {
        assert!(session_fairness_ok(1000.0, 1000.0), "unaffected is healthy");
        assert!(session_fairness_ok(1000.0, 300.0), "exactly 30% passes");
        assert!(!session_fairness_ok(1000.0, 299.0));
        assert!(!session_fairness_ok(1000.0, 0.0), "starved cohort fails");
        // A failed calm measurement is red, not vacuous.
        assert!(!session_fairness_ok(0.0, 0.0));
        assert!(!session_fairness_ok(-1.0, 100.0));
    }

    #[test]
    fn session_quiet_bound_has_headroom_and_a_floor() {
        assert_eq!(session_quiet_bound_us(1_000), 100_000, "floored");
        assert_eq!(session_quiet_bound_us(20_000), 100_000);
        assert_eq!(session_quiet_bound_us(30_000), 150_000, "5x past it");
        assert!(session_quiet_p99_ok(100_000, 100_000));
        assert!(!session_quiet_p99_ok(100_001, 100_000));
    }

    #[test]
    fn storm_containment_gate_demands_the_bound_was_hit() {
        assert!(storm_contained_ok(1, 0));
        assert!(storm_contained_ok(0, 1));
        assert!(storm_contained_ok(500, 500));
        assert!(
            !storm_contained_ok(0, 0),
            "a storm that never queued proves nothing"
        );
    }

    #[test]
    fn sessions_aggregate_gate_demands_half_the_calm_rate() {
        assert!(sessions_aggregate_ok(1000.0, 500.0), "exactly half passes");
        assert!(!sessions_aggregate_ok(1000.0, 499.0));
        assert!(sessions_aggregate_ok(1000.0, 5000.0), "a storm adds load");
        assert!(!sessions_aggregate_ok(0.0, 1000.0), "no calm baseline");
    }

    #[test]
    fn compare_gate_arms_only_on_matching_config() {
        let base = GateConfig {
            cores: 4,
            mode: "smoke".into(),
            backend: "epoll-sharded".into(),
            shards: 2,
        };
        assert!(compare_gate_armed(&base, &base.clone()));
        for (cores, mode, backend, shards) in [
            (8, "smoke", "epoll-sharded", 2),
            (4, "full", "epoll-sharded", 2),
            (4, "smoke", "epoll", 2),
            (4, "smoke", "epoll-sharded", 4),
        ] {
            let run = GateConfig {
                cores,
                mode: mode.into(),
                backend: backend.into(),
                shards,
            };
            assert!(!compare_gate_armed(&base, &run), "{run:?}");
        }
    }

    #[test]
    fn regression_gate_is_20_percent() {
        assert!(!throughput_regressed(800.0, 1000.0), "exactly -20% passes");
        assert!(throughput_regressed(799.0, 1000.0));
        assert!(!throughput_regressed(1200.0, 1000.0), "improvement passes");
        assert!(
            !throughput_regressed(100.0, 0.0),
            "non-positive baseline never arms here"
        );
    }
}
