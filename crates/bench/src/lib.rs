//! Benchmark harness shared code.
//!
//! One binary per table/figure regenerates the paper's series (see
//! DESIGN.md §4 for the index); this library holds the experiment
//! runners, the paper's published numbers for side-by-side reporting,
//! the pretty-printers, and the [`gates`] module of pure pass/fail
//! predicates behind the `scale1` CI gate.

pub mod gates;

use rcb_core::agent::{AgentConfig, CacheMode};
use rcb_core::metrics::PageMetrics;
use rcb_core::session::measure_site;
use rcb_origin::sites::TABLE1_SIZES_KB;
use rcb_sim::profiles::NetProfile;
use rcb_util::{Result, SimDuration};

/// The paper's Table 1: `(site, M5 non-cache s, M5 cache s, M6 s)`.
// amazon.com's published 0.318 s happens to approximate 1/π.
#[allow(clippy::approx_constant)]
pub const PAPER_TABLE1: [(&str, f64, f64, f64); 20] = [
    ("yahoo.com", 0.066, 0.098, 0.135),
    ("google.com", 0.015, 0.020, 0.045),
    ("youtube.com", 0.107, 0.172, 0.126),
    ("live.com", 0.019, 0.037, 0.057),
    ("msn.com", 0.079, 0.145, 0.119),
    ("myspace.com", 0.085, 0.097, 0.126),
    ("wikipedia.org", 0.113, 0.138, 0.171),
    ("facebook.com", 0.029, 0.036, 0.067),
    ("yahoo.co.jp", 0.111, 0.156, 0.154),
    ("ebay.com", 0.049, 0.098, 0.100),
    ("aol.com", 0.099, 0.189, 0.142),
    ("mail.ru", 0.176, 0.346, 0.268),
    ("amazon.com", 0.371, 0.687, 0.318),
    ("cnn.com", 0.298, 0.599, 0.280),
    ("espn.go.com", 0.175, 0.376, 0.194),
    ("free.fr", 0.211, 0.279, 0.222),
    ("adobe.com", 0.050, 0.085, 0.086),
    ("apple.com", 0.029, 0.056, 0.118),
    ("about.com", 0.056, 0.100, 0.081),
    ("nytimes.com", 0.221, 0.382, 0.196),
];

/// Number of repetitions per site ("This procedure was repeated five
/// times and we present the average results", §5.1.1).
pub const REPETITIONS: usize = 5;

/// Runs the full M1/M2 (+objects) measurement for all 20 sites under the
/// given environment and cache mode, averaged over [`REPETITIONS`].
pub fn run_all_sites(profile: &NetProfile, mode: CacheMode) -> Result<Vec<PageMetrics>> {
    let mut out = Vec::with_capacity(20);
    for &(idx, site, kb) in TABLE1_SIZES_KB.iter() {
        let mut reps = Vec::with_capacity(REPETITIONS);
        for rep in 0..REPETITIONS {
            let (load, sync) =
                measure_site(profile.clone(), mode, site, (idx as u64) << 8 | rep as u64)?;
            let mut record = PageMetrics {
                site: site.to_string(),
                page_bytes: (kb * 1024.0) as u64,
                m1: load.html_time,
                m2: sync.m2,
                ..PageMetrics::default()
            };
            match mode {
                CacheMode::Cache => record.m4 = sync.object_time,
                CacheMode::NonCache => record.m3 = sync.object_time,
            }
            reps.push(record);
        }
        out.push(rcb_core::metrics::average(&reps));
    }
    Ok(out)
}

/// Measures M5 (both modes) and M6 for one site with real CPU timing,
/// best-of-`reps` to de-noise.
pub fn measure_m5_m6(site: &str, reps: usize) -> Result<(SimDuration, SimDuration, SimDuration)> {
    use rcb_browser::{Browser, BrowserKind};
    use rcb_cache::MappingTable;
    use rcb_core::content::generate_content;
    use rcb_core::snippet::apply_new_content;
    use rcb_crypto::SessionKey;
    use rcb_origin::OriginRegistry;
    use rcb_sim::link::Pipe;
    use rcb_util::{DetRng, SimTime, Stopwatch};

    let key = SessionKey::generate_deterministic(&mut DetRng::new(1));
    let mut origins = OriginRegistry::with_alexa20();
    let profile = NetProfile::lan();
    let mut pipe = Pipe::new(profile.host_origin);
    let mut host = Browser::new(BrowserKind::Firefox);
    host.navigate(
        &rcb_url::Url::parse(&format!("http://{site}/"))?,
        &mut origins,
        &mut pipe,
        &profile,
        SimTime::ZERO,
    )?;

    let mut best_nc = SimDuration::from_secs(3600);
    let mut best_c = SimDuration::from_secs(3600);
    let mut best_m6 = SimDuration::from_secs(3600);
    for _ in 0..reps {
        let mut m = MappingTable::new();
        let nc = generate_content(&host, CacheMode::NonCache, &mut m, &key, "", 1, "")?;
        best_nc = best_nc.min(nc.generation_cost);
        let mut m = MappingTable::new();
        let c = generate_content(&host, CacheMode::Cache, &mut m, &key, "", 1, "")?;
        best_c = best_c.min(c.generation_cost);
        // M6: apply the generated content to a participant document.
        let parsed = rcb_xml::parse_new_content(&c.xml)?.expect("content present");
        let mut doc = rcb_html::parse_document(
            "<html><head><script id=\"ajax-snippet\">/*rcb*/</script></head><body></body></html>",
        );
        let sw = Stopwatch::start();
        apply_new_content(
            &mut doc,
            BrowserKind::Firefox,
            &parsed.head_children,
            &parsed.top,
        )?;
        best_m6 = best_m6.min(sw.elapsed());
    }
    Ok((best_nc, best_c, best_m6))
}

/// Formats seconds with millisecond precision, like the paper's tables.
pub fn secs(d: SimDuration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Prints a two-series figure (the M1-vs-M2 bar charts of Figs. 6/7) as
/// an aligned text table plus a coarse ASCII bar pair per site.
pub fn print_two_series(
    title: &str,
    label_a: &str,
    label_b: &str,
    rows: &[(String, SimDuration, SimDuration)],
) {
    println!("{title}");
    println!("{:-<78}", "");
    println!(
        "{:<4} {:<16} {:>10} {:>10}   comparison",
        "#", "site", label_a, label_b
    );
    let max = rows
        .iter()
        .map(|(_, a, b)| a.as_secs_f64().max(b.as_secs_f64()))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for (i, (site, a, b)) in rows.iter().enumerate() {
        let bar = |v: SimDuration| {
            let n = ((v.as_secs_f64() / max) * 28.0).round() as usize;
            "█".repeat(n.max(1))
        };
        println!(
            "{:<4} {:<16} {:>10} {:>10}   {} {}",
            i + 1,
            site,
            secs(*a),
            secs(*b),
            bar(*a),
            bar(*b),
        );
    }
    println!();
}

/// Single-repetition variant of [`run_all_sites`] for tests and smoke runs.
pub fn run_all_sites_quick(profile: &NetProfile, mode: CacheMode) -> Result<Vec<PageMetrics>> {
    let mut out = Vec::with_capacity(20);
    for &(idx, site, kb) in TABLE1_SIZES_KB.iter() {
        let (load, sync) = measure_site(profile.clone(), mode, site, idx as u64)?;
        let mut record = PageMetrics {
            site: site.to_string(),
            page_bytes: (kb * 1024.0) as u64,
            m1: load.html_time,
            m2: sync.m2,
            ..PageMetrics::default()
        };
        match mode {
            CacheMode::Cache => record.m4 = sync.object_time,
            CacheMode::NonCache => record.m3 = sync.object_time,
        }
        out.push(record);
    }
    Ok(out)
}

/// Shared default agent config for experiments.
pub fn experiment_config(mode: CacheMode) -> AgentConfig {
    AgentConfig::builder().cache_mode(mode).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_is_complete() {
        assert_eq!(PAPER_TABLE1.len(), 20);
        assert_eq!(PAPER_TABLE1[12].0, "amazon.com");
        // Paper observation: cache-mode M5 exceeds non-cache M5 everywhere.
        for (site, nc, c, m6) in PAPER_TABLE1 {
            assert!(c > nc, "{site}");
            assert!(m6 < 0.334, "{site}");
        }
    }

    #[test]
    fn m5_m6_measurement_runs() {
        let (nc, c, m6) = measure_m5_m6("google.com", 3).unwrap();
        assert!(nc > SimDuration::ZERO);
        assert!(c > SimDuration::ZERO);
        assert!(m6 > SimDuration::ZERO);
    }

    #[test]
    fn run_all_sites_covers_20() {
        // Single repetition for test speed.
        let rows = run_all_sites_quick(&NetProfile::lan(), CacheMode::Cache).unwrap();
        assert_eq!(rows.len(), 20);
        assert!(rows.iter().all(|r| r.m1 > SimDuration::ZERO));
    }
}
