//! User browsing actions and their wire codec.
//!
//! A participant's actions ("mouse click and data input", §3.3; "form
//! filling and mouse-pointer moving", §3.1 step 9) are serialized and
//! piggybacked in the body of POST polling requests; the agent decodes and
//! merges them into the host page. The host's actions flow the other way
//! inside the `userActions` element of the newContent response.

use rcb_url::percent::{decode, encode};
use rcb_util::{RcbError, Result};

/// One user browsing action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserAction {
    /// A click on an element, identified by id or address (`#id` form).
    Click {
        /// Element identifier (the agent resolves it on the host DOM).
        target: String,
    },
    /// A single form field edit.
    FormInput {
        /// Form element id.
        form: String,
        /// Field name.
        field: String,
        /// New value.
        value: String,
    },
    /// A form submission carrying all field values.
    FormSubmit {
        /// Form element id.
        form: String,
        /// Field name-value pairs.
        fields: Vec<(String, String)>,
    },
    /// Mouse-pointer movement (viewport coordinates).
    MouseMove {
        /// X coordinate.
        x: i32,
        /// Y coordinate.
        y: i32,
    },
    /// A navigation request (participant asks the host to visit a URL).
    Navigate {
        /// Absolute URL.
        url: String,
    },
}

impl UserAction {
    /// Encodes one action as a single line.
    pub fn encode(&self) -> String {
        match self {
            UserAction::Click { target } => format!("click|{}", encode(target)),
            UserAction::FormInput { form, field, value } => {
                format!("input|{}|{}|{}", encode(form), encode(field), encode(value))
            }
            UserAction::FormSubmit { form, fields } => {
                let fs: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}={}", encode(k), encode(v)))
                    .collect();
                format!("submit|{}|{}", encode(form), fs.join("&"))
            }
            UserAction::MouseMove { x, y } => format!("mouse|{x}|{y}"),
            UserAction::Navigate { url } => format!("nav|{}", encode(url)),
        }
    }

    /// Decodes one encoded line.
    pub fn decode(line: &str) -> Result<UserAction> {
        let mut parts = line.split('|');
        let kind = parts
            .next()
            .ok_or_else(|| RcbError::parse("action", "empty line"))?;
        let err = || RcbError::parse("action", format!("malformed {kind} action: {line:?}"));
        match kind {
            "click" => Ok(UserAction::Click {
                target: decode(parts.next().ok_or_else(err)?),
            }),
            "input" => Ok(UserAction::FormInput {
                form: decode(parts.next().ok_or_else(err)?),
                field: decode(parts.next().ok_or_else(err)?),
                value: decode(parts.next().ok_or_else(err)?),
            }),
            "submit" => {
                let form = decode(parts.next().ok_or_else(err)?);
                let raw = parts.next().ok_or_else(err)?;
                let fields = raw
                    .split('&')
                    .filter(|s| !s.is_empty())
                    .map(|kv| match kv.split_once('=') {
                        Some((k, v)) => Ok((decode(k), decode(v))),
                        None => Err(err()),
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(UserAction::FormSubmit { form, fields })
            }
            "mouse" => {
                let x = parts.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
                let y = parts.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
                Ok(UserAction::MouseMove { x, y })
            }
            "nav" => Ok(UserAction::Navigate {
                url: decode(parts.next().ok_or_else(err)?),
            }),
            _ => Err(RcbError::parse(
                "action",
                format!("unknown action kind {kind:?}"),
            )),
        }
    }

    /// Encodes a batch as newline-separated lines.
    pub fn encode_batch(actions: &[UserAction]) -> String {
        actions
            .iter()
            .map(UserAction::encode)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Decodes a newline-separated batch, skipping blank lines.
    pub fn decode_batch(payload: &str) -> Result<Vec<UserAction>> {
        payload
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(UserAction::decode)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<UserAction> {
        vec![
            UserAction::Click {
                target: "#add".into(),
            },
            UserAction::FormInput {
                form: "shipping".into(),
                field: "street".into(),
                value: "1 Main St | Apt #2&3".into(),
            },
            UserAction::FormSubmit {
                form: "shipping".into(),
                fields: vec![
                    ("fullname".into(), "Alice Ångström".into()),
                    ("city".into(), "New York".into()),
                ],
            },
            UserAction::MouseMove { x: -3, y: 480 },
            UserAction::Navigate {
                url: "http://amazon.com/product/7?ref=a&b=2".into(),
            },
        ]
    }

    #[test]
    fn single_roundtrip() {
        for a in samples() {
            let line = a.encode();
            assert!(!line.contains('\n'));
            assert_eq!(UserAction::decode(&line).unwrap(), a, "line {line:?}");
        }
    }

    #[test]
    fn batch_roundtrip() {
        let batch = samples();
        let wire = UserAction::encode_batch(&batch);
        assert_eq!(UserAction::decode_batch(&wire).unwrap(), batch);
    }

    #[test]
    fn empty_batch() {
        assert_eq!(UserAction::encode_batch(&[]), "");
        assert!(UserAction::decode_batch("").unwrap().is_empty());
        assert!(UserAction::decode_batch("\n \n").unwrap().is_empty());
    }

    #[test]
    fn hostile_values_survive() {
        let a = UserAction::FormInput {
            form: "f|g".into(),
            field: "a\nb".into(),
            value: "x=y&z|%25".into(),
        };
        assert_eq!(UserAction::decode(&a.encode()).unwrap(), a);
    }

    #[test]
    fn malformed_rejected() {
        assert!(UserAction::decode("bogus|x").is_err());
        assert!(UserAction::decode("mouse|a|b").is_err());
        assert!(UserAction::decode("input|onlyform").is_err());
        assert!(UserAction::decode_batch("click|%23a\nbogus|x").is_err());
    }
}
