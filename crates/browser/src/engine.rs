//! Browser navigation and resource loading.
//!
//! Drives the simulated network: an HTML fetch (the paper's M1 when run on
//! the host browser), DOM construction, supplementary-object fetches over
//! parallel persistent connections (M3 when a participant fetches from the
//! origin), cache population, cookies, and a DOM version counter that the
//! agent turns into content timestamps.

use std::collections::HashMap;

use rcb_cache::Cache;
use rcb_html::{parse_document, Document};
use rcb_http::{Request, Response};
use rcb_origin::OriginRegistry;
use rcb_sim::link::{Direction, Pipe};
use rcb_sim::profiles::NetProfile;
use rcb_url::Url;
use rcb_util::{ByteSize, RcbError, Result, SimDuration, SimTime};

use crate::kind::BrowserKind;
use crate::observer::DownloadObserver;

/// What kind of resource an HTTP exchange fetches — selects the origin
/// think-time model (dynamic HTML documents are slow to generate; static
/// objects come off a CDN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThinkClass {
    /// A dynamically generated HTML document.
    HtmlDocument,
    /// A static supplementary object.
    Object,
    /// No server think time (peer is not an origin, e.g. RCB-Agent).
    None,
}

/// Timing breakdown of one navigation.
#[derive(Debug, Clone, Copy)]
pub struct LoadStats {
    /// Time from navigation start to last HTML byte — the paper's M1.
    pub html_time: SimDuration,
    /// Time from HTML completion until every supplementary object arrived.
    pub objects_time: SimDuration,
    /// When everything finished.
    pub finished_at: SimTime,
    /// Supplementary objects fetched over the network (cache misses).
    pub objects_fetched: usize,
    /// Supplementary objects served from the local cache.
    pub objects_cached: usize,
    /// Total bytes that crossed the network.
    pub bytes_moved: ByteSize,
}

/// A simulated web browser.
pub struct Browser {
    /// Browser family (drives snippet capability paths).
    pub kind: BrowserKind,
    /// Current page URL.
    pub url: Option<Url>,
    /// Current page DOM.
    pub doc: Option<Document>,
    /// Object cache.
    pub cache: Cache,
    /// Download observer (records absolute object URLs per page).
    pub observer: DownloadObserver,
    /// Cookie jar: host → (name → value).
    cookies: HashMap<String, HashMap<String, String>>,
    /// Monotone counter bumped on every navigation or DOM mutation.
    dom_version: u64,
    /// Visited URLs, oldest first.
    history: Vec<Url>,
    /// Current position within `history` (== len when at the newest).
    history_pos: usize,
}

impl Browser {
    /// Creates a browser with a default-sized cache.
    pub fn new(kind: BrowserKind) -> Browser {
        Browser {
            kind,
            url: None,
            doc: None,
            cache: Cache::with_default_capacity(),
            observer: DownloadObserver::new(),
            cookies: HashMap::new(),
            dom_version: 0,
            history: Vec::new(),
            history_pos: 0,
        }
    }

    /// The session history, oldest first.
    pub fn history(&self) -> &[Url] {
        &self.history
    }

    /// The URL the back button would load, if any.
    pub fn back_target(&self) -> Option<&Url> {
        if self.history_pos >= 2 {
            self.history.get(self.history_pos - 2)
        } else {
            None
        }
    }

    /// The URL the forward button would load, if any.
    pub fn forward_target(&self) -> Option<&Url> {
        self.history.get(self.history_pos)
    }

    /// Moves the history cursor back one entry, returning the URL the
    /// caller must now navigate to (history-traversal navigations do not
    /// truncate the forward list).
    pub fn go_back(&mut self) -> Option<Url> {
        let target = self.back_target()?.clone();
        self.history_pos -= 1;
        Some(target)
    }

    /// Moves the history cursor forward one entry.
    pub fn go_forward(&mut self) -> Option<Url> {
        let target = self.forward_target()?.clone();
        self.history_pos += 1;
        Some(target)
    }

    /// Current DOM version (bumped on navigation and mutation).
    pub fn dom_version(&self) -> u64 {
        self.dom_version
    }

    /// Runs a mutation against the live DOM and bumps the version — the
    /// stand-in for page JavaScript (Ajax updates, DHTML) changing content
    /// under a constant URL (paper §3.1 step 9).
    pub fn mutate_dom<F: FnOnce(&mut Document)>(&mut self, f: F) -> Result<()> {
        let doc = self
            .doc
            .as_mut()
            .ok_or_else(|| RcbError::InvalidInput("no document loaded".into()))?;
        f(doc);
        self.dom_version += 1;
        Ok(())
    }

    /// Cookie header value for `host`, if any cookies are stored.
    pub fn cookie_header(&self, host: &str) -> Option<String> {
        let jar = self.cookies.get(host)?;
        if jar.is_empty() {
            return None;
        }
        let mut pairs: Vec<String> = jar.iter().map(|(k, v)| format!("{k}={v}")).collect();
        pairs.sort();
        Some(pairs.join("; "))
    }

    fn absorb_cookies(&mut self, host: &str, resp: &Response) {
        for sc in resp.headers.get_all("set-cookie") {
            if let Some(kv) = sc.split(';').next() {
                if let Some((k, v)) = kv.split_once('=') {
                    self.cookies
                        .entry(host.to_string())
                        .or_default()
                        .insert(k.trim().to_string(), v.trim().to_string());
                }
            }
        }
    }

    /// Issues one HTTP request to an origin over `pipe`, charging wire
    /// time under the profile's compression/think model; applies the
    /// cookie jar both ways. Returns the response and its arrival time.
    #[allow(clippy::too_many_arguments)]
    pub fn http_request(
        &mut self,
        url: &Url,
        mut req: Request,
        origins: &mut OriginRegistry,
        pipe: &mut Pipe,
        profile: &NetProfile,
        class: ThinkClass,
        start: SimTime,
    ) -> (Response, SimTime) {
        req.headers.set("Host", url.host.clone());
        if let Some(c) = self.cookie_header(&url.host) {
            req.headers.set("Cookie", c);
        }
        let req_arrival = pipe.transfer(start, req.wire_len(), Direction::Up);
        let resp = origins.dispatch(&url.host, &req, req_arrival);
        let think = match class {
            ThinkClass::HtmlDocument => profile.html_think(resp.body.len()),
            ThinkClass::Object => profile.object_think,
            ThinkClass::None => SimDuration::ZERO,
        };
        let resp_start = req_arrival + think;
        let ct = resp.content_type().unwrap_or_default();
        let charged = 200 + profile.wire_bytes(&ct, resp.body.len());
        let resp_arrival = pipe.transfer(resp_start, charged, Direction::Down);
        self.absorb_cookies(&url.host, &resp);
        (resp, resp_arrival)
    }

    /// Navigates to `url`: fetches the HTML document, parses it, then
    /// fetches all supplementary objects (parallel connections, cache
    /// aware). Returns the timing breakdown.
    pub fn navigate(
        &mut self,
        url: &Url,
        origins: &mut OriginRegistry,
        pipe: &mut Pipe,
        profile: &NetProfile,
        start: SimTime,
    ) -> Result<LoadStats> {
        // 1. DNS/redirect overhead, TCP connect, HTML fetch. HTTP
        // redirects (301/302) are followed like a browser would, up to a
        // small hop budget.
        let connected = pipe.connect(start + profile.first_request_overhead);
        let mut url = url.clone();
        let mut hops = 0;
        let mut begin = connected;
        let (resp, html_arrival) = loop {
            let (resp, arrived) = self.http_request(
                &url,
                Request::get(url.request_target()),
                origins,
                pipe,
                profile,
                ThinkClass::HtmlDocument,
                begin,
            );
            begin = arrived;
            if matches!(resp.status.0, 301 | 302) {
                hops += 1;
                if hops > 5 {
                    return Err(RcbError::Protocol("redirect loop".into()));
                }
                let loc = resp.headers.get("location").unwrap_or("/").to_string();
                url = url.join(&loc)?;
                continue;
            }
            break (resp, arrived);
        };
        let url = &url;
        if !resp.status.is_success() {
            return Err(RcbError::Protocol(format!(
                "navigation to {url} failed with status {}",
                resp.status.0
            )));
        }
        let mut bytes_moved = resp.wire_len();
        let html_time = html_arrival.since(start);
        let body = resp.body_str();
        let doc = parse_document(&body);

        // 2. Collect and fetch supplementary objects.
        let raw_refs = rcb_html::query::collect_supplementary_urls(&doc, doc.root());
        self.url = Some(url.clone());
        self.doc = Some(doc);
        self.dom_version += 1;
        // History: a fresh navigation truncates any forward entries,
        // unless we are re-visiting exactly where the cursor points
        // (a back/forward traversal handled by `go_back`/`go_forward`).
        let revisit = self
            .history
            .get(self.history_pos.wrapping_sub(1))
            .is_some_and(|u| u == url);
        if !revisit {
            self.history.truncate(self.history_pos);
            self.history.push(url.clone());
            self.history_pos = self.history.len();
        }

        let (finished_at, fetched, cached, obj_bytes) =
            self.fetch_objects(url, &raw_refs, origins, pipe, profile, html_arrival)?;
        bytes_moved += obj_bytes;
        Ok(LoadStats {
            html_time,
            objects_time: finished_at.since(html_arrival),
            finished_at,
            objects_fetched: fetched,
            objects_cached: cached,
            bytes_moved: ByteSize::bytes(bytes_moved as u64),
        })
    }

    /// Fetches the given raw object references (relative to `page`) over
    /// up to `profile.browser_connections` parallel connections, recording
    /// resolutions in the observer and storing bodies in the cache.
    ///
    /// Returns `(finish_time, fetched, served_from_cache, bytes_moved)`.
    pub fn fetch_objects(
        &mut self,
        page: &Url,
        raw_refs: &[String],
        origins: &mut OriginRegistry,
        pipe: &mut Pipe,
        profile: &NetProfile,
        start: SimTime,
    ) -> Result<(SimTime, usize, usize, usize)> {
        let mut free_at: Vec<SimTime> = Vec::new();
        let mut finished = start;
        let mut fetched = 0usize;
        let mut cached = 0usize;
        let mut bytes = 0usize;
        for raw in raw_refs {
            let Ok(abs) = page.join(raw) else {
                continue; // unresolvable reference: browsers skip these
            };
            self.observer.record(page, raw, &abs);
            if self.cache.contains(&abs.to_string()) {
                self.cache.lookup(&abs.to_string());
                cached += 1;
                continue;
            }
            // Pick the earliest-free connection (open lazily).
            let slot = if free_at.len() < profile.browser_connections {
                free_at.push(pipe.connect(start));
                free_at.len() - 1
            } else {
                free_at
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .map(|(i, _)| i)
                    .expect("connection pool is non-empty")
            };
            let begin = free_at[slot].max(start);
            let (resp, done) = self.http_request(
                &abs,
                Request::get(abs.request_target()),
                origins,
                pipe,
                profile,
                ThinkClass::Object,
                begin,
            );
            free_at[slot] = done;
            finished = finished.max(done);
            bytes += resp.wire_len();
            fetched += 1;
            if resp.status.is_success() {
                let ct = resp.content_type().unwrap_or_default();
                self.cache.store(&abs.to_string(), &ct, resp.body, done);
            }
        }
        Ok((finished, fetched, cached, bytes))
    }

    /// The raw supplementary references of the current page (document
    /// order, deduplicated).
    pub fn supplementary_refs(&self) -> Vec<String> {
        match &self.doc {
            Some(doc) => rcb_html::query::collect_supplementary_urls(doc, doc.root()),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_origin::sites::site_by_index;
    use rcb_origin::StaticSiteServer;

    fn world() -> (OriginRegistry, NetProfile, Pipe) {
        let origins = OriginRegistry::with_alexa20();
        let profile = NetProfile::lan();
        let pipe = Pipe::new(profile.host_origin);
        (origins, profile, pipe)
    }

    #[test]
    fn navigation_loads_dom_and_objects() {
        let (mut origins, profile, mut pipe) = world();
        let mut b = Browser::new(BrowserKind::Firefox);
        let url = Url::parse("http://google.com/").unwrap();
        let stats = b
            .navigate(&url, &mut origins, &mut pipe, &profile, SimTime::ZERO)
            .unwrap();
        assert!(b.doc.as_ref().unwrap().body().is_some());
        let spec = site_by_index(2).unwrap();
        // Some images may repeat in the page; fetched counts unique objects.
        assert!(stats.objects_fetched > 0);
        assert!(stats.objects_fetched <= spec.objects.len());
        assert_eq!(stats.objects_cached, 0);
        assert!(stats.html_time > SimDuration::ZERO);
        assert!(stats.bytes_moved.as_bytes() > spec.html_size.as_bytes());
        assert_eq!(b.dom_version(), 1);
    }

    #[test]
    fn second_visit_hits_cache() {
        let (mut origins, profile, mut pipe) = world();
        let mut b = Browser::new(BrowserKind::Firefox);
        let url = Url::parse("http://apple.com/").unwrap();
        let s1 = b
            .navigate(&url, &mut origins, &mut pipe, &profile, SimTime::ZERO)
            .unwrap();
        pipe.reset();
        let s2 = b
            .navigate(
                &url,
                &mut origins,
                &mut pipe,
                &profile,
                SimTime::from_secs(100),
            )
            .unwrap();
        assert_eq!(s2.objects_fetched, 0);
        assert_eq!(s2.objects_cached, s1.objects_fetched);
        assert!(s2.objects_time < s1.objects_time);
    }

    #[test]
    fn larger_pages_take_longer_to_load() {
        let (mut origins, profile, mut pipe) = world();
        let mut b1 = Browser::new(BrowserKind::Firefox);
        let google = b1
            .navigate(
                &Url::parse("http://google.com/").unwrap(),
                &mut origins,
                &mut pipe,
                &profile,
                SimTime::ZERO,
            )
            .unwrap();
        pipe.reset();
        let mut b2 = Browser::new(BrowserKind::Firefox);
        let amazon = b2
            .navigate(
                &Url::parse("http://amazon.com/").unwrap(),
                &mut origins,
                &mut pipe,
                &profile,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(amazon.html_time > google.html_time);
    }

    #[test]
    fn navigation_to_unknown_host_fails() {
        let (mut origins, profile, mut pipe) = world();
        let mut b = Browser::new(BrowserKind::Firefox);
        let err = b
            .navigate(
                &Url::parse("http://unknown.example/").unwrap(),
                &mut origins,
                &mut pipe,
                &profile,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err.category(), "protocol");
    }

    #[test]
    fn cookies_persist_across_requests() {
        let mut origins = OriginRegistry::new();
        origins.register(Box::new(rcb_origin::apps::ShopApp::new("shop.example.com")));
        let profile = NetProfile::lan();
        let mut pipe = Pipe::new(profile.host_origin);
        let mut b = Browser::new(BrowserKind::Firefox);
        let url = Url::parse("http://shop.example.com/").unwrap();
        let (resp, t1) = b.http_request(
            &url,
            Request::get("/"),
            &mut origins,
            &mut pipe,
            &profile,
            ThinkClass::HtmlDocument,
            SimTime::ZERO,
        );
        assert!(resp.headers.get("set-cookie").is_some());
        let cookie = b.cookie_header("shop.example.com").unwrap();
        assert!(cookie.starts_with("sid="));
        // Second request carries the cookie; server does not reissue.
        let (resp2, _) = b.http_request(
            &url,
            Request::get("/cart"),
            &mut origins,
            &mut pipe,
            &profile,
            ThinkClass::HtmlDocument,
            t1,
        );
        assert!(resp2.headers.get("set-cookie").is_none());
    }

    #[test]
    fn mutate_dom_bumps_version() {
        let (mut origins, profile, mut pipe) = world();
        let mut b = Browser::new(BrowserKind::Firefox);
        assert!(b.mutate_dom(|_| {}).is_err());
        b.navigate(
            &Url::parse("http://live.com/").unwrap(),
            &mut origins,
            &mut pipe,
            &profile,
            SimTime::ZERO,
        )
        .unwrap();
        let v = b.dom_version();
        b.mutate_dom(|doc| {
            let body = doc.body().unwrap();
            let note = doc.create_element("div");
            doc.append_child(body, note).unwrap();
        })
        .unwrap();
        assert_eq!(b.dom_version(), v + 1);
    }

    #[test]
    fn history_back_and_forward() {
        let (mut origins, profile, mut pipe) = world();
        let mut b = Browser::new(BrowserKind::Firefox);
        let google = Url::parse("http://google.com/").unwrap();
        let apple = Url::parse("http://apple.com/").unwrap();
        let ebay = Url::parse("http://ebay.com/").unwrap();
        for u in [&google, &apple] {
            b.navigate(u, &mut origins, &mut pipe, &profile, SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(b.history(), &[google.clone(), apple.clone()]);
        assert_eq!(b.back_target(), Some(&google));
        assert_eq!(b.forward_target(), None);

        // Back to google (traversal does not truncate forward history).
        let target = b.go_back().unwrap();
        b.navigate(&target, &mut origins, &mut pipe, &profile, SimTime::ZERO)
            .unwrap();
        assert_eq!(b.history().len(), 2);
        assert_eq!(b.forward_target(), Some(&apple));

        // Fresh navigation from the middle truncates the forward list.
        b.navigate(&ebay, &mut origins, &mut pipe, &profile, SimTime::ZERO)
            .unwrap();
        assert_eq!(b.history(), &[google, ebay]);
        assert_eq!(b.forward_target(), None);
        assert!(b.go_forward().is_none());
    }

    #[test]
    fn wan_navigation_is_slower_than_lan() {
        let spec = site_by_index(14).unwrap(); // cnn.com
        let lan_profile = NetProfile::lan();
        let wan_profile = NetProfile::wan();
        let mut lan_origins = OriginRegistry::new();
        lan_origins.register(Box::new(StaticSiteServer::new(spec.clone())));
        let mut wan_origins = OriginRegistry::new();
        wan_origins.register(Box::new(StaticSiteServer::new(spec)));
        let url = Url::parse("http://cnn.com/").unwrap();

        let mut lan_pipe = Pipe::new(lan_profile.host_origin);
        let mut b1 = Browser::new(BrowserKind::Firefox);
        let lan = b1
            .navigate(
                &url,
                &mut lan_origins,
                &mut lan_pipe,
                &lan_profile,
                SimTime::ZERO,
            )
            .unwrap();
        let mut wan_pipe = Pipe::new(wan_profile.host_origin);
        let mut b2 = Browser::new(BrowserKind::Firefox);
        let wan = b2
            .navigate(
                &url,
                &mut wan_origins,
                &mut wan_pipe,
                &wan_profile,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(wan.html_time > lan.html_time);
    }
}
