//! Browser capability model.
//!
//! §4.2.2: "since the innerHTML property of the head element is writable
//! in Firefox, Ajax-Snippet will directly set the new value for it. In
//! contrast, the innerHTML property is read-only for the head element (and
//! its style child element) in Internet Explorer, so Ajax-Snippet will
//! construct each child element of the head element using DOM methods."

/// The participant browser family, which selects the snippet's
//  head-update strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrowserKind {
    /// Firefox-family: head innerHTML is writable.
    Firefox,
    /// Internet-Explorer-family: head children must be built via
    /// `createElement`/`appendChild`.
    InternetExplorer,
}

impl BrowserKind {
    /// Whether `head.innerHTML` can be assigned directly.
    pub fn head_inner_html_writable(&self) -> bool {
        matches!(self, BrowserKind::Firefox)
    }

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            BrowserKind::Firefox => "Firefox",
            BrowserKind::InternetExplorer => "Internet Explorer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_split() {
        assert!(BrowserKind::Firefox.head_inner_html_writable());
        assert!(!BrowserKind::InternetExplorer.head_inner_html_writable());
        assert_ne!(
            BrowserKind::Firefox.name(),
            BrowserKind::InternetExplorer.name()
        );
    }
}
