//! Simulated browser engine.
//!
//! The host browser in RCB is a real browser with the agent extension
//! inside it; the participant browser is "a regular JavaScript-enabled Web
//! browser" (paper §1). This crate models the parts of a browser the
//! system touches:
//!
//! * [`engine`] — navigation: fetch HTML over a simulated pipe, parse it
//!   into a DOM, fetch supplementary objects over parallel connections,
//!   populate the cache, maintain a cookie jar, and track a DOM version
//!   counter (the basis for the agent's content timestamps);
//! * [`observer`] — the download observer recording the absolute URL of
//!   every object request, mirroring the paper's use of
//!   `nsIObserverService` for accurate relative→absolute URL conversion
//!   (§4.1.2, step 2);
//! * [`actions`] — the user-action vocabulary (click, form input/submit,
//!   mouse move, navigate) and its compact wire codec, which Ajax-Snippet
//!   piggybacks onto polling requests (§4.1.1);
//! * [`kind`] — the Firefox/IE capability split that decides how the
//!   snippet rebuilds head content (§4.2.2).

pub mod actions;
pub mod engine;
pub mod kind;
pub mod observer;

pub use actions::UserAction;
pub use engine::{Browser, LoadStats};
pub use kind::BrowserKind;
pub use observer::DownloadObserver;
