//! The download observer.
//!
//! §4.1.2: "To achieve an accurate URL conversion, we create an observer
//! object which implements the methods of Mozilla's nsIObserverService.
//! Using this observer object, RCB-Agent can record complete URL addresses
//! for all the object downloading requests." The observer therefore knows,
//! for every raw reference that appeared in the page, which absolute URL
//! the browser actually fetched — including cases plain base-URL joining
//! cannot reconstruct (e.g. a `<base>` tag or script-rewritten paths).

use std::collections::HashMap;

use rcb_url::Url;

/// Records raw-reference → absolute-URL resolutions per page.
#[derive(Debug, Default, Clone)]
pub struct DownloadObserver {
    /// Keyed by (page URL, raw reference as written in the DOM).
    records: HashMap<(String, String), String>,
    /// Absolute URLs fetched for each page, in fetch order.
    per_page: HashMap<String, Vec<String>>,
}

impl DownloadObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        DownloadObserver::default()
    }

    /// Records that, while loading `page`, the raw reference `raw`
    /// resolved to `absolute` and was fetched.
    pub fn record(&mut self, page: &Url, raw: &str, absolute: &Url) {
        let key = (page.to_string(), raw.to_string());
        let abs = absolute.to_string();
        self.records.insert(key, abs.clone());
        self.per_page.entry(page.to_string()).or_default().push(abs);
    }

    /// Resolves a raw reference seen on `page`: recorded resolution first,
    /// falling back to RFC-3986 joining against the page URL.
    pub fn resolve(&self, page: &Url, raw: &str) -> Option<String> {
        if let Some(abs) = self.records.get(&(page.to_string(), raw.to_string())) {
            return Some(abs.clone());
        }
        page.join(raw).ok().map(|u| u.to_string())
    }

    /// Absolute object URLs fetched for `page`, in order.
    pub fn downloads_for(&self, page: &Url) -> &[String] {
        self.per_page
            .get(&page.to_string())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Forgets everything (navigation away, or experiment reset).
    pub fn clear(&mut self) {
        self.records.clear();
        self.per_page.clear();
    }

    /// Number of recorded resolutions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn recorded_resolution_wins() {
        let mut obs = DownloadObserver::new();
        let page = url("http://cnn.com/");
        // A script rewrote "logo.png" to a CDN URL at fetch time.
        obs.record(&page, "logo.png", &url("http://cdn.cnn.com/v2/logo.png"));
        assert_eq!(
            obs.resolve(&page, "logo.png").unwrap(),
            "http://cdn.cnn.com/v2/logo.png"
        );
    }

    #[test]
    fn fallback_joins_against_page() {
        let obs = DownloadObserver::new();
        let page = url("http://cnn.com/world/index.html");
        assert_eq!(
            obs.resolve(&page, "img/a.png").unwrap(),
            "http://cnn.com/world/img/a.png"
        );
        assert_eq!(
            obs.resolve(&page, "/root.css").unwrap(),
            "http://cnn.com/root.css"
        );
        // Unsupported schemes cannot be resolved.
        assert!(obs.resolve(&page, "ftp://mirror/x").is_none());
    }

    #[test]
    fn per_page_download_order() {
        let mut obs = DownloadObserver::new();
        let p1 = url("http://a.com/");
        let p2 = url("http://b.com/");
        obs.record(&p1, "x.css", &url("http://a.com/x.css"));
        obs.record(&p1, "y.js", &url("http://a.com/y.js"));
        obs.record(&p2, "z.png", &url("http://b.com/z.png"));
        assert_eq!(
            obs.downloads_for(&p1),
            &["http://a.com/x.css", "http://a.com/y.js"]
        );
        assert_eq!(obs.downloads_for(&p2).len(), 1);
        assert_eq!(obs.len(), 3);
    }

    #[test]
    fn clear_resets() {
        let mut obs = DownloadObserver::new();
        obs.record(&url("http://a.com/"), "x", &url("http://a.com/x"));
        obs.clear();
        assert!(obs.is_empty());
        assert!(obs.downloads_for(&url("http://a.com/")).is_empty());
    }
}
