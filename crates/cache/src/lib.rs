//! Browser-cache substrate.
//!
//! RCB's *cache mode* lets a participant browser download supplementary
//! objects directly from the host browser: "RCB-Agent keeps a mapping
//! table, in which the request-URI of each cached object maps to a
//! corresponding cache key. After obtaining the cache key for a
//! request-URI, RCB-Agent reads the data of a cached object by creating a
//! cache session" (paper §4.1.1). The host-side cache here plays the role
//! of Mozilla's cache service: it stores response bodies keyed by absolute
//! URL, evicts LRU past a capacity, and supports streaming reads (the
//! "write data from the input stream of the cached object into the output
//! stream of the connected socket" path).

pub mod mapping;
pub mod store;

pub use mapping::{CacheKey, MappingTable, MappingView};
pub use store::{Cache, CacheEntry, CacheView, ReadSession};
