//! The agent's request-URI → cache-key mapping table (paper §4.1.1).
//!
//! In cache mode the agent rewrites an object's absolute URL into an
//! agent-local path (e.g. `/cache/17`). When the participant browser later
//! requests that path, the mapping table recovers which cached object to
//! serve. Keys are opaque integers so agent URLs stay short, and the table
//! is bijective per session.

use std::collections::HashMap;

/// An opaque cache key minted by the mapping table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64);

/// Bijective map between absolute object URLs and agent cache keys.
#[derive(Debug, Default)]
pub struct MappingTable {
    by_url: HashMap<String, CacheKey>,
    by_key: HashMap<CacheKey, String>,
    next: u64,
}

impl MappingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MappingTable::default()
    }

    /// Returns the key for `url`, minting one on first use.
    pub fn key_for(&mut self, url: &str) -> CacheKey {
        if let Some(&k) = self.by_url.get(url) {
            return k;
        }
        let k = CacheKey(self.next);
        self.next += 1;
        self.by_url.insert(url.to_string(), k);
        self.by_key.insert(k, url.to_string());
        k
    }

    /// Looks up the URL behind a key (the object-request path, Fig. 2).
    pub fn url_for(&self, key: CacheKey) -> Option<&str> {
        self.by_key.get(&key).map(|s| s.as_str())
    }

    /// Existing key for `url`, if minted.
    pub fn existing_key(&self, url: &str) -> Option<CacheKey> {
        self.by_url.get(url).copied()
    }

    /// The agent-local request path for a key.
    pub fn agent_path(key: CacheKey) -> String {
        format!("/cache/{}", key.0)
    }

    /// Parses an agent-local request path back into a key.
    pub fn parse_agent_path(path: &str) -> Option<CacheKey> {
        path.strip_prefix("/cache/")?.parse().ok().map(CacheKey)
    }

    /// Number of mapped URLs.
    pub fn len(&self) -> usize {
        self.by_url.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_url.is_empty()
    }

    /// An immutable key→URL view restricted to `keys`.
    ///
    /// Snapshot builders use this to resolve the objects one content
    /// generation references without borrowing the live (mutable) table:
    /// the view is self-contained, cheap to move across threads, and its
    /// size is bounded by the generation that requested it rather than by
    /// the session-lifetime table.
    pub fn view_for<I: IntoIterator<Item = CacheKey>>(&self, keys: I) -> MappingView {
        MappingView {
            by_key: keys
                .into_iter()
                .filter_map(|k| self.by_key.get(&k).map(|u| (k, u.clone())))
                .collect(),
        }
    }
}

/// A frozen read-only subset of a [`MappingTable`] (key → URL only).
#[derive(Debug, Clone, Default)]
pub struct MappingView {
    by_key: HashMap<CacheKey, String>,
}

impl MappingView {
    /// Looks up the URL behind a key.
    pub fn url_for(&self, key: CacheKey) -> Option<&str> {
        self.by_key.get(&key).map(|s| s.as_str())
    }

    /// Keys captured in this view (unordered).
    pub fn keys(&self) -> impl Iterator<Item = CacheKey> + '_ {
        self.by_key.keys().copied()
    }

    /// Number of entries in the view.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minting_is_stable() {
        let mut t = MappingTable::new();
        let k1 = t.key_for("http://h/a.png");
        let k2 = t.key_for("http://h/b.png");
        assert_ne!(k1, k2);
        assert_eq!(t.key_for("http://h/a.png"), k1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn bijection_holds() {
        let mut t = MappingTable::new();
        let k = t.key_for("http://h/x.css");
        assert_eq!(t.url_for(k), Some("http://h/x.css"));
        assert_eq!(t.existing_key("http://h/x.css"), Some(k));
        assert_eq!(t.existing_key("http://h/other"), None);
        assert_eq!(t.url_for(CacheKey(999)), None);
    }

    #[test]
    fn agent_path_roundtrip() {
        let k = CacheKey(17);
        let p = MappingTable::agent_path(k);
        assert_eq!(p, "/cache/17");
        assert_eq!(MappingTable::parse_agent_path(&p), Some(k));
        assert_eq!(MappingTable::parse_agent_path("/cache/xyz"), None);
        assert_eq!(MappingTable::parse_agent_path("/other/17"), None);
    }

    #[test]
    fn empty_initially() {
        let t = MappingTable::new();
        assert!(t.is_empty());
    }

    #[test]
    fn read_view_is_restricted_and_detached() {
        let mut t = MappingTable::new();
        let ka = t.key_for("http://h/a.png");
        let kb = t.key_for("http://h/b.png");
        let kc = t.key_for("http://h/c.png");
        let view = t.view_for([ka, kc, CacheKey(999)]);
        assert_eq!(view.len(), 2);
        assert_eq!(view.url_for(ka), Some("http://h/a.png"));
        assert_eq!(view.url_for(kc), Some("http://h/c.png"));
        assert_eq!(view.url_for(kb), None, "kb not requested");
        assert_eq!(view.url_for(CacheKey(999)), None, "unknown key dropped");
        // Later table growth does not leak into the frozen view.
        let kd = t.key_for("http://h/d.png");
        assert_eq!(view.url_for(kd), None);
        assert!(MappingView::default().is_empty());
    }
}
