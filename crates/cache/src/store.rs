//! The object cache: bounded, LRU-evicting, with streaming read sessions.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rcb_util::{ByteSize, RcbError, Result, SimTime};

/// One cached object.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The absolute URL this object was fetched from.
    pub url: String,
    /// The response `Content-Type`.
    pub content_type: String,
    /// Body bytes as a shared slice: read sessions, snapshot views, and
    /// HTTP response bodies all hold this same allocation, so serving a
    /// cached object never copies its bytes.
    pub data: Arc<[u8]>,
    /// When the entry was stored.
    pub stored_at: SimTime,
}

impl CacheEntry {
    /// Body size.
    pub fn size(&self) -> ByteSize {
        ByteSize::bytes(self.data.len() as u64)
    }
}

/// A bounded browser cache keyed by absolute URL.
#[derive(Debug)]
pub struct Cache {
    entries: HashMap<String, CacheEntry>,
    /// Recency list: front = least recently used.
    lru: Vec<String>,
    capacity: ByteSize,
    used: ByteSize,
    hits: u64,
    misses: u64,
    /// Memoized frozen view of `entries`, invalidated by any content
    /// mutation (store/remove/clear — recency touches don't affect it).
    /// Lets [`Cache::view`] be an `Arc` bump on the hot regeneration
    /// path instead of an O(entries) map clone per DOM version.
    view_memo: Mutex<Option<CacheView>>,
}

impl Cache {
    /// Creates a cache bounded to `capacity` bytes of body data.
    pub fn new(capacity: ByteSize) -> Cache {
        Cache {
            entries: HashMap::new(),
            lru: Vec::new(),
            capacity,
            used: ByteSize::ZERO,
            hits: 0,
            misses: 0,
            view_memo: Mutex::new(None),
        }
    }

    /// A cache sized like a 2009 browser default (50 MB).
    pub fn with_default_capacity() -> Cache {
        Cache::new(ByteSize::kib(50 * 1024))
    }

    /// Stores an object, evicting LRU entries if needed. Objects larger
    /// than the whole capacity are not cached. Accepts anything that
    /// converts into a shared slice (a `Vec<u8>` is converted once at
    /// store time; an already-shared `Arc<[u8]>` is adopted without
    /// copying).
    pub fn store(
        &mut self,
        url: &str,
        content_type: &str,
        data: impl Into<Arc<[u8]>>,
        now: SimTime,
    ) -> bool {
        let data = data.into();
        let size = ByteSize::bytes(data.len() as u64);
        if size > self.capacity {
            return false;
        }
        self.remove(url);
        while self.used + size > self.capacity {
            let Some(victim) = self.lru.first().cloned() else {
                break;
            };
            self.remove(&victim);
        }
        self.used += size;
        self.entries.insert(
            url.to_string(),
            CacheEntry {
                url: url.to_string(),
                content_type: content_type.to_string(),
                data,
                stored_at: now,
            },
        );
        self.lru.push(url.to_string());
        self.invalidate_view();
        true
    }

    /// Looks up an object, updating recency and hit/miss counters.
    pub fn lookup(&mut self, url: &str) -> Option<CacheEntry> {
        if let Some(entry) = self.entries.get(url) {
            let entry = entry.clone();
            self.touch(url);
            self.hits += 1;
            Some(entry)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Whether `url` is cached (no recency/counter side effects).
    pub fn contains(&self, url: &str) -> bool {
        self.entries.contains_key(url)
    }

    /// Removes an entry if present.
    pub fn remove(&mut self, url: &str) {
        if let Some(e) = self.entries.remove(url) {
            self.used = self.used.saturating_sub(e.size());
            self.lru.retain(|u| u != url);
            self.invalidate_view();
        }
    }

    /// Clears everything — the experiment protocol cleans caches "before
    /// each round of co-browsing" (paper §5.1.1).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
        self.used = ByteSize::ZERO;
        self.invalidate_view();
    }

    /// Opens a streaming read session for `url`.
    pub fn open_read_session(&mut self, url: &str) -> Result<ReadSession> {
        let entry = self
            .lookup(url)
            .ok_or_else(|| RcbError::CacheMiss(url.to_string()))?;
        Ok(ReadSession {
            data: entry.data,
            content_type: entry.content_type,
            offset: 0,
        })
    }

    /// Bytes currently stored.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// All cached URLs (unordered).
    pub fn urls(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// A frozen view of every entry, for readers that must not hold the
    /// cache (or its owner) while they work: the view shares one
    /// `Arc`-held copy of the entry map (body bytes `Arc`-shared with the
    /// live entries), memoized until the next content mutation — so the
    /// pipelined content-generation path, which captures one of these
    /// under the host mutex on every DOM version, usually pays a pointer
    /// bump, and at worst one map clone per cache change.
    pub fn view(&self) -> CacheView {
        let mut memo = self
            .view_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        memo.get_or_insert_with(|| CacheView {
            entries: Arc::new(self.entries.clone()),
        })
        .clone()
    }

    fn invalidate_view(&mut self) {
        *self
            .view_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    fn touch(&mut self, url: &str) {
        if let Some(idx) = self.lru.iter().position(|u| u == url) {
            let u = self.lru.remove(idx);
            self.lru.push(u);
        }
    }
}

/// A detached, immutable view of a cache's contents (see [`Cache::view`]).
/// Cloning is an `Arc` bump; lookups have no recency or counter side
/// effects.
#[derive(Debug, Clone, Default)]
pub struct CacheView {
    entries: Arc<HashMap<String, CacheEntry>>,
}

impl CacheView {
    /// Whether `url` was cached when the view was taken.
    pub fn contains(&self, url: &str) -> bool {
        self.entries.contains_key(url)
    }

    /// The entry for `url`, if cached when the view was taken.
    pub fn get(&self, url: &str) -> Option<&CacheEntry> {
        self.entries.get(url)
    }

    /// Number of entries in the view.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A streaming read over a cached object — the analogue of copying a cache
/// input stream into a socket output stream chunk by chunk (§4.1.1).
#[derive(Debug)]
pub struct ReadSession {
    data: Arc<[u8]>,
    /// The cached object's content type.
    pub content_type: String,
    offset: usize,
}

impl ReadSession {
    /// Reads up to `max` bytes, returning an empty slice at EOF.
    pub fn read_chunk(&mut self, max: usize) -> &[u8] {
        let start = self.offset;
        let end = (start + max).min(self.data.len());
        self.offset = end;
        &self.data[start..end]
    }

    /// Total object length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn store_lookup_roundtrip() {
        let mut c = Cache::new(ByteSize::kib(10));
        assert!(c.store("http://h/a.png", "image/png", vec![1, 2, 3], t(0)));
        let e = c.lookup("http://h/a.png").unwrap();
        assert_eq!(&*e.data, &[1, 2, 3]);
        assert_eq!(e.content_type, "image/png");
        assert_eq!(c.stats(), (1, 0));
        assert!(c.lookup("http://h/missing").is_none());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(ByteSize::bytes(30));
        c.store("a", "t", vec![0; 10], t(0));
        c.store("b", "t", vec![0; 10], t(1));
        c.store("c", "t", vec![0; 10], t(2));
        // Touch "a" so "b" becomes LRU.
        c.lookup("a");
        c.store("d", "t", vec![0; 10], t(3));
        assert!(c.contains("a"));
        assert!(!c.contains("b"));
        assert!(c.contains("c"));
        assert!(c.contains("d"));
        assert_eq!(c.used(), ByteSize::bytes(30));
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = Cache::new(ByteSize::bytes(5));
        assert!(!c.store("big", "t", vec![0; 6], t(0)));
        assert!(c.is_empty());
    }

    #[test]
    fn restore_replaces() {
        let mut c = Cache::new(ByteSize::bytes(100));
        c.store("a", "t", vec![0; 10], t(0));
        c.store("a", "t", vec![0; 4], t(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), ByteSize::bytes(4));
    }

    #[test]
    fn clear_resets() {
        let mut c = Cache::new(ByteSize::bytes(100));
        c.store("a", "t", vec![0; 10], t(0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), ByteSize::ZERO);
    }

    #[test]
    fn views_are_memoized_until_content_changes() {
        let mut c = Cache::new(ByteSize::kib(10));
        c.store("a", "t", vec![1, 2], t(0));
        let v1 = c.view();
        let v2 = c.view();
        // Same frozen map until the cache content changes.
        assert!(Arc::ptr_eq(&v1.entries, &v2.entries));
        // Recency-only traffic (lookup/touch) does not invalidate.
        c.lookup("a");
        assert!(Arc::ptr_eq(&v1.entries, &c.view().entries));
        // A store invalidates; the old view stays frozen.
        c.store("b", "t", vec![3], t(1));
        let v3 = c.view();
        assert!(!Arc::ptr_eq(&v1.entries, &v3.entries));
        assert!(!v1.contains("b"));
        assert!(v3.contains("b"));
        // Body bytes are shared, never copied, between cache and views.
        let live = c.lookup("a").unwrap();
        assert!(Arc::ptr_eq(&v3.get("a").unwrap().data, &live.data));
        // Remove and clear invalidate too.
        c.remove("b");
        assert!(!c.view().contains("b"));
        c.clear();
        assert!(c.view().is_empty());
    }

    #[test]
    fn read_session_streams_chunks() {
        let mut c = Cache::new(ByteSize::kib(1));
        c.store("a", "text/css", (0u8..100).collect::<Vec<u8>>(), t(0));
        let mut s = c.open_read_session("a").unwrap();
        assert_eq!(s.len(), 100);
        let mut collected = Vec::new();
        loop {
            let chunk = s.read_chunk(16).to_vec();
            if chunk.is_empty() {
                break;
            }
            collected.extend_from_slice(&chunk);
        }
        assert_eq!(collected, (0u8..100).collect::<Vec<u8>>());
        assert_eq!(s.remaining(), 0);
        assert!(c.open_read_session("missing").is_err());
    }
}
