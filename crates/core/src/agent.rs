//! RCB-Agent: the HTTP server inside the host browser.
//!
//! Implements the request-processing procedure of paper Fig. 2. The agent
//! receives three request types from participant browsers and classifies
//! them "by simply checking the method token and request-URI token in the
//! request-line":
//!
//! * **new connection request** — `GET /` → the initial HTML page whose
//!   head carries Ajax-Snippet;
//! * **object request** — `GET /cache/{key}` (cache mode) → the cached
//!   object's bytes streamed from the host browser cache;
//! * **Ajax polling request** — `POST /poll` → data merging, timestamp
//!   inspection, and either a Fig.-4 XML response with new content or an
//!   empty response ("to avoid hanging requests").
//!
//! The agent is transport-agnostic: [`RcbAgent::handle_request`] maps a
//! parsed request plus mutable access to the host browser onto a response
//! and a list of host-side effects (navigations and form submissions the
//! *world* must perform, because they need the network).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use rcb_browser::{Browser, UserAction};
use rcb_cache::MappingTable;
use rcb_crypto::SessionKey;
use rcb_http::{Request, Response, Status};
use rcb_util::{Counter, Histogram, Result, SimDuration, SimTime};

use crate::auth;
use crate::content::{generate_content, GeneratedContent};
use crate::policy::{InteractionPolicy, NavigationPolicy};

/// Whether supplementary objects are served from the host cache or fetched
/// from origin servers by the participant (paper §3.1 steps 7/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Rewrite cached objects to agent URLs; participants fetch from the
    /// host browser.
    Cache,
    /// Keep absolute origin URLs; participants fetch from the Web.
    NonCache,
}

/// Agent configuration.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Object-serving mode.
    pub cache_mode: CacheMode,
    /// Polling interval hint delivered to snippets (the paper used 1 s).
    pub poll_interval: SimDuration,
    /// Navigation policy for participant actions.
    pub nav_policy: NavigationPolicy,
    /// Interaction policy.
    pub interaction_policy: InteractionPolicy,
    /// Sign responses with an `X-RCB-MAC` header so snippets can verify
    /// content integrity end to end. The paper leaves this to future work
    /// ("using JavaScript to compute an HMAC for a response ... is
    /// inefficient, especially if the size of the response is large",
    /// §3.4) — in native code the cost is a few microseconds, so this
    /// reproduction ships it as an opt-in extension.
    pub authenticate_responses: bool,
    /// Ceiling on how long the TCP deployment parks a long-poll (a poll
    /// carrying an `lp=<ms>` parameter) before answering with the empty
    /// reply. The client's requested wait is capped by this, so a
    /// misbehaving snippet cannot hold connections open indefinitely.
    /// Long-polling itself is opt-in per request; polls without `lp`
    /// answer immediately as the paper specifies.
    pub park_timeout: SimDuration,
    /// How long the participant-side client waits on a blocking read
    /// before treating the connection as dead (the one knob behind every
    /// `rcb_http::client` read timeout on the TCP deployment path).
    pub client_read_timeout: SimDuration,
    /// Path prefix every agent URL of this session lives under — `""`
    /// for the classic single-session deployment, `"/s/{sid}"` when a
    /// [`crate::router::SessionRouter`] hosts many sessions in one
    /// process. The prefix is part of every minted object URL (and so
    /// covered by the object token) and of every snippet poll target
    /// (and so covered by the request HMAC): a request cannot be replayed
    /// into another session without failing authentication.
    pub path_prefix: String,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            cache_mode: CacheMode::Cache,
            poll_interval: SimDuration::from_secs(1),
            nav_policy: NavigationPolicy::Immediate,
            interaction_policy: InteractionPolicy::AllParticipants,
            authenticate_responses: false,
            park_timeout: SimDuration::from_secs(25),
            client_read_timeout: SimDuration::from_secs(10),
            path_prefix: String::new(),
        }
    }
}

impl AgentConfig {
    /// The defaults with `RCB_*` environment overrides applied — the one
    /// place agent tunables read the environment, mirroring
    /// [`rcb_http::OverloadConfig::from_env`]:
    ///
    /// * `RCB_POLL_INTERVAL_MS` — snippet polling interval hint.
    /// * `RCB_PARK_TIMEOUT_MS` — long-poll park ceiling.
    /// * `RCB_CLIENT_READ_TIMEOUT_MS` — participant-side read timeout.
    pub fn from_env() -> AgentConfig {
        fn ms(name: &str, default: SimDuration) -> SimDuration {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .map_or(default, SimDuration::from_millis)
        }
        let d = AgentConfig::default();
        AgentConfig {
            poll_interval: ms("RCB_POLL_INTERVAL_MS", d.poll_interval),
            park_timeout: ms("RCB_PARK_TIMEOUT_MS", d.park_timeout),
            client_read_timeout: ms("RCB_CLIENT_READ_TIMEOUT_MS", d.client_read_timeout),
            ..d
        }
    }

    /// A builder over the defaults — the counterpart of
    /// [`rcb_http::ServerConfig::builder`], replacing scattered
    /// field-mutation construction in tests and benches.
    pub fn builder() -> AgentConfigBuilder {
        AgentConfigBuilder {
            config: AgentConfig::default(),
        }
    }
}

/// Builder for [`AgentConfig`] — start from [`AgentConfig::builder`],
/// chain setters, [`AgentConfigBuilder::build`] at the end.
#[derive(Debug, Clone)]
pub struct AgentConfigBuilder {
    config: AgentConfig,
}

impl AgentConfigBuilder {
    /// Sets the object-serving mode.
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.config.cache_mode = mode;
        self
    }

    /// Sets the snippet polling interval hint.
    pub fn poll_interval(mut self, interval: SimDuration) -> Self {
        self.config.poll_interval = interval;
        self
    }

    /// Sets the navigation policy.
    pub fn nav_policy(mut self, policy: NavigationPolicy) -> Self {
        self.config.nav_policy = policy;
        self
    }

    /// Sets the interaction policy.
    pub fn interaction_policy(mut self, policy: InteractionPolicy) -> Self {
        self.config.interaction_policy = policy;
        self
    }

    /// Enables or disables response authentication.
    pub fn authenticate_responses(mut self, on: bool) -> Self {
        self.config.authenticate_responses = on;
        self
    }

    /// Sets the long-poll park ceiling.
    pub fn park_timeout(mut self, timeout: SimDuration) -> Self {
        self.config.park_timeout = timeout;
        self
    }

    /// Sets the participant-side client read timeout.
    pub fn client_read_timeout(mut self, timeout: SimDuration) -> Self {
        self.config.client_read_timeout = timeout;
        self
    }

    /// Sets the session path prefix (see [`AgentConfig::path_prefix`]).
    pub fn path_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.config.path_prefix = prefix.into();
        self
    }

    /// Finishes the build.
    pub fn build(self) -> AgentConfig {
        self.config
    }
}

/// A host-side effect the world must carry out on the agent's behalf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostEffect {
    /// Navigate the host browser to an absolute URL.
    Navigate(String),
    /// Submit the named form on the host page with the given fields.
    SubmitForm {
        /// Form element id on the host page.
        form: String,
        /// Field name-value pairs (already merged into the host DOM).
        fields: Vec<(String, String)>,
    },
    /// A click on a non-navigation element (dispatched to the host app).
    Click {
        /// Element id on the host page.
        target: String,
    },
}

/// Result of handling one request.
#[derive(Debug)]
pub struct AgentOutcome {
    /// The HTTP response to send back.
    pub response: Response,
    /// Host-side effects to execute (empty for most requests).
    pub effects: Vec<HostEffect>,
}

impl AgentOutcome {
    fn just(response: Response) -> AgentOutcome {
        AgentOutcome {
            response,
            effects: Vec::new(),
        }
    }
}

/// Per-participant session state.
#[derive(Debug, Clone)]
pub struct ParticipantInfo {
    /// The content timestamp this participant last acknowledged.
    pub last_doc_time: u64,
    /// When the participant first polled.
    pub joined_at: SimTime,
    /// Polls served to this participant.
    pub polls: u64,
}

/// Per-participant state sharded across independently locked maps, so
/// concurrent polls from different participants never contend on one lock.
///
/// Participant ids are spread across [`ParticipantShards::SHARDS`] maps by
/// a multiplicative hash; each poll touches exactly one shard lock, held
/// only for the map operation (never across content generation or I/O).
/// The sequential [`RcbAgent`] keeps its own plain map — shards are for
/// the concurrent real-socket deployment.
#[derive(Debug)]
pub struct ParticipantShards {
    shards: Vec<Mutex<HashMap<u64, ParticipantInfo>>>,
}

impl ParticipantShards {
    /// Number of independent locks. 16 is far beyond the core counts a
    /// host browser machine has, so two concurrent polls rarely collide.
    pub const SHARDS: usize = 16;

    /// Creates an empty shard set.
    pub fn new() -> ParticipantShards {
        ParticipantShards {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, pid: u64) -> &Mutex<HashMap<u64, ParticipantInfo>> {
        // Fibonacci hashing spreads sequential pids across shards.
        let h = pid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 60) as usize % Self::SHARDS]
    }

    /// Records one poll from `pid` carrying `client_time`, inserting the
    /// participant on first contact.
    pub fn record_poll(&self, pid: u64, client_time: u64, now: SimTime) {
        let mut map = self
            .shard(pid)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = map.entry(pid).or_insert(ParticipantInfo {
            last_doc_time: 0,
            joined_at: now,
            polls: 0,
        });
        entry.polls += 1;
        entry.last_doc_time = entry.last_doc_time.max(client_time);
    }

    /// Advances `pid`'s acknowledged content timestamp (never backwards).
    pub fn advance_doc_time(&self, pid: u64, doc_time: u64) {
        let mut map = self
            .shard(pid)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = map.get_mut(&pid) {
            entry.last_doc_time = entry.last_doc_time.max(doc_time);
        }
    }

    /// Removes a participant (left the session).
    pub fn remove(&self, pid: u64) {
        self.shard(pid)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&pid);
    }

    /// Copy of one participant's state.
    pub fn get(&self, pid: u64) -> Option<ParticipantInfo> {
        self.shard(pid)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&pid)
            .cloned()
    }

    /// Total participants across all shards.
    pub fn count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }
}

impl Default for ParticipantShards {
    fn default() -> Self {
        ParticipantShards::new()
    }
}

/// Counters the agent exposes for experiments.
#[derive(Debug, Default)]
pub struct AgentStats {
    /// New-connection requests served.
    pub connections: Counter,
    /// Object requests served.
    pub object_requests: Counter,
    /// Polls answered with new content.
    pub polls_with_content: Counter,
    /// Polls answered empty.
    pub polls_empty: Counter,
    /// Requests rejected by authentication.
    pub auth_failures: Counter,
    /// Content generations performed (cache hits excluded).
    pub generations: Counter,
    /// Generated-content cache entries evicted by the generation bound.
    pub content_evictions: Counter,
    /// Timestamp entries evicted by the generation bound.
    pub timestamp_evictions: Counter,
    /// Polls rejected for a missing or malformed participant id.
    pub bad_poll_requests: Counter,
    /// Wall-clock generation costs (the paper's M5 samples).
    pub m5: Histogram,
}

/// How many DOM generations the agent keeps generated content and
/// timestamps for: the live generation plus one predecessor, so a
/// participant mid-flight on the previous version can still be served
/// while memory stays bounded no matter how often the host page mutates.
pub const LIVE_GENERATIONS: usize = 2;

/// RCB-Agent.
pub struct RcbAgent {
    /// Configuration (mode, interval, policies).
    pub config: AgentConfig,
    key: SessionKey,
    /// The URL↔key mapping table, behind its own leaf mutex so pipelined
    /// content generation (running outside the host lock) can mint keys
    /// concurrently with sequential agent work. Lock ordering: this is a
    /// leaf — never held while acquiring any other lock.
    mapping: Arc<Mutex<MappingTable>>,
    /// Generated content cached per (dom_version, mode) — "the generated
    /// XML format response content is reusable for multiple participant
    /// browsers" (§4.1.2).
    content_cache: HashMap<(u64, bool), Arc<GeneratedContent>>,
    participants: HashMap<u64, ParticipantInfo>,
    /// Host actions (e.g. mouse moves) pending broadcast to participants.
    host_actions: Vec<UserAction>,
    /// Pending participant actions awaiting host confirmation (under
    /// [`NavigationPolicy::HostConfirm`]).
    pub pending_confirmation: Vec<(u64, HostEffect)>,
    /// The dom_version → document-timestamp map, bounded to
    /// [`LIVE_GENERATIONS`] entries.
    timestamps: HashMap<u64, u64>,
    /// DOM versions currently retained (front = oldest); minting a
    /// timestamp for a new version evicts beyond [`LIVE_GENERATIONS`].
    live_versions: VecDeque<u64>,
    /// Highest timestamp minted so far (timestamps must be strictly
    /// monotonic even when two DOM versions land in the same millisecond).
    last_timestamp: u64,
    /// Experiment counters.
    pub stats: AgentStats,
}

impl RcbAgent {
    /// Creates an agent with the given key and configuration.
    pub fn new(key: SessionKey, config: AgentConfig) -> RcbAgent {
        RcbAgent {
            config,
            key,
            mapping: Arc::new(Mutex::new(MappingTable::new())),
            content_cache: HashMap::new(),
            participants: HashMap::new(),
            host_actions: Vec::new(),
            pending_confirmation: Vec::new(),
            timestamps: HashMap::new(),
            live_versions: VecDeque::new(),
            last_timestamp: 0,
            stats: AgentStats::default(),
        }
    }

    /// The session key (shared out of band with participants).
    pub fn key(&self) -> &SessionKey {
        &self.key
    }

    /// Currently connected participants.
    pub fn participants(&self) -> &HashMap<u64, ParticipantInfo> {
        &self.participants
    }

    /// Queues a host action (mouse-pointer movement etc.) for broadcast in
    /// the next content update.
    pub fn queue_host_action(&mut self, action: UserAction) {
        self.host_actions.push(action);
    }

    /// Removes a participant (left the session).
    pub fn remove_participant(&mut self, id: u64) {
        self.participants.remove(&id);
    }

    /// The document timestamp for the host's current DOM version, minting
    /// one if this version has not been seen yet (timestamps are
    /// "milliseconds since midnight of January 1, 1970", §4.1.1).
    pub fn current_doc_time(&mut self, host: &Browser, now: SimTime) -> u64 {
        let version = host.dom_version();
        if let Some(&t) = self.timestamps.get(&version) {
            return t;
        }
        let t = now.as_document_timestamp().max(self.last_timestamp + 1);
        self.last_timestamp = t;
        self.timestamps.insert(version, t);
        self.live_versions.push_back(version);
        while self.live_versions.len() > LIVE_GENERATIONS {
            let stale = self.live_versions.pop_front().expect("length just checked");
            if self.timestamps.remove(&stale).is_some() {
                self.stats.timestamp_evictions.incr();
            }
            for mode in [true, false] {
                if self.content_cache.remove(&(stale, mode)).is_some() {
                    self.stats.content_evictions.incr();
                }
            }
        }
        t
    }

    /// Number of generated-content cache entries currently retained.
    pub fn content_cache_len(&self) -> usize {
        self.content_cache.len()
    }

    /// Number of DOM-version timestamps currently retained.
    pub fn timestamps_len(&self) -> usize {
        self.timestamps.len()
    }

    /// The shared URL↔key mapping table (snapshot builders and pipelined
    /// generation clone the `Arc` and lock it briefly as a leaf).
    pub fn mapping(&self) -> &Arc<Mutex<MappingTable>> {
        &self.mapping
    }

    /// Cached generated content for `(version, mode)`, if retained.
    pub fn cached_content(&self, version: u64, mode: CacheMode) -> Option<Arc<GeneratedContent>> {
        self.content_cache
            .get(&(version, matches!(mode, CacheMode::Cache)))
            .cloned()
    }

    /// Drains pending host actions into their wire encoding (captured by
    /// a generation about to run).
    pub fn take_host_actions(&mut self) -> String {
        UserAction::encode_batch(&std::mem::take(&mut self.host_actions))
    }

    /// Admits content generated outside the agent (the pipelined path:
    /// prepared under the host lock, finished without it) into the
    /// generated-content cache, and accounts the generation in the stats.
    /// The cache insert is skipped when `version` has already aged out of
    /// the live-generation window — a stale insert would never be evicted.
    pub fn admit_generated(
        &mut self,
        version: u64,
        mode: CacheMode,
        content: Arc<GeneratedContent>,
    ) {
        self.stats.generations.incr();
        self.stats.m5.record(content.generation_cost);
        if self.timestamps.contains_key(&version) {
            self.content_cache
                .insert((version, matches!(mode, CacheMode::Cache)), content);
        }
    }

    /// Handles one HTTP request from a participant browser (Fig. 2).
    pub fn handle_request(
        &mut self,
        req: &Request,
        host: &mut Browser,
        now: SimTime,
    ) -> AgentOutcome {
        // Session-local classification: the configured path prefix is
        // stripped first ("" for the classic deployment), so `/s/{sid}`
        // requests classify exactly like un-prefixed ones.
        let local = req.path().strip_prefix(self.config.path_prefix.as_str());
        let mut outcome = match (req.method, local) {
            (rcb_http::Method::Get, Some("/")) => {
                self.stats.connections.incr();
                AgentOutcome::just(Response::html(self.initial_page()))
            }
            (rcb_http::Method::Get, Some(path)) if path.starts_with("/cache/") => {
                AgentOutcome::just(self.serve_object(req, path, host))
            }
            (rcb_http::Method::Post, Some("/poll")) => self.handle_poll(req, host, now),
            _ => AgentOutcome::just(Response::error(Status::NOT_FOUND, "unknown request type")),
        };
        if self.config.authenticate_responses && outcome.response.status.is_success() {
            crate::auth::sign_response(&self.key, &mut outcome.response);
        }
        outcome
    }

    /// The initial HTML page carrying Ajax-Snippet (paper §3.1 step 2).
    ///
    /// The head contains the snippet script element (kept across every
    /// later content update); the body shows the key-entry form a
    /// participant fills with the out-of-band secret (§3.4).
    pub fn initial_page(&self) -> String {
        format!(
            "<!DOCTYPE html><html><head><title>RCB co-browsing session</title>\
             <script id=\"ajax-snippet\" type=\"text/javascript\">\
             /* Ajax-Snippet: polls RCB-Agent every {interval} ms, piggybacks \
             user actions, applies newContent updates. */\
             var RCB_POLL_INTERVAL = {interval};\
             function rcbPoll() {{ /* XMLHttpRequest POST /poll */ }}\
             function rcbSubmit(id) {{ /* capture form, piggyback */ return false; }}\
             function rcbClick(id) {{ /* send click action */ return false; }}\
             function rcbInput(id) {{ /* send field edit */ return true; }}\
             </script></head><body>\
             <form id=\"rcb-join\" action=\"/join\" method=\"post\">\
             <input type=\"password\" name=\"session-key\" value=\"\">\
             <input type=\"submit\" value=\"Join session\"></form>\
             <div id=\"rcb-status\">waiting for first synchronization…</div>\
             </body></html>",
            interval = self.config.poll_interval.as_millis()
        )
    }

    /// Serves an object request in cache mode (Fig. 2, middle path).
    /// `local_path` is the request path with the session prefix already
    /// stripped; the token is verified over the *full* path, so a token
    /// minted for one session cannot fetch from another.
    fn serve_object(&mut self, req: &Request, local_path: &str, host: &mut Browser) -> Response {
        // Authenticate via the per-object token embedded at rewrite time.
        // Missing and empty `k=` are the same malformed request: 400,
        // byte-identical to the concurrent path's answer.
        let token = match req.query_param("k") {
            Some(t) if !t.is_empty() => t,
            _ => {
                return Response::error(Status::BAD_REQUEST, auth::OBJECT_TOKEN_REQUIRED);
            }
        };
        if !auth::verify_object_token(&self.key, req.path(), &token) {
            self.stats.auth_failures.incr();
            return Response::error(Status::UNAUTHORIZED, "bad object token");
        }
        let Some(cache_key) = MappingTable::parse_agent_path(local_path) else {
            return Response::error(Status::BAD_REQUEST, "malformed cache path");
        };
        let Some(url) = self
            .mapping
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .url_for(cache_key)
            .map(str::to_string)
        else {
            return Response::error(Status::NOT_FOUND, "unmapped cache key");
        };
        match host.cache.open_read_session(&url) {
            Ok(mut session) => {
                // Stream input → output, as the agent copies the cache
                // stream into the socket (§4.1.1).
                let mut body = Vec::with_capacity(session.len());
                loop {
                    let chunk = session.read_chunk(16 * 1024);
                    if chunk.is_empty() {
                        break;
                    }
                    body.extend_from_slice(chunk);
                }
                self.stats.object_requests.incr();
                Response::with_body(Status::OK, &session.content_type, body)
            }
            Err(_) => Response::error(Status::NOT_FOUND, "object evicted from cache"),
        }
    }

    /// Handles an Ajax polling request (Fig. 2, right path): data merging,
    /// timestamp inspection, response sending (§4.1.1).
    fn handle_poll(&mut self, req: &Request, host: &mut Browser, now: SimTime) -> AgentOutcome {
        if !auth::verify_request(&self.key, req) {
            self.stats.auth_failures.incr();
            return AgentOutcome::just(Response::error(
                Status::UNAUTHORIZED,
                "HMAC verification failed",
            ));
        }
        // Every participant must carry a well-formed `p` id: falling back
        // to a default would collapse all such participants into one
        // shared pid-0 state (merged poll counters, shared last_doc_time).
        let Some(pid) = req.query_param("p").and_then(|v| v.parse().ok()) else {
            self.stats.bad_poll_requests.incr();
            return AgentOutcome::just(Response::error(
                Status::BAD_REQUEST,
                "missing or malformed participant id",
            ));
        };
        // Borrowed parse: `from_utf8_lossy` only allocates when the body
        // is not valid UTF-8 (never for snippet-built polls).
        let body = String::from_utf8_lossy(&req.body);
        let (client_time, actions) = parse_poll_body(&body);
        let entry = self.participants.entry(pid).or_insert(ParticipantInfo {
            last_doc_time: 0,
            joined_at: now,
            polls: 0,
        });
        entry.polls += 1;
        entry.last_doc_time = entry.last_doc_time.max(client_time);

        // Data merging: apply piggybacked participant actions.
        let effects = self.merge_poll_actions(pid, actions, host);

        // Timestamp inspection: compare the participant's content
        // timestamp against the host's current one.
        let doc_time = self.current_doc_time(host, now);
        let response = if client_time < doc_time {
            let cache_mode = self.config.cache_mode;
            match self.content_for(host, doc_time, cache_mode) {
                Ok(content) => {
                    self.stats.polls_with_content.incr();
                    self.participants
                        .get_mut(&pid)
                        .expect("participant registered above")
                        .last_doc_time = doc_time;
                    Response::xml(content.xml.clone())
                }
                Err(e) => Response::error(Status::INTERNAL, &e.to_string()),
            }
        } else {
            self.stats.polls_empty.incr();
            Response::empty_ok()
        };
        AgentOutcome { response, effects }
    }

    /// Returns (possibly cached) generated content for the host's current
    /// document version.
    pub fn content_for(
        &mut self,
        host: &Browser,
        doc_time: u64,
        mode: CacheMode,
    ) -> Result<Arc<GeneratedContent>> {
        let version = host.dom_version();
        let cache_key = (version, matches!(mode, CacheMode::Cache));
        if let Some(c) = self.content_cache.get(&cache_key) {
            return Ok(Arc::clone(c));
        }
        let host_actions = UserAction::encode_batch(&std::mem::take(&mut self.host_actions));
        let content = {
            let mut mapping = self
                .mapping
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            generate_content(
                host,
                mode,
                &mut mapping,
                &self.key,
                &self.config.path_prefix,
                doc_time,
                &host_actions,
            )?
        };
        self.stats.generations.incr();
        self.stats.m5.record(content.generation_cost);
        let arc = Arc::new(content);
        self.content_cache.insert(cache_key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Applies a batch of piggybacked participant actions to the host side
    /// (the write half of a poll), returning the host effects the world
    /// must carry out. This is the only poll work that needs mutable host
    /// access; concurrent deployments call it under the host lock while
    /// read-only polls proceed from a published snapshot.
    pub fn merge_poll_actions(
        &mut self,
        pid: u64,
        actions: Vec<UserAction>,
        host: &mut Browser,
    ) -> Vec<HostEffect> {
        let mut effects = Vec::new();
        if self.config.interaction_policy.allows(pid) {
            for action in actions {
                self.merge_action(pid, action, host, &mut effects);
            }
        }
        effects
    }

    /// Applies one piggybacked participant action to the host side.
    fn merge_action(
        &mut self,
        pid: u64,
        action: UserAction,
        host: &mut Browser,
        effects: &mut Vec<HostEffect>,
    ) {
        match action {
            UserAction::FormInput { form, field, value } => {
                // Merge the field value into the corresponding form on the
                // host browser (the form co-filling path, §4.1.1).
                let _ = host.mutate_dom(|doc| {
                    let root = doc.root();
                    if let Some(form_node) = rcb_html::query::element_by_id(doc, root, &form) {
                        for input in doc.descendants(form_node) {
                            if doc.get_attr(input, "name") == Some(field.as_str()) {
                                doc.set_attr(input, "value", value.clone());
                                return;
                            }
                        }
                    }
                });
            }
            UserAction::FormSubmit { form, fields } => {
                // Merge all fields, then hand the submission to the world.
                for (field, value) in &fields {
                    let form = form.clone();
                    let (field, value) = (field.clone(), value.clone());
                    let _ = host.mutate_dom(|doc| {
                        let root = doc.root();
                        if let Some(form_node) = rcb_html::query::element_by_id(doc, root, &form) {
                            for input in doc.descendants(form_node) {
                                if doc.get_attr(input, "name") == Some(field.as_str()) {
                                    doc.set_attr(input, "value", value.clone());
                                    return;
                                }
                            }
                        }
                    });
                }
                self.gate(pid, HostEffect::SubmitForm { form, fields }, effects);
            }
            UserAction::Click { target } => {
                self.gate(pid, HostEffect::Click { target }, effects);
            }
            UserAction::Navigate { url } => {
                self.gate(pid, HostEffect::Navigate(url), effects);
            }
            UserAction::MouseMove { x, y } => {
                // Mirror to the other users via the next content update.
                self.host_actions.push(UserAction::MouseMove { x, y });
            }
        }
    }

    /// Applies the navigation policy to a host effect.
    fn gate(&mut self, pid: u64, effect: HostEffect, effects: &mut Vec<HostEffect>) {
        match self.config.nav_policy {
            NavigationPolicy::Immediate => effects.push(effect),
            NavigationPolicy::HostConfirm => self.pending_confirmation.push((pid, effect)),
        }
    }

    /// Host decision on the oldest pending action (HostConfirm policy).
    pub fn decide_pending(&mut self, decision: crate::policy::HostDecision) -> Option<HostEffect> {
        if self.pending_confirmation.is_empty() {
            return None;
        }
        let (_, effect) = self.pending_confirmation.remove(0);
        match decision {
            crate::policy::HostDecision::Approve => Some(effect),
            crate::policy::HostDecision::Reject => None,
        }
    }
}

/// Splits a poll body into the carried content timestamp and actions.
///
/// Wire form: first line `t=<millis>`, remaining lines the action batch.
pub fn parse_poll_body(body: &str) -> (u64, Vec<UserAction>) {
    let mut lines = body.lines();
    let t = lines
        .next()
        .and_then(|l| l.strip_prefix("t="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let rest: Vec<&str> = lines.collect();
    let actions = UserAction::decode_batch(&rest.join("\n")).unwrap_or_default();
    (t, actions)
}

/// Builds a poll body from a timestamp and pending actions.
pub fn build_poll_body(doc_time: u64, actions: &[UserAction]) -> Vec<u8> {
    let mut s = format!("t={doc_time}");
    let batch = UserAction::encode_batch(actions);
    if !batch.is_empty() {
        s.push('\n');
        s.push_str(&batch);
    }
    s.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::sign_request;
    use rcb_browser::BrowserKind;
    use rcb_origin::OriginRegistry;
    use rcb_sim::link::Pipe;
    use rcb_sim::profiles::NetProfile;
    use rcb_url::Url;
    use rcb_util::DetRng;

    fn agent() -> RcbAgent {
        RcbAgent::new(
            SessionKey::generate_deterministic(&mut DetRng::new(3)),
            AgentConfig::default(),
        )
    }

    fn loaded_host(site: &str) -> Browser {
        let mut origins = OriginRegistry::with_alexa20();
        let profile = NetProfile::lan();
        let mut pipe = Pipe::new(profile.host_origin);
        let mut b = Browser::new(BrowserKind::Firefox);
        b.navigate(
            &Url::parse(&format!("http://{site}/")).unwrap(),
            &mut origins,
            &mut pipe,
            &profile,
            SimTime::ZERO,
        )
        .unwrap();
        b
    }

    fn signed_poll(agent: &RcbAgent, pid: u64, t: u64, actions: &[UserAction]) -> Request {
        let mut req = Request::post(format!("/poll?p={pid}"), build_poll_body(t, actions));
        sign_request(agent.key(), &mut req);
        req
    }

    #[test]
    fn initial_page_carries_snippet() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        let out = a.handle_request(&Request::get("/"), &mut host, SimTime::ZERO);
        assert!(out.response.status.is_success());
        let body = out.response.body_str();
        assert!(body.contains("id=\"ajax-snippet\""));
        assert!(body.contains("type=\"password\""));
        assert_eq!(a.stats.connections.get(), 1);
    }

    #[test]
    fn unauthenticated_poll_rejected() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        let req = Request::post("/poll?p=1", build_poll_body(0, &[]));
        let out = a.handle_request(&req, &mut host, SimTime::ZERO);
        assert_eq!(out.response.status, Status::UNAUTHORIZED);
        assert_eq!(a.stats.auth_failures.get(), 1);
        assert!(a.participants().is_empty());
    }

    #[test]
    fn first_poll_delivers_content_second_is_empty() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        let now = SimTime::from_secs(1);
        let out = a.handle_request(&signed_poll(&a, 1, 0, &[]), &mut host, now);
        assert_eq!(
            out.response.content_type().as_deref(),
            Some("application/xml")
        );
        assert!(!out.response.body.is_empty());
        let nc = rcb_xml::parse_new_content(&out.response.body_str())
            .unwrap()
            .unwrap();
        // Participant acknowledges the timestamp on the next poll.
        let out2 = a.handle_request(&signed_poll(&a, 1, nc.doc_time, &[]), &mut host, now);
        assert!(out2.response.body.is_empty());
        assert_eq!(a.stats.polls_with_content.get(), 1);
        assert_eq!(a.stats.polls_empty.get(), 1);
    }

    #[test]
    fn dom_change_triggers_new_content() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        let t1 = SimTime::from_secs(1);
        let out = a.handle_request(&signed_poll(&a, 1, 0, &[]), &mut host, t1);
        let nc = rcb_xml::parse_new_content(&out.response.body_str())
            .unwrap()
            .unwrap();
        // Host page mutates (Ajax on the host side).
        host.mutate_dom(|doc| {
            let body = doc.body().unwrap();
            let div = doc.create_element("div");
            doc.append_child(body, div).unwrap();
        })
        .unwrap();
        let t2 = SimTime::from_secs(5);
        let out2 = a.handle_request(&signed_poll(&a, 1, nc.doc_time, &[]), &mut host, t2);
        let nc2 = rcb_xml::parse_new_content(&out2.response.body_str())
            .unwrap()
            .unwrap();
        assert!(nc2.doc_time > nc.doc_time);
    }

    #[test]
    fn content_is_generated_once_for_multiple_participants() {
        let mut a = agent();
        let mut host = loaded_host("live.com");
        let now = SimTime::from_secs(1);
        for pid in 1..=5 {
            let out = a.handle_request(&signed_poll(&a, pid, 0, &[]), &mut host, now);
            assert!(!out.response.body.is_empty());
        }
        assert_eq!(a.stats.generations.get(), 1, "reused for 5 participants");
        assert_eq!(a.participants().len(), 5);
    }

    #[test]
    fn form_input_merges_into_host_dom() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        let v0 = host.dom_version();
        let action = UserAction::FormInput {
            form: "q".into(),
            field: "q".into(),
            value: "macbook air".into(),
        };
        a.handle_request(&signed_poll(&a, 1, 0, &[action]), &mut host, SimTime::ZERO);
        let doc = host.doc.as_ref().unwrap();
        let form = rcb_html::query::element_by_id(doc, doc.root(), "q").unwrap();
        let fields = rcb_html::query::form_fields(doc, form);
        assert!(fields.contains(&("q".to_string(), "macbook air".to_string())));
        assert!(host.dom_version() > v0, "merge bumps the DOM version");
    }

    #[test]
    fn navigation_effect_respects_policy() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        let nav = UserAction::Navigate {
            url: "http://apple.com/".into(),
        };
        let out = a.handle_request(
            &signed_poll(&a, 1, 0, std::slice::from_ref(&nav)),
            &mut host,
            SimTime::ZERO,
        );
        assert_eq!(
            out.effects,
            vec![HostEffect::Navigate("http://apple.com/".into())]
        );

        // HostConfirm queues instead.
        let mut confirm_agent = RcbAgent::new(
            SessionKey::generate_deterministic(&mut DetRng::new(4)),
            AgentConfig::builder()
                .nav_policy(NavigationPolicy::HostConfirm)
                .build(),
        );
        let out2 = confirm_agent.handle_request(
            &signed_poll(&confirm_agent, 1, 0, &[nav]),
            &mut host,
            SimTime::ZERO,
        );
        assert!(out2.effects.is_empty());
        assert_eq!(confirm_agent.pending_confirmation.len(), 1);
        let approved = confirm_agent.decide_pending(crate::policy::HostDecision::Approve);
        assert_eq!(
            approved,
            Some(HostEffect::Navigate("http://apple.com/".into()))
        );
    }

    #[test]
    fn view_only_policy_drops_actions() {
        let mut a = RcbAgent::new(
            SessionKey::generate_deterministic(&mut DetRng::new(5)),
            AgentConfig::builder()
                .interaction_policy(InteractionPolicy::ViewOnly)
                .build(),
        );
        let mut host = loaded_host("google.com");
        let nav = UserAction::Navigate {
            url: "http://apple.com/".into(),
        };
        let out = a.handle_request(&signed_poll(&a, 1, 0, &[nav]), &mut host, SimTime::ZERO);
        assert!(out.effects.is_empty());
        assert!(a.pending_confirmation.is_empty());
    }

    #[test]
    fn cache_mode_objects_served_end_to_end() {
        let mut a = agent();
        let mut host = loaded_host("apple.com");
        let out = a.handle_request(&signed_poll(&a, 1, 0, &[]), &mut host, SimTime::ZERO);
        let nc = rcb_xml::parse_new_content(&out.response.body_str())
            .unwrap()
            .unwrap();
        let rcb_xml::TopLevel::Body(body) = &nc.top else {
            panic!("expected body page");
        };
        // Pull an agent URL out of the synchronized content and fetch it.
        let idx = body.inner_html.find("/cache/").expect("agent URL present");
        let tail = &body.inner_html[idx..];
        let url = tail.split('"').next().unwrap().to_string();
        let resp = a
            .handle_request(&Request::get(url.clone()), &mut host, SimTime::ZERO)
            .response;
        assert!(resp.status.is_success(), "object fetch failed for {url}");
        assert!(!resp.body.is_empty());
        assert_eq!(a.stats.object_requests.get(), 1);

        // Tampered token is rejected.
        let bad = url.replace("?k=", "?k=0");
        let resp2 = a
            .handle_request(&Request::get(bad), &mut host, SimTime::ZERO)
            .response;
        assert_eq!(resp2.status, Status::UNAUTHORIZED);
    }

    #[test]
    fn mouse_moves_are_broadcast_via_user_actions() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        // Participant 1 syncs first, then reports a mouse move on an
        // up-to-date poll (so the move is queued, not consumed by p1's own
        // content generation).
        let out0 = a.handle_request(&signed_poll(&a, 1, 0, &[]), &mut host, SimTime::ZERO);
        let nc0 = rcb_xml::parse_new_content(&out0.response.body_str())
            .unwrap()
            .unwrap();
        let mv = UserAction::MouseMove { x: 7, y: 9 };
        let quiet = a.handle_request(
            &signed_poll(&a, 1, nc0.doc_time, &[mv]),
            &mut host,
            SimTime::ZERO,
        );
        assert!(quiet.response.body.is_empty());
        host.mutate_dom(|_| {}).unwrap();
        let out = a.handle_request(
            &signed_poll(&a, 2, 0, &[]),
            &mut host,
            SimTime::from_secs(2),
        );
        let nc = rcb_xml::parse_new_content(&out.response.body_str())
            .unwrap()
            .unwrap();
        assert!(nc.user_actions.contains("mouse|7|9"));
    }

    #[test]
    fn unknown_paths_rejected() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        let out = a.handle_request(&Request::get("/favicon.ico"), &mut host, SimTime::ZERO);
        assert_eq!(out.response.status, Status::NOT_FOUND);
    }

    #[test]
    fn poll_without_participant_id_is_rejected() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        // Correctly signed but missing the `p` parameter entirely: before
        // the fix this collapsed into a shared pid-0 participant.
        let mut missing = Request::post("/poll", build_poll_body(0, &[]));
        sign_request(a.key(), &mut missing);
        let out = a.handle_request(&missing, &mut host, SimTime::ZERO);
        assert_eq!(out.response.status, Status::BAD_REQUEST);

        // Malformed (non-numeric) id is rejected the same way.
        let mut malformed = Request::post("/poll?p=alice", build_poll_body(0, &[]));
        sign_request(a.key(), &mut malformed);
        let out2 = a.handle_request(&malformed, &mut host, SimTime::ZERO);
        assert_eq!(out2.response.status, Status::BAD_REQUEST);

        assert!(
            a.participants().is_empty(),
            "no phantom pid-0 participant registered"
        );
        assert_eq!(a.stats.bad_poll_requests.get(), 2);
        assert_eq!(a.stats.polls_with_content.get(), 0);
        assert_eq!(a.stats.polls_empty.get(), 0);
    }

    #[test]
    fn generation_caches_stay_bounded_across_many_versions() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        for i in 0..1_200u64 {
            host.mutate_dom(|_| {}).unwrap();
            let now = SimTime::from_millis(i);
            let t = a.current_doc_time(&host, now);
            a.content_for(&host, t, CacheMode::Cache).unwrap();
            assert!(
                a.timestamps_len() <= LIVE_GENERATIONS,
                "timestamps unbounded at iteration {i}"
            );
            assert!(
                a.content_cache_len() <= LIVE_GENERATIONS,
                "content cache unbounded at iteration {i}"
            );
        }
        assert_eq!(
            a.stats.timestamp_evictions.get(),
            1_200 - LIVE_GENERATIONS as u64
        );
        assert!(a.stats.content_evictions.get() > 0);
    }

    #[test]
    fn predecessor_generation_content_stays_cached() {
        let mut a = agent();
        let mut host = loaded_host("google.com");
        let t1 = a.current_doc_time(&host, SimTime::from_millis(1));
        a.content_for(&host, t1, CacheMode::Cache).unwrap();
        host.mutate_dom(|_| {}).unwrap();
        let t2 = a.current_doc_time(&host, SimTime::from_millis(2));
        a.content_for(&host, t2, CacheMode::Cache).unwrap();
        // Both the live generation and its predecessor are retained...
        assert_eq!(a.content_cache_len(), 2);
        assert_eq!(a.timestamps_len(), 2);
        // ...and a third generation evicts only the oldest.
        host.mutate_dom(|_| {}).unwrap();
        let t3 = a.current_doc_time(&host, SimTime::from_millis(3));
        a.content_for(&host, t3, CacheMode::Cache).unwrap();
        assert_eq!(a.content_cache_len(), 2);
        assert_eq!(a.stats.content_evictions.get(), 1);
    }

    #[test]
    fn participant_shards_isolate_and_count() {
        let shards = ParticipantShards::new();
        let now = SimTime::from_secs(1);
        for pid in 1..=64u64 {
            shards.record_poll(pid, 0, now);
            shards.record_poll(pid, 10, now);
        }
        assert_eq!(shards.count(), 64);
        let p7 = shards.get(7).unwrap();
        assert_eq!(p7.polls, 2);
        assert_eq!(p7.last_doc_time, 10);
        shards.advance_doc_time(7, 99);
        assert_eq!(shards.get(7).unwrap().last_doc_time, 99);
        // Never backwards.
        shards.advance_doc_time(7, 5);
        assert_eq!(shards.get(7).unwrap().last_doc_time, 99);
        shards.remove(7);
        assert!(shards.get(7).is_none());
        assert_eq!(shards.count(), 63);
    }

    #[test]
    fn poll_body_roundtrip() {
        let actions = vec![
            UserAction::Click {
                target: "#x".into(),
            },
            UserAction::MouseMove { x: 1, y: 2 },
        ];
        let body = build_poll_body(777, &actions);
        let (t, decoded) = parse_poll_body(&String::from_utf8(body).unwrap());
        assert_eq!(t, 777);
        assert_eq!(decoded, actions);
    }
}
