//! Request-URI HMAC authentication (paper §3.4).
//!
//! "Before sending a request, Ajax-Snippet computes an HMAC for the
//! request and appends the HMAC as an additional parameter of the
//! request-URI. After receiving a request sent by Ajax-Snippet, RCB-Agent
//! computes a new HMAC for the received request (discarding the HMAC
//! parameter) and verifies the new HMAC against the HMAC embedded in the
//! request-URI."
//!
//! The MAC covers the method, the request-target with the `hmac` parameter
//! removed, and the SHA-256 of the body (polling requests carry action
//! payloads in the body, which must not be forgeable).

use rcb_crypto::hmac::hmac_sha256_hex;
use rcb_crypto::{SessionKey, Sha256};
use rcb_http::Request;

/// Name of the request-URI parameter carrying the MAC.
pub const HMAC_PARAM: &str = "hmac";

/// Canonical message for a request: `METHOD target-without-hmac\nbodyhash`.
fn canonical_message(method: &str, target_without_mac: &str, body: &[u8]) -> Vec<u8> {
    let body_hash = Sha256::digest(body);
    let mut msg = Vec::with_capacity(target_without_mac.len() + 80);
    msg.extend_from_slice(method.as_bytes());
    msg.push(b' ');
    msg.extend_from_slice(target_without_mac.as_bytes());
    msg.push(b'\n');
    msg.extend_from_slice(&body_hash);
    msg
}

/// Removes the `hmac` parameter from a request-target, returning the
/// stripped target and the extracted MAC value (if present).
pub fn strip_mac(target: &str) -> (String, Option<String>) {
    let Some((path, query)) = target.split_once('?') else {
        return (target.to_string(), None);
    };
    let mut mac = None;
    let kept: Vec<&str> = query
        .split('&')
        .filter(|kv| {
            if let Some(v) = kv.strip_prefix("hmac=") {
                mac = Some(v.to_string());
                false
            } else {
                true
            }
        })
        .collect();
    let stripped = if kept.is_empty() {
        path.to_string()
    } else {
        format!("{}?{}", path, kept.join("&"))
    };
    (stripped, mac)
}

/// Signs a request in place: computes the MAC over the canonical message
/// and appends it as the `hmac` request-URI parameter.
pub fn sign_request(key: &SessionKey, req: &mut Request) {
    let (stripped, _) = strip_mac(&req.target);
    let msg = canonical_message(req.method.as_str(), &stripped, &req.body);
    let mac = hmac_sha256_hex(key.as_bytes(), &msg);
    let sep = if stripped.contains('?') { '&' } else { '?' };
    req.target = format!("{stripped}{sep}hmac={mac}");
}

/// Verifies a signed request. Returns `true` iff a MAC is present and
/// matches the canonical message under `key`.
pub fn verify_request(key: &SessionKey, req: &Request) -> bool {
    let (stripped, mac) = strip_mac(&req.target);
    let Some(mac) = mac else {
        return false;
    };
    let msg = canonical_message(req.method.as_str(), &stripped, &req.body);
    rcb_crypto::verify_hmac_hex(key.as_bytes(), &msg, &mac)
}

/// Header carrying a response MAC (extension; paper §3.4 future work).
pub const RESPONSE_MAC_HEADER: &str = "X-RCB-MAC";

/// Signs a response body: `HMAC(key, body)` placed in
/// [`RESPONSE_MAC_HEADER`].
pub fn sign_response(key: &SessionKey, resp: &mut rcb_http::Response) {
    let mac = hmac_sha256_hex(key.as_bytes(), &resp.body);
    resp.headers.set(RESPONSE_MAC_HEADER, mac);
}

/// Verifies a response MAC. Returns `true` iff the header is present and
/// matches the body under `key`.
pub fn verify_response(key: &SessionKey, resp: &rcb_http::Response) -> bool {
    match resp.headers.get(RESPONSE_MAC_HEADER) {
        Some(mac) => rcb_crypto::verify_hmac_hex(key.as_bytes(), &resp.body, mac),
        None => false,
    }
}

/// A short per-object token for cache-mode URLs: the first 16 hex digits
/// of `HMAC(key, path)`. Rewritten object URLs carry it so the agent never
/// serves cached content to unauthenticated fetchers.
pub fn object_token(key: &SessionKey, path: &str) -> String {
    hmac_sha256_hex(key.as_bytes(), path.as_bytes())[..16].to_string()
}

/// Verifies an object token in constant time.
pub fn verify_object_token(key: &SessionKey, path: &str, token: &str) -> bool {
    rcb_crypto::hmac::ct_eq(object_token(key, path).as_bytes(), token.as_bytes())
}

/// The 400 body for an object request whose `k` parameter is missing *or*
/// empty — no token material was presented, which is a malformed request,
/// not an authentication failure. One shared constant so the sequential
/// agent and the concurrent TCP path answer byte-identically.
pub const OBJECT_TOKEN_REQUIRED: &str = "missing object token";

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_util::DetRng;

    fn key() -> SessionKey {
        SessionKey::generate_deterministic(&mut DetRng::new(7))
    }

    #[test]
    fn sign_then_verify() {
        let k = key();
        let mut req = Request::post("/poll?t=5&p=2", b"click|%23add".to_vec());
        sign_request(&k, &mut req);
        assert!(req.target.contains("hmac="));
        assert!(verify_request(&k, &req));
    }

    #[test]
    fn missing_mac_rejected() {
        let k = key();
        let req = Request::post("/poll?t=5", Vec::new());
        assert!(!verify_request(&k, &req));
    }

    #[test]
    fn tampered_target_rejected() {
        let k = key();
        let mut req = Request::post("/poll?t=5", Vec::new());
        sign_request(&k, &mut req);
        let mut tampered = req.clone();
        tampered.target = tampered.target.replace("t=5", "t=6");
        assert!(!verify_request(&k, &tampered));
    }

    #[test]
    fn tampered_body_rejected() {
        let k = key();
        let mut req = Request::post("/poll?t=5", b"nav|http%3A%2F%2Fa".to_vec());
        sign_request(&k, &mut req);
        let mut tampered = req.clone();
        tampered.body = b"nav|http%3A%2F%2Fevil".to_vec();
        assert!(!verify_request(&k, &tampered));
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = key();
        let k2 = SessionKey::generate_deterministic(&mut DetRng::new(8));
        let mut req = Request::post("/poll", Vec::new());
        sign_request(&k1, &mut req);
        assert!(!verify_request(&k2, &req));
    }

    #[test]
    fn re_signing_replaces_mac() {
        let k = key();
        let mut req = Request::post("/poll?t=1", Vec::new());
        sign_request(&k, &mut req);
        let first = req.target.clone();
        sign_request(&k, &mut req);
        assert_eq!(first, req.target, "idempotent for same content");
        // Changing content then re-signing yields a different MAC.
        req.target = "/poll?t=2".to_string();
        sign_request(&k, &mut req);
        assert_ne!(first, req.target);
        assert!(verify_request(&k, &req));
    }

    #[test]
    fn strip_mac_variants() {
        assert_eq!(strip_mac("/p"), ("/p".to_string(), None));
        assert_eq!(
            strip_mac("/p?hmac=ff"),
            ("/p".to_string(), Some("ff".to_string()))
        );
        assert_eq!(
            strip_mac("/p?a=1&hmac=ff&b=2"),
            ("/p?a=1&b=2".to_string(), Some("ff".to_string()))
        );
    }

    #[test]
    fn object_tokens_bind_paths() {
        let k = key();
        let t = object_token(&k, "/cache/5");
        assert_eq!(t.len(), 16);
        assert!(verify_object_token(&k, "/cache/5", &t));
        assert!(!verify_object_token(&k, "/cache/6", &t));
        assert!(!verify_object_token(&k, "/cache/5", "0000000000000000"));
    }
}
