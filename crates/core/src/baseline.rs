//! Co-browsing baselines the paper positions RCB against (§1–§2).
//!
//! * **URL sharing** — "simple co-browsing can be performed by just
//!   sharing a URL ... it only enables very limited collaboration":
//!   session-protected pages break (the participant gets a *different*
//!   session) and dynamically updated pages break (same URL, different
//!   content). [`UrlSharingBaseline`] reproduces both failures and the
//!   sync delay of a full independent page load.
//! * **Proxy-based co-browsing** — a dedicated HTTP proxy forwards both
//!   users' traffic, returns identical pages, and injects a tracking
//!   applet (CoWeb/WebSplitter style). It fixes the session problem but
//!   adds a third-party hop to *every* request, and client-side DOM
//!   mutations that never touch the proxy stay invisible.
//!   [`ProxyBaseline`] models both properties.

use rcb_browser::{Browser, BrowserKind};
use rcb_http::Request;
use rcb_origin::OriginRegistry;
use rcb_sim::link::{Direction, Pipe};
use rcb_sim::profiles::NetProfile;
use rcb_url::Url;
use rcb_util::{Result, SimDuration, SimTime};

/// Outcome of one baseline synchronization check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineSync {
    /// Did the participant end up seeing the same content as the host?
    pub content_matches: bool,
    /// Time until the participant's view settled.
    pub sync_delay: SimDuration,
}

/// The URL-sharing baseline: the host sends the bare URL out of band and
/// the participant loads it independently.
pub struct UrlSharingBaseline {
    /// The host browser.
    pub host: Browser,
    /// The participant browser.
    pub participant: Browser,
    host_pipe: Pipe,
    participant_pipe: Pipe,
    profile: NetProfile,
    now: SimTime,
}

impl UrlSharingBaseline {
    /// Creates the baseline pair over the given environment.
    pub fn new(profile: NetProfile) -> Self {
        UrlSharingBaseline {
            host: Browser::new(BrowserKind::Firefox),
            participant: Browser::new(BrowserKind::Firefox),
            host_pipe: Pipe::new(profile.host_origin),
            participant_pipe: Pipe::new(profile.participant_origin),
            profile,
            now: SimTime::ZERO,
        }
    }

    /// Host loads the page, shares the URL, participant loads it too.
    /// Compares the resulting body content.
    pub fn share(&mut self, origins: &mut OriginRegistry, url: &str) -> Result<BaselineSync> {
        let url = Url::parse(url)?;
        let host_stats =
            self.host
                .navigate(&url, origins, &mut self.host_pipe, &self.profile, self.now)?;
        self.now = host_stats.finished_at;
        // Out-of-band URL delivery (IM/phone): a couple of seconds.
        let shared_at = self.now + SimDuration::from_secs(2);
        let part_stats = self.participant.navigate(
            &url,
            origins,
            &mut self.participant_pipe,
            &self.profile,
            shared_at,
        )?;
        self.now = part_stats.finished_at;
        let sync_delay = part_stats.finished_at.since(shared_at);
        Ok(BaselineSync {
            content_matches: self.views_match(),
            sync_delay,
        })
    }

    /// Host-side dynamic DOM mutation (Ajax/DHTML): with URL sharing there
    /// is *no mechanism at all* to propagate it — returns the resulting
    /// divergence.
    pub fn host_mutates(
        &mut self,
        f: impl FnOnce(&mut rcb_html::Document),
    ) -> Result<BaselineSync> {
        self.host.mutate_dom(f)?;
        Ok(BaselineSync {
            content_matches: self.views_match(),
            sync_delay: SimDuration::ZERO,
        })
    }

    /// Whether the two rendered bodies currently match.
    pub fn views_match(&self) -> bool {
        let (Some(hd), Some(pd)) = (self.host.doc.as_ref(), self.participant.doc.as_ref()) else {
            return false;
        };
        match (hd.body(), pd.body()) {
            (Some(hb), Some(pb)) => rcb_html::inner_html(hd, hb) == rcb_html::inner_html(pd, pb),
            _ => false,
        }
    }
}

/// The proxy-based baseline: both browsers reach origins through a shared
/// co-browsing proxy that serves both users identical pages (one shared
/// upstream session) and injects a tracking applet.
pub struct ProxyBaseline {
    /// The host-side browser (proxy client A).
    pub host: Browser,
    /// The participant browser (proxy client B).
    pub participant: Browser,
    /// A ↔ proxy path.
    host_proxy_pipe: Pipe,
    /// B ↔ proxy path.
    participant_proxy_pipe: Pipe,
    /// proxy ↔ origin path.
    proxy_origin_pipe: Pipe,
    profile: NetProfile,
    now: SimTime,
    /// The proxy's page cache: both clients get the same bytes.
    last_page: Option<(Url, String)>,
    /// Bytes relayed through the proxy (its operating cost).
    pub proxy_bytes: usize,
}

impl ProxyBaseline {
    /// Creates the proxy topology. The proxy sits in a datacenter: both
    /// access links reach it over the participant-origin style path.
    pub fn new(profile: NetProfile) -> Self {
        ProxyBaseline {
            host: Browser::new(BrowserKind::Firefox),
            participant: Browser::new(BrowserKind::Firefox),
            host_proxy_pipe: Pipe::new(profile.host_origin),
            participant_proxy_pipe: Pipe::new(profile.participant_origin),
            proxy_origin_pipe: Pipe::new(rcb_sim::LinkSpec::symmetric(
                100_000_000,
                SimDuration::from_millis(5),
            )),
            profile,
            now: SimTime::ZERO,
            last_page: None,
            proxy_bytes: 0,
        }
    }

    /// The host navigates through the proxy; the proxy fetches once from
    /// the origin (shared session), injects its applet, and replays the
    /// identical page to the participant. Returns the participant's sync
    /// outcome.
    pub fn navigate_both(
        &mut self,
        origins: &mut OriginRegistry,
        url: &str,
    ) -> Result<BaselineSync> {
        let url = Url::parse(url)?;
        // Host request travels to the proxy...
        let req = Request::get(url.request_target());
        let t1 = self
            .host_proxy_pipe
            .transfer(self.now, req.wire_len(), Direction::Up);
        // ...the proxy fetches from the origin with ITS OWN session...
        let (resp, t2) = self.proxy_fetch(origins, &url, t1)?;
        // ...injects the applet and returns the page to the host...
        let mut page = resp;
        page.push_str("<script id=\"coweb-applet\">/* proxy tracker */</script>");
        self.proxy_bytes += page.len();
        let t3 = self
            .host_proxy_pipe
            .transfer(t2, page.len(), Direction::Down);
        self.host.url = Some(url.clone());
        self.host.doc = Some(rcb_html::parse_document(&page));
        let _ = self.host.mutate_dom(|_| {});
        // ...and replays the identical bytes to the participant.
        self.proxy_bytes += page.len();
        let t4 = self
            .participant_proxy_pipe
            .transfer(t2, page.len(), Direction::Down);
        self.participant.url = Some(url.clone());
        self.participant.doc = Some(rcb_html::parse_document(&page));
        let _ = self.participant.mutate_dom(|_| {});
        self.last_page = Some((url, page));
        let finished = t3.max(t4);
        let sync_delay = finished.since(self.now);
        self.now = finished;
        Ok(BaselineSync {
            content_matches: self.views_match(),
            sync_delay,
        })
    }

    fn proxy_fetch(
        &mut self,
        origins: &mut OriginRegistry,
        url: &Url,
        start: SimTime,
    ) -> Result<(String, SimTime)> {
        let req = Request::get(url.request_target()).with_header("Host", url.host.clone());
        let t_req = self
            .proxy_origin_pipe
            .transfer(start, req.wire_len(), Direction::Up);
        let resp = origins.dispatch(&url.host, &req, t_req);
        let think = self.profile.html_think(resp.body.len());
        let charged = 200
            + self
                .profile
                .wire_bytes(&resp.content_type().unwrap_or_default(), resp.body.len());
        let t_done = self
            .proxy_origin_pipe
            .transfer(t_req + think, charged, Direction::Down);
        Ok((resp.body_str(), t_done))
    }

    /// Client-side DOM mutation on the host (Ajax that never crosses the
    /// proxy): the proxy cannot see it, so the participant diverges.
    pub fn host_mutates(
        &mut self,
        f: impl FnOnce(&mut rcb_html::Document),
    ) -> Result<BaselineSync> {
        self.host.mutate_dom(f)?;
        Ok(BaselineSync {
            content_matches: self.views_match(),
            sync_delay: SimDuration::ZERO,
        })
    }

    /// Whether the two rendered bodies currently match.
    pub fn views_match(&self) -> bool {
        let (Some(hd), Some(pd)) = (self.host.doc.as_ref(), self.participant.doc.as_ref()) else {
            return false;
        };
        match (hd.body(), pd.body()) {
            (Some(hb), Some(pb)) => rcb_html::inner_html(hd, hb) == rcb_html::inner_html(pd, pb),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_browser::engine::ThinkClass;
    use rcb_origin::apps::{MapsApp, ShopApp};

    fn origins() -> OriginRegistry {
        let mut o = OriginRegistry::with_alexa20();
        o.register(Box::new(ShopApp::new("shop.example.com")));
        o.register(Box::new(MapsApp::new("maps.example.com")));
        o
    }

    #[test]
    fn url_sharing_works_for_static_pages() {
        let mut o = origins();
        let mut b = UrlSharingBaseline::new(NetProfile::lan());
        let sync = b.share(&mut o, "http://google.com/").unwrap();
        assert!(sync.content_matches, "static page shares fine");
        assert!(sync.sync_delay > SimDuration::ZERO);
    }

    #[test]
    fn url_sharing_breaks_on_session_pages() {
        // Each browser gets its own shop session: after the host adds an
        // item, host and participant cart pages differ.
        let mut o = origins();
        let mut b = UrlSharingBaseline::new(NetProfile::lan());
        b.share(&mut o, "http://shop.example.com/").unwrap();
        // Host adds to cart (server-side session state).
        let url = Url::parse("http://shop.example.com/cart/add?id=1").unwrap();
        let (_, t) = b.host.http_request(
            &url,
            Request::get(url.request_target()),
            &mut o,
            &mut b.host_pipe,
            &b.profile,
            ThinkClass::HtmlDocument,
            b.now,
        );
        b.now = t;
        let sync = b.share(&mut o, "http://shop.example.com/cart").unwrap();
        assert!(
            !sync.content_matches,
            "session-protected cart page must diverge under URL sharing"
        );
    }

    #[test]
    fn url_sharing_misses_dynamic_updates() {
        let mut o = origins();
        let mut b = UrlSharingBaseline::new(NetProfile::lan());
        let s = b.share(&mut o, "http://maps.example.com/maps").unwrap();
        assert!(s.content_matches, "initial map view matches");
        // Host pans the map (client-side tile swap, URL unchanged).
        let after = b
            .host_mutates(|doc| {
                let root = doc.root();
                if let Some(img) = rcb_html::query::elements_by_tag(doc, root, "img")
                    .first()
                    .copied()
                {
                    doc.set_attr(img, "src", "/tiles/4/999/999.png");
                }
            })
            .unwrap();
        assert!(
            !after.content_matches,
            "dynamic map update is invisible to URL sharing"
        );
    }

    #[test]
    fn proxy_fixes_sessions_but_misses_client_side_dynamics() {
        let mut o = origins();
        let mut p = ProxyBaseline::new(NetProfile::lan());
        let s = p
            .navigate_both(&mut o, "http://shop.example.com/cart")
            .unwrap();
        assert!(
            s.content_matches,
            "proxy replays one shared session to both users"
        );
        assert!(p.proxy_bytes > 0);
        // But a host-side DOM mutation never crosses the proxy.
        let after = p
            .host_mutates(|doc| {
                let body = doc.body().unwrap();
                let d = doc.create_element("div");
                doc.append_child(body, d).unwrap();
            })
            .unwrap();
        assert!(!after.content_matches);
    }

    #[test]
    fn proxy_adds_latency_over_rcb_path() {
        // Structural claim: RCB's direct connection beats the proxy's
        // extra hop for content synchronization on a LAN.
        let mut o = origins();
        let mut p = ProxyBaseline::new(NetProfile::lan());
        let proxy_sync = p.navigate_both(&mut o, "http://google.com/").unwrap();
        let (_, rcb_sync) = crate::session::measure_site(
            NetProfile::lan(),
            crate::agent::CacheMode::Cache,
            "google.com",
            3,
        )
        .unwrap();
        assert!(
            rcb_sync.m2 < proxy_sync.sync_delay,
            "RCB m2 {} !< proxy {}",
            rcb_sync.m2,
            proxy_sync.sync_delay
        );
    }
}
