//! Response content generation (paper §4.1.2, Fig. 3).
//!
//! When the host document changes, the agent produces the XML payload a
//! participant browser renders from. The five steps, verbatim from the
//! paper:
//!
//! 1. clone the documentElement node of the current HTMLDocument (changes
//!    below never touch the live host page);
//! 2. change relative URL addresses to absolute URL addresses for elements
//!    in the cloned document (so non-cache-mode participants can reach
//!    origin servers);
//! 3. in cache mode, change absolute URL addresses of cached objects to
//!    RCB-Agent URL addresses (per-object granularity — the mode can
//!    differ per object);
//! 4. rewrite event attributes (`onclick`, `onsubmit`) so interactions on
//!    the participant browser call back into Ajax-Snippet;
//! 5. assemble the Fig.-4 XML: per-head-child payloads plus
//!    body/frameset/noframes payloads, all JS-escaped in CDATA.
//!
//! The wall-clock cost of this function is the paper's **M5** metric; the
//! caller (the agent) measures it with a stopwatch and reuses the result
//! for every participant ("the generated XML format response content is
//! reusable for multiple participant browsers").
//!
//! # Pipelined generation
//!
//! Generation is split into two phases so concurrent deployments can keep
//! their write-path critical section down to step 1 alone:
//!
//! * [`prepare_generation`] — performed **with** exclusive host access:
//!   clone the documentElement and capture frozen inputs (page URL,
//!   observer records, host-action batch) into a self-contained
//!   [`GenerationJob`];
//! * [`finish_generation`] — steps 2–5 (URL rewriting, event rewriting,
//!   escaping, XML assembly) on the clone, **without** the host: the only
//!   shared state it touches is the URL↔key mapping table, locked briefly
//!   for step 3 only.
//!
//! [`generate_content`] runs both phases back to back for sequential
//! callers.

use std::sync::Mutex;

use rcb_browser::{Browser, DownloadObserver};
use rcb_cache::{CacheView, MappingTable};
use rcb_crypto::SessionKey;
use rcb_html::dom::{Document, NodeData, NodeId};
use rcb_html::{inner_html, query};
use rcb_url::Url;
use rcb_util::{RcbError, Result, SimDuration, Stopwatch};
use rcb_xml::{write_new_content, ElementPayload, NewContent, TopLevel};

use crate::agent::CacheMode;
use crate::auth::object_token;

/// One generated response content, reusable across participants.
#[derive(Debug, Clone)]
pub struct GeneratedContent {
    /// The serialized Fig.-4 XML document.
    pub xml: String,
    /// The document timestamp embedded in it.
    pub doc_time: u64,
    /// Supplementary-object URLs a participant must fetch after applying
    /// this content (agent-relative in cache mode, absolute otherwise).
    pub object_urls: Vec<String>,
    /// How many objects were rewritten to agent URLs (cache mode hits).
    pub cache_rewrites: usize,
    /// Wall-clock generation cost — the paper's M5.
    pub generation_cost: SimDuration,
}

/// The frozen inputs of one content generation, captured under exclusive
/// host access by [`prepare_generation`]. Self-contained: finishing the
/// job touches neither the host browser nor the agent, so it can run
/// after the host lock is released.
pub struct GenerationJob {
    /// Scratch document holding the cloned documentElement (step 1).
    doc: Document,
    /// The cloned `<html>` node inside `doc`.
    clone: NodeId,
    page_url: Url,
    doc_time: u64,
    mode: CacheMode,
    user_actions: String,
    /// Observer records frozen at capture time (small: one string pair
    /// per recorded download).
    observer: DownloadObserver,
    /// Wall-clock cost of the capture phase, carried into the final M5.
    prep_cost: SimDuration,
}

impl GenerationJob {
    /// The document timestamp this job will embed.
    pub fn doc_time(&self) -> u64 {
        self.doc_time
    }
}

/// Phase 1 (requires exclusive host access, paper step 1): clone the
/// documentElement and freeze every other generation input.
pub fn prepare_generation(
    host: &Browser,
    mode: CacheMode,
    doc_time: u64,
    user_actions: String,
) -> Result<GenerationJob> {
    let sw = Stopwatch::start();
    let live_doc = host
        .doc
        .as_ref()
        .ok_or_else(|| RcbError::InvalidInput("host has no document loaded".into()))?;
    let page_url = host
        .url
        .as_ref()
        .ok_or_else(|| RcbError::InvalidInput("host has no page URL".into()))?
        .clone();
    let html_el = live_doc
        .document_element()
        .ok_or_else(|| RcbError::InvalidInput("host document has no <html>".into()))?;

    // Step 1: clone the documentElement into a scratch document.
    let mut doc = Document::new();
    let clone = doc.import_subtree(live_doc, html_el);
    let root = doc.root();
    doc.append_child(root, clone).expect("fresh scratch tree");

    Ok(GenerationJob {
        doc,
        clone,
        page_url,
        doc_time,
        mode,
        user_actions,
        observer: host.observer.clone(),
        prep_cost: sw.elapsed(),
    })
}

/// Phase 2 (no host access, paper steps 2–5): rewrite the clone and
/// assemble the Fig.-4 XML. `cache` is a view of the host cache frozen
/// alongside the job (the caller captures exactly one, under the same
/// lock as [`prepare_generation`], and reuses it for object resolution
/// afterwards). The mapping table is the only shared state, locked just
/// for step 3's rewrites; everything else runs on frozen captures.
pub fn finish_generation(
    job: GenerationJob,
    cache: &CacheView,
    mapping: &Mutex<MappingTable>,
    key: &SessionKey,
    path_prefix: &str,
) -> Result<GeneratedContent> {
    finish_impl(job, cache, MappingAccess::Shared(mapping), key, path_prefix)
}

/// Generates response content from the host browser's current document
/// (both phases back to back — the sequential deployments' entry point).
///
/// `user_actions` carries host-side action data (e.g. mouse-pointer
/// positions) to mirror to participants inside the `userActions` element.
pub fn generate_content(
    host: &Browser,
    mode: CacheMode,
    mapping: &mut MappingTable,
    key: &SessionKey,
    path_prefix: &str,
    doc_time: u64,
    user_actions: &str,
) -> Result<GeneratedContent> {
    let job = prepare_generation(host, mode, doc_time, user_actions.to_string())?;
    let cache = host.cache.view();
    finish_impl(
        job,
        &cache,
        MappingAccess::Exclusive(mapping),
        key,
        path_prefix,
    )
}

/// How phase 2 reaches the mapping table: exclusively borrowed (the
/// sequential path) or behind the shared leaf mutex (the pipelined path).
enum MappingAccess<'a> {
    Exclusive(&'a mut MappingTable),
    Shared(&'a Mutex<MappingTable>),
}

fn finish_impl(
    job: GenerationJob,
    cache: &CacheView,
    mapping: MappingAccess<'_>,
    key: &SessionKey,
    path_prefix: &str,
) -> Result<GeneratedContent> {
    let sw = Stopwatch::start();
    let GenerationJob {
        mut doc,
        clone,
        page_url,
        doc_time,
        mode,
        user_actions,
        observer,
        prep_cost,
    } = job;

    // Step 2: relative → absolute URL conversion, using the download
    // observer's records where available (paper: nsIObserverService).
    rewrite_urls_absolute(&mut doc, clone, &observer, &page_url);

    // Step 3: cache mode — absolute → agent URLs for cached objects. Only
    // this step touches shared state; with `Shared` access the table lock
    // is held for the rewrite loop alone, never across escaping/assembly.
    let cache_rewrites = match mode {
        CacheMode::Cache => match mapping {
            MappingAccess::Exclusive(m) => {
                rewrite_cached_to_agent(&mut doc, clone, cache, m, key, path_prefix)
            }
            MappingAccess::Shared(mx) => {
                let mut m = mx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                rewrite_cached_to_agent(&mut doc, clone, cache, &mut m, key, path_prefix)
            }
        },
        CacheMode::NonCache => 0,
    };

    // Step 4: event-attribute rewriting.
    rewrite_event_attributes(&mut doc, clone);

    // Step 5: XML assembly.
    let (head_children, top) = extract_payloads(&doc, clone)?;
    let object_urls = query::collect_supplementary_urls(&doc, clone);
    let nc = NewContent {
        doc_time,
        head_children,
        top,
        user_actions,
    };
    let xml = write_new_content(&nc);
    Ok(GeneratedContent {
        xml,
        doc_time,
        object_urls,
        cache_rewrites,
        generation_cost: prep_cost + sw.elapsed(),
    })
}

/// Step 2: make every URL-bearing attribute absolute.
fn rewrite_urls_absolute(
    doc: &mut Document,
    scope: NodeId,
    observer: &DownloadObserver,
    page: &Url,
) {
    let refs = query::collect_url_refs(doc, scope);
    for (node, attr, raw) in refs {
        if Url::is_absolute(&raw) || raw.starts_with('#') {
            continue;
        }
        if let Some(abs) = observer.resolve(page, &raw) {
            doc.set_attr(node, attr, abs);
        }
    }
}

/// Step 3: rewrite supplementary objects that exist in the host cache to
/// agent-local `{prefix}/cache/{key}?k={token}` URLs (the prefix is `""`
/// outside a session router; the token covers the full prefixed path, so
/// object URLs are session-bound). Returns the rewrite count.
fn rewrite_cached_to_agent(
    doc: &mut Document,
    scope: NodeId,
    cache: &CacheView,
    mapping: &mut MappingTable,
    key: &SessionKey,
    path_prefix: &str,
) -> usize {
    let mut rewrites = 0;
    for node in query::all_elements(doc, scope) {
        if !query::is_supplementary_ref(doc, node) {
            continue;
        }
        let Some(tag) = doc.tag(node) else { continue };
        let Some(attr) = query::url_attribute(tag) else {
            continue;
        };
        let Some(abs) = doc.get_attr(node, attr).map(str::to_string) else {
            continue;
        };
        // Per-object mode flexibility (paper: "even allow different objects
        // on the same webpage to use different modes"): only rewrite what
        // the host cache can actually serve.
        if !cache.contains(&abs) {
            continue;
        }
        let cache_key = mapping.key_for(&abs);
        let path = format!("{path_prefix}{}", MappingTable::agent_path(cache_key));
        let token = object_token(key, &path);
        doc.set_attr(node, attr, format!("{path}?k={token}"));
        rewrites += 1;
    }
    rewrites
}

/// Step 4: event-attribute rewriting.
///
/// Forms gain a call to the snippet's submit hook prepended to `onsubmit`;
/// anchors and other clickables gain the click hook on `onclick`. Elements
/// without stable identifiers get a synthetic `rcb-id` so action messages
/// can name them (the paper relies on the DOM reference; a wire protocol
/// needs a name).
fn rewrite_event_attributes(doc: &mut Document, scope: NodeId) {
    let mut counter = 0u64;
    for node in query::all_elements(doc, scope) {
        let Some(tag) = doc.tag(node).map(str::to_string) else {
            continue;
        };
        match tag.as_str() {
            "form" => {
                let id = ensure_identifier(doc, node, &mut counter);
                let existing = doc.get_attr(node, "onsubmit").unwrap_or("").to_string();
                doc.set_attr(
                    node,
                    "onsubmit",
                    format!("return rcbSubmit('{id}');{existing}"),
                );
            }
            "a" | "button" => {
                let id = ensure_identifier(doc, node, &mut counter);
                let existing = doc.get_attr(node, "onclick").unwrap_or("").to_string();
                doc.set_attr(
                    node,
                    "onclick",
                    format!("return rcbClick('{id}');{existing}"),
                );
            }
            "input" => {
                let ty = doc
                    .get_attr(node, "type")
                    .unwrap_or("text")
                    .to_ascii_lowercase();
                if matches!(ty.as_str(), "submit" | "button" | "image") {
                    let id = ensure_identifier(doc, node, &mut counter);
                    let existing = doc.get_attr(node, "onclick").unwrap_or("").to_string();
                    doc.set_attr(
                        node,
                        "onclick",
                        format!("return rcbClick('{id}');{existing}"),
                    );
                } else {
                    let id = ensure_identifier(doc, node, &mut counter);
                    doc.set_attr(node, "onchange", format!("return rcbInput('{id}');"));
                }
            }
            _ => {}
        }
    }
}

fn ensure_identifier(doc: &mut Document, node: NodeId, counter: &mut u64) -> String {
    if let Some(id) = doc.get_attr(node, "id") {
        return id.to_string();
    }
    let id = format!("rcb-el-{counter}");
    *counter += 1;
    doc.set_attr(node, "id", id.clone());
    id
}

/// Step 5: extract per-element payloads in DOM order.
fn extract_payloads(doc: &Document, html_el: NodeId) -> Result<(Vec<ElementPayload>, TopLevel)> {
    let mut head_children = Vec::new();
    let mut body: Option<ElementPayload> = None;
    let mut frameset: Option<ElementPayload> = None;
    let mut noframes: Option<ElementPayload> = None;
    for &child in doc.children(html_el) {
        let Some(tag) = doc.tag(child) else { continue };
        match tag {
            "head" => {
                for &hc in doc.children(child) {
                    if let NodeData::Element { tag, attrs } = doc.data(hc) {
                        head_children.push(ElementPayload {
                            tag: tag.clone(),
                            attrs: attrs.clone(),
                            inner_html: inner_html(doc, hc),
                        });
                    }
                    // Stray text/comments in head are dropped, as the
                    // paper's per-child extraction implies.
                }
            }
            "body" => body = Some(payload_of(doc, child)),
            "frameset" => frameset = Some(payload_of(doc, child)),
            "noframes" => noframes = Some(payload_of(doc, child)),
            _ => {}
        }
    }
    let top = if let Some(fs) = frameset {
        TopLevel::Frames {
            frameset: fs,
            noframes,
        }
    } else if let Some(b) = body {
        TopLevel::Body(b)
    } else {
        return Err(RcbError::InvalidInput(
            "document has neither body nor frameset".into(),
        ));
    };
    Ok((head_children, top))
}

fn payload_of(doc: &Document, node: NodeId) -> ElementPayload {
    let (tag, attrs) = match doc.data(node) {
        NodeData::Element { tag, attrs } => (tag.clone(), attrs.clone()),
        _ => (String::new(), Vec::new()),
    };
    ElementPayload {
        tag,
        attrs,
        inner_html: inner_html(doc, node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_browser::BrowserKind;
    use rcb_origin::OriginRegistry;
    use rcb_sim::link::Pipe;
    use rcb_sim::profiles::NetProfile;
    use rcb_util::{DetRng, SimTime};

    fn key() -> SessionKey {
        SessionKey::generate_deterministic(&mut DetRng::new(1))
    }

    /// Loads a real synthetic site into a host browser.
    fn loaded_host(site: &str) -> Browser {
        let mut origins = OriginRegistry::with_alexa20();
        let profile = NetProfile::lan();
        let mut pipe = Pipe::new(profile.host_origin);
        let mut b = Browser::new(BrowserKind::Firefox);
        b.navigate(
            &Url::parse(&format!("http://{site}/")).unwrap(),
            &mut origins,
            &mut pipe,
            &profile,
            SimTime::ZERO,
        )
        .unwrap();
        b
    }

    #[test]
    fn generation_produces_parseable_figure4_xml() {
        let host = loaded_host("google.com");
        let mut mapping = MappingTable::new();
        let gc = generate_content(
            &host,
            CacheMode::NonCache,
            &mut mapping,
            &key(),
            "",
            1234,
            "",
        )
        .unwrap();
        let nc = rcb_xml::parse_new_content(&gc.xml).unwrap().unwrap();
        assert_eq!(nc.doc_time, 1234);
        assert!(!nc.head_children.is_empty());
        assert!(matches!(nc.top, TopLevel::Body(_)));
    }

    #[test]
    fn non_cache_mode_uses_absolute_origin_urls() {
        let host = loaded_host("apple.com");
        let mut mapping = MappingTable::new();
        let gc =
            generate_content(&host, CacheMode::NonCache, &mut mapping, &key(), "", 1, "").unwrap();
        assert!(gc.cache_rewrites == 0);
        assert!(!gc.object_urls.is_empty());
        for u in &gc.object_urls {
            assert!(
                u.starts_with("http://apple.com/"),
                "expected absolute origin URL, got {u}"
            );
        }
        assert!(mapping.is_empty());
    }

    #[test]
    fn cache_mode_rewrites_to_agent_urls() {
        let host = loaded_host("apple.com");
        let mut mapping = MappingTable::new();
        let gc =
            generate_content(&host, CacheMode::Cache, &mut mapping, &key(), "", 1, "").unwrap();
        assert!(gc.cache_rewrites > 0);
        assert_eq!(gc.cache_rewrites, mapping.len());
        for u in &gc.object_urls {
            assert!(u.starts_with("/cache/"), "expected agent URL, got {u}");
            assert!(u.contains("?k="), "expected object token in {u}");
        }
    }

    #[test]
    fn cache_mode_cost_exceeds_non_cache_cost() {
        // The Table-1 claim: "RCB-Agent needs more processing time in the
        // cache mode than in the non-cache mode" — extra lookups/rewrites.
        // Compare total work over several repetitions to squash noise.
        let host = loaded_host("amazon.com");
        let k = key();
        let mut nc_total = SimDuration::ZERO;
        let mut c_total = SimDuration::ZERO;
        for _ in 0..5 {
            let mut m1 = MappingTable::new();
            nc_total += generate_content(&host, CacheMode::NonCache, &mut m1, &k, "", 1, "")
                .unwrap()
                .generation_cost;
            let mut m2 = MappingTable::new();
            c_total += generate_content(&host, CacheMode::Cache, &mut m2, &k, "", 1, "")
                .unwrap()
                .generation_cost;
        }
        assert!(
            c_total > nc_total,
            "cache {} !> non-cache {}",
            c_total,
            nc_total
        );
    }

    #[test]
    fn event_attributes_rewritten_with_hooks() {
        let host = loaded_host("facebook.com");
        let mut mapping = MappingTable::new();
        let gc =
            generate_content(&host, CacheMode::NonCache, &mut mapping, &key(), "", 1, "").unwrap();
        let nc = rcb_xml::parse_new_content(&gc.xml).unwrap().unwrap();
        let TopLevel::Body(body) = &nc.top else {
            panic!("expected body page")
        };
        assert!(body.inner_html.contains("rcbSubmit('"));
        assert!(body.inner_html.contains("rcbClick('"));
        // Original handlers preserved after the hook.
        assert!(body.inner_html.contains(");return track("));
    }

    #[test]
    fn generation_does_not_mutate_live_host_dom() {
        let host = loaded_host("live.com");
        let before = rcb_html::serialize::serialize_document(host.doc.as_ref().unwrap());
        let mut mapping = MappingTable::new();
        generate_content(&host, CacheMode::Cache, &mut mapping, &key(), "", 1, "").unwrap();
        let after = rcb_html::serialize::serialize_document(host.doc.as_ref().unwrap());
        assert_eq!(before, after);
    }

    #[test]
    fn larger_documents_cost_more_to_generate() {
        let small = loaded_host("google.com"); // 6.8 KB
        let large = loaded_host("amazon.com"); // 228.5 KB
        let k = key();
        let mut total_small = SimDuration::ZERO;
        let mut total_large = SimDuration::ZERO;
        for _ in 0..5 {
            let mut m = MappingTable::new();
            total_small += generate_content(&small, CacheMode::NonCache, &mut m, &k, "", 1, "")
                .unwrap()
                .generation_cost;
            let mut m = MappingTable::new();
            total_large += generate_content(&large, CacheMode::NonCache, &mut m, &k, "", 1, "")
                .unwrap()
                .generation_cost;
        }
        assert!(total_large > total_small);
    }

    #[test]
    fn user_actions_carried_through() {
        let host = loaded_host("google.com");
        let mut mapping = MappingTable::new();
        let gc = generate_content(
            &host,
            CacheMode::NonCache,
            &mut mapping,
            &key(),
            "",
            9,
            "mouse|10|20",
        )
        .unwrap();
        let nc = rcb_xml::parse_new_content(&gc.xml).unwrap().unwrap();
        assert_eq!(nc.user_actions, "mouse|10|20");
    }

    #[test]
    fn errors_without_loaded_document() {
        let b = Browser::new(BrowserKind::Firefox);
        let mut mapping = MappingTable::new();
        assert!(generate_content(&b, CacheMode::Cache, &mut mapping, &key(), "", 1, "").is_err());
    }
}
