//! RCB: a simple and practical framework for Real-time Collaborative
//! Browsing — the core library.
//!
//! This crate implements the paper's contribution on top of the substrate
//! crates (`rcb-html`, `rcb-http`, `rcb-sim`, ...):
//!
//! * [`agent`] — **RCB-Agent**, the HTTP server living in the host
//!   browser: request classification and processing (paper Fig. 2),
//!   participant management, data merging, timestamp inspection;
//! * [`content`] — the agent's response-content generation pipeline
//!   (Fig. 3): documentElement cloning, relative→absolute URL rewriting,
//!   cache-mode agent-URL rewriting, event-attribute rewriting, and the
//!   Fig.-4 XML assembly;
//! * [`snippet`] — **Ajax-Snippet**, the participant-side poller: request
//!   construction with piggybacked actions and HMAC signing, and the
//!   four-step smooth content update of Fig. 5 with Firefox/IE capability
//!   paths;
//! * [`auth`] — request-URI HMAC authentication (§3.4);
//! * [`policy`] — navigation/interaction policies (§3.3);
//! * [`session`] — the virtual-time co-browsing world: host + agent +
//!   participants + pipes, collecting the paper's six metrics (M1–M6);
//! * [`metrics`] — metric definitions and report formatting;
//! * [`baseline`] — the URL-sharing and proxy-based co-browsing baselines
//!   the paper positions against (§1, §2);
//! * [`push`] — the rejected `multipart/x-mixed-replace` push alternative
//!   (§3.2.3), implemented so the poll-vs-push decision can be measured;
//! * [`recorder`] — an append-only session event log with text
//!   round-tripping and replay statistics (audit/replay for the paper's
//!   training and support scenarios);
//! * [`usability`] — the §5.2 usability study: the 20-task script
//!   (Table 2) executed by simulated role-players, and the Likert
//!   questionnaire model (Tables 3/4);
//! * [`snapshot`] — immutable [`ContentSnapshot`]s: the contention-free
//!   read path for concurrent deployments (polls and object requests are
//!   served from a published frozen view; only host-side merges write);
//! * [`tcp`] — the real-socket deployment path: RCB-Agent served over
//!   `std::net` TCP through a snapshot-based concurrent request pipeline,
//!   participants joining with a plain HTTP client;
//! * [`router`] — the multi-tenant session layer: a sharded
//!   `sid → session` map multiplexing thousands of isolated sessions
//!   (own snapshot/agent/park channel each) over one serving engine,
//!   with per-session fairness and two-tier stats;
//! * [`worldsim`] — the deterministic world sim: the same agent handler
//!   and snippet, pumped over the seeded in-process fabric
//!   (`rcb_sim::world`) under virtual time — scripted, replayable
//!   scenarios with partitions, long-polls, and thousands of
//!   participants, no sockets or sleeps anywhere.

pub mod agent;
pub mod auth;
pub mod baseline;
pub mod content;
pub mod metrics;
pub mod policy;
pub mod push;
pub mod recorder;
pub mod router;
pub mod session;
pub mod snapshot;
pub mod snippet;
pub mod tcp;
pub mod usability;
pub mod worldsim;

pub use agent::{AgentConfig, CacheMode, ParticipantShards, RcbAgent};
pub use metrics::PageMetrics;
pub use router::{RouterConfig, RouterHost, RouterStats, SessionHandle, SessionRouter};
pub use session::CoBrowsingWorld;
pub use snapshot::ContentSnapshot;
pub use snippet::AjaxSnippet;
