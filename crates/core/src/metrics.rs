//! The paper's six evaluation metrics (§5.1.1) and report formatting.
//!
//! * **M1** — host browser loads the HTML document from the Web server;
//! * **M2** — participant browser loads the same document content from the
//!   host browser;
//! * **M3** — participant downloads supplementary objects in *non-cache*
//!   mode (from origin servers);
//! * **M4** — participant downloads supplementary objects in *cache* mode
//!   (from the host browser);
//! * **M5** — host browser generates the response content (CPU);
//! * **M6** — participant browser updates its document (CPU).

use rcb_util::SimDuration;

/// Per-page-load metric record for one site.
#[derive(Debug, Clone, Default)]
pub struct PageMetrics {
    /// Site name (Table-1 host).
    pub site: String,
    /// HTML document size in bytes.
    pub page_bytes: u64,
    /// M1: host document load time.
    pub m1: SimDuration,
    /// M2: participant document synchronization time.
    pub m2: SimDuration,
    /// M3: participant object download time, non-cache mode.
    pub m3: SimDuration,
    /// M4: participant object download time, cache mode.
    pub m4: SimDuration,
    /// M5: content generation cost (CPU), for the configured mode.
    pub m5: SimDuration,
    /// M6: participant content update cost (CPU).
    pub m6: SimDuration,
}

impl PageMetrics {
    /// Formats a one-line summary (used by harness binaries).
    pub fn row(&self) -> String {
        format!(
            "{:<16} {:>8.1}KB  M1={:>8}  M2={:>8}  M3={:>8}  M4={:>8}  M5={:>9}  M6={:>9}",
            self.site,
            self.page_bytes as f64 / 1024.0,
            self.m1.to_string(),
            self.m2.to_string(),
            self.m3.to_string(),
            self.m4.to_string(),
            self.m5.to_string(),
            self.m6.to_string(),
        )
    }
}

/// Averages a slice of per-repetition records into one (the paper reports
/// the average of five repetitions).
pub fn average(records: &[PageMetrics]) -> PageMetrics {
    assert!(!records.is_empty(), "cannot average zero records");
    let n = records.len() as u64;
    let avg = |f: fn(&PageMetrics) -> SimDuration| {
        SimDuration::from_micros(records.iter().map(|r| f(r).as_micros()).sum::<u64>() / n)
    };
    PageMetrics {
        site: records[0].site.clone(),
        page_bytes: records[0].page_bytes,
        m1: avg(|r| r.m1),
        m2: avg(|r| r.m2),
        m3: avg(|r| r.m3),
        m4: avg(|r| r.m4),
        m5: avg(|r| r.m5),
        m6: avg(|r| r.m6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: u64) -> PageMetrics {
        PageMetrics {
            site: "x.com".into(),
            page_bytes: 1024,
            m1: SimDuration::from_millis(ms),
            m2: SimDuration::from_millis(ms * 2),
            m3: SimDuration::from_millis(ms * 3),
            m4: SimDuration::from_millis(ms * 4),
            m5: SimDuration::from_millis(ms * 5),
            m6: SimDuration::from_millis(ms * 6),
        }
    }

    #[test]
    fn average_is_componentwise() {
        let avg = average(&[rec(10), rec(20), rec(30)]);
        assert_eq!(avg.m1.as_millis(), 20);
        assert_eq!(avg.m2.as_millis(), 40);
        assert_eq!(avg.m6.as_millis(), 120);
        assert_eq!(avg.site, "x.com");
    }

    #[test]
    fn row_contains_all_metrics() {
        let row = rec(10).row();
        for label in ["M1=", "M2=", "M3=", "M4=", "M5=", "M6="] {
            assert!(row.contains(label));
        }
    }

    #[test]
    #[should_panic(expected = "cannot average zero records")]
    fn average_rejects_empty() {
        average(&[]);
    }
}
