//! Co-browsing policies (paper §3.3).
//!
//! "When a participant clicks a link on a co-browsed webpage and this
//! action information is sent back to the host browser, RCB-Agent can
//! either immediately perform the click action on the host browser, or ask
//! the co-browsing host to inspect and explicitly confirm this click
//! action. Similarly, if multiple participants are involved ... it is up
//! to the high-level policy enforced on RCB-Agent to decide whom are
//! allowed to perform certain interactions."

use std::collections::HashSet;

/// How participant-initiated navigation/click actions are applied on the
/// host browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NavigationPolicy {
    /// Apply immediately (the online-shopping scenario default).
    #[default]
    Immediate,
    /// Queue for explicit host confirmation (the online-training default).
    HostConfirm,
}

/// Which participants may interact at all.
#[derive(Debug, Clone, Default)]
pub enum InteractionPolicy {
    /// Everyone in the session may act.
    #[default]
    AllParticipants,
    /// Participants may only watch; the host drives.
    ViewOnly,
    /// Only an explicit allow-list of participant ids may act.
    Moderated(HashSet<u64>),
}

impl InteractionPolicy {
    /// Whether participant `id` may submit interactions.
    pub fn allows(&self, id: u64) -> bool {
        match self {
            InteractionPolicy::AllParticipants => true,
            InteractionPolicy::ViewOnly => false,
            InteractionPolicy::Moderated(allowed) => allowed.contains(&id),
        }
    }
}

/// Decision for a queued action under [`NavigationPolicy::HostConfirm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostDecision {
    /// The host approved the action; apply it.
    Approve,
    /// The host rejected the action; drop it.
    Reject,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_permissive() {
        assert_eq!(NavigationPolicy::default(), NavigationPolicy::Immediate);
        assert!(InteractionPolicy::default().allows(42));
    }

    #[test]
    fn view_only_blocks_everyone() {
        let p = InteractionPolicy::ViewOnly;
        assert!(!p.allows(1));
        assert!(!p.allows(2));
    }

    #[test]
    fn moderated_allows_listed_only() {
        let p = InteractionPolicy::Moderated([3u64, 5].into_iter().collect());
        assert!(p.allows(3));
        assert!(p.allows(5));
        assert!(!p.allows(4));
    }
}
