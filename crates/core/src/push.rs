//! The `multipart/x-mixed-replace` push alternative (paper §3.2.3).
//!
//! "In addition to poll-based synchronization, an HTTP server can use
//! 'multipart/x-mixed-replace' type of responses to emulate the content
//! pushing effect. However, compared with poll-based synchronization,
//! this alternative approach increases the complexity of co-browsing
//! synchronization and decreases its reliability."
//!
//! The paper rejects this design; we implement it anyway so the decision
//! can be evaluated quantitatively (ablation `ablation_push`). The model:
//! the participant opens one long-lived request; the agent holds the
//! connection and writes a new MIME part whenever the host document
//! changes. Latency wins (no poll interval), but:
//!
//! * the stream is stateful — an intermediary or browser dropping the
//!   connection silently loses the session until the participant notices
//!   (modeled as a per-part drop probability and a detection timeout);
//! * piggybacking is gone — participant actions now need a *second*
//!   channel (each action is its own POST, paying a full request each);
//! * per-participant state lives on the agent for the whole session.

use rcb_util::{DetRng, SimDuration, SimTime};

/// One pushed MIME part: a content update on the long-lived response.
#[derive(Debug, Clone)]
pub struct PushedPart {
    /// Content timestamp carried by this part.
    pub doc_time: u64,
    /// Serialized newContent bytes (same Fig.-4 payload as polling).
    pub bytes: usize,
    /// When the agent wrote it.
    pub sent_at: SimTime,
}

/// Outcome of delivering one part over the push stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushDelivery {
    /// Delivered after the given delay.
    Delivered {
        /// When the participant finished receiving the part.
        at: SimTime,
    },
    /// The stream broke mid-part; the participant only notices after the
    /// silence timeout and must reconnect (losing the part).
    StreamBroken {
        /// When the participant detects the break and re-establishes.
        recovered_at: SimTime,
    },
}

/// Reliability/latency model of one push stream.
#[derive(Debug)]
pub struct PushStream {
    /// Probability that writing a part hits a broken/buffered stream
    /// (intermediaries and 2009 browsers handled x-mixed-replace
    /// inconsistently — the paper's "decreases its reliability").
    pub drop_probability: f64,
    /// How long a silent broken stream takes to detect + reconnect.
    pub recovery_time: SimDuration,
    /// Parts written.
    pub parts_sent: u64,
    /// Parts lost to stream breaks.
    pub parts_lost: u64,
    rng: DetRng,
}

impl PushStream {
    /// A stream with the default 2009-era reliability model.
    pub fn new(seed: u64) -> PushStream {
        PushStream {
            drop_probability: 0.03,
            recovery_time: SimDuration::from_secs(5),
            parts_sent: 0,
            parts_lost: 0,
            rng: DetRng::new(seed),
        }
    }

    /// Attempts to push one part whose transfer takes `transfer_time`.
    pub fn deliver(&mut self, sent_at: SimTime, transfer_time: SimDuration) -> PushDelivery {
        self.parts_sent += 1;
        if self.rng.chance(self.drop_probability) {
            self.parts_lost += 1;
            PushDelivery::StreamBroken {
                recovered_at: sent_at + self.recovery_time,
            }
        } else {
            PushDelivery::Delivered {
                at: sent_at + transfer_time,
            }
        }
    }

    /// Fraction of parts lost so far.
    pub fn loss_rate(&self) -> f64 {
        if self.parts_sent == 0 {
            return 0.0;
        }
        self.parts_lost as f64 / self.parts_sent as f64
    }
}

/// Compares expected synchronization delay of polling vs push for a
/// content change landing uniformly at random inside a poll interval.
///
/// Returns `(poll_expected, push_expected)` where each includes transfer
/// time; push adds the expected recovery penalty at its loss rate.
pub fn expected_sync_delay(
    poll_interval: SimDuration,
    transfer_time: SimDuration,
    drop_probability: f64,
    recovery_time: SimDuration,
) -> (SimDuration, SimDuration) {
    // Poll: change waits on average half an interval for the next poll.
    // Half of an odd microsecond count rounds up, not down — truncating
    // here and again on the push side below biased both estimates low.
    let poll = SimDuration::from_micros(poll_interval.as_micros().div_ceil(2)) + transfer_time;
    // Push: immediate, but a lost part costs the recovery timeout plus
    // the retransfer.
    let p = drop_probability.clamp(0.0, 1.0);
    let push_us = transfer_time.as_micros() as f64
        + p * (recovery_time.as_micros() as f64 + transfer_time.as_micros() as f64);
    let push = SimDuration::from_micros(push_us.round() as u64);
    (poll, push)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_stream_delivers_fast() {
        let mut s = PushStream::new(1);
        s.drop_probability = 0.0;
        let out = s.deliver(SimTime::from_secs(10), SimDuration::from_millis(20));
        assert_eq!(
            out,
            PushDelivery::Delivered {
                at: SimTime::from_millis(10_020)
            }
        );
        assert_eq!(s.loss_rate(), 0.0);
    }

    #[test]
    fn unreliable_stream_loses_parts() {
        let mut s = PushStream::new(2);
        s.drop_probability = 0.5;
        let mut lost = 0;
        for i in 0..1000 {
            if matches!(
                s.deliver(SimTime::from_secs(i), SimDuration::from_millis(5)),
                PushDelivery::StreamBroken { .. }
            ) {
                lost += 1;
            }
        }
        assert!(lost > 400 && lost < 600, "lost {lost}");
        assert!((s.loss_rate() - 0.5).abs() < 0.1);
    }

    #[test]
    fn broken_stream_recovers_after_timeout() {
        let mut s = PushStream::new(3);
        s.drop_probability = 1.0;
        let out = s.deliver(SimTime::from_secs(1), SimDuration::from_millis(5));
        assert_eq!(
            out,
            PushDelivery::StreamBroken {
                recovered_at: SimTime::from_secs(6)
            }
        );
    }

    #[test]
    fn push_wins_on_latency_until_reliability_erodes_it() {
        let interval = SimDuration::from_secs(1);
        let transfer = SimDuration::from_millis(30);
        // Perfect stream: push beats polling by ~half an interval.
        let (poll, push) = expected_sync_delay(interval, transfer, 0.0, SimDuration::from_secs(5));
        assert!(push < poll);
        // At high loss with slow recovery the advantage inverts — the
        // paper's reliability argument.
        let (poll2, push2) =
            expected_sync_delay(interval, transfer, 0.12, SimDuration::from_secs(5));
        assert!(push2 > poll2, "push {push2} !> poll {poll2}");
    }

    #[test]
    fn expected_delay_rounds_half_up_at_the_boundary() {
        // An odd poll interval: half of 1_000_001 µs is 500_000.5, which
        // must round up to 500_001, not truncate to 500_000.
        let (poll, _) = expected_sync_delay(
            SimDuration::from_micros(1_000_001),
            SimDuration::ZERO,
            0.0,
            SimDuration::ZERO,
        );
        assert_eq!(poll, SimDuration::from_micros(500_001));
        // Push side: 2 µs transfer + 0.5 · (0 + 2 µs) = 3.0 µs — the old
        // double truncation through `as u64` lost the fractional part for
        // any non-terminating product (e.g. 2.5 → 2); `round()` keeps the
        // estimate centered.
        let (_, push) = expected_sync_delay(
            SimDuration::from_secs(1),
            SimDuration::from_micros(2),
            0.25,
            SimDuration::ZERO,
        );
        // 2 + 0.25 · (0 + 2) = 2.5 → rounds half-up to 3.
        assert_eq!(push, SimDuration::from_micros(3));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut s = PushStream::new(seed);
            (0..100)
                .filter(|i| {
                    matches!(
                        s.deliver(SimTime::from_secs(*i), SimDuration::ZERO),
                        PushDelivery::StreamBroken { .. }
                    )
                })
                .count()
        };
        assert_eq!(run(7), run(7));
    }
}
