//! Session recording.
//!
//! An RCB session is a stream of well-defined events (navigations,
//! content syncs, participant actions, joins/leaves). Recording them
//! gives three things the paper's applications want: an audit trail for
//! the customer-support scenario, an instructor-side replay for the
//! distance-learning scenario, and a debugging artifact for the
//! framework itself. The recorder is deliberately dumb — an append-only
//! event log with a text serialization — so it can be persisted or
//! shipped anywhere.

use rcb_util::SimTime;

/// One recorded session event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A participant joined.
    Join {
        /// Participant id.
        pid: u64,
    },
    /// A participant left.
    Leave {
        /// Participant id.
        pid: u64,
    },
    /// The host navigated to a URL.
    HostNavigate {
        /// Absolute URL.
        url: String,
    },
    /// The host DOM changed (navigation or dynamic mutation) producing a
    /// new content timestamp.
    ContentChange {
        /// New document timestamp.
        doc_time: u64,
    },
    /// A participant received and applied content.
    Sync {
        /// Participant id.
        pid: u64,
        /// Document timestamp applied.
        doc_time: u64,
    },
    /// A participant action was merged on the host.
    Action {
        /// Participant id.
        pid: u64,
        /// Encoded action line (the wire codec of `rcb-browser`).
        encoded: String,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// When it happened (virtual time).
    pub at: SimTime,
    /// What happened.
    pub event: SessionEvent,
}

/// Append-only session log.
#[derive(Debug, Default)]
pub struct SessionRecorder {
    events: Vec<TimedEvent>,
}

impl SessionRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        SessionRecorder::default()
    }

    /// Appends an event.
    pub fn record(&mut self, at: SimTime, event: SessionEvent) {
        self.events.push(TimedEvent { at, event });
    }

    /// All events, in record order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events involving one participant.
    pub fn for_participant(&self, pid: u64) -> Vec<&TimedEvent> {
        self.events
            .iter()
            .filter(|e| match &e.event {
                SessionEvent::Join { pid: p }
                | SessionEvent::Leave { pid: p }
                | SessionEvent::Sync { pid: p, .. }
                | SessionEvent::Action { pid: p, .. } => *p == pid,
                _ => false,
            })
            .collect()
    }

    /// Serializes the log, one event per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for TimedEvent { at, event } in &self.events {
            let line = match event {
                SessionEvent::Join { pid } => format!("join pid={pid}"),
                SessionEvent::Leave { pid } => format!("leave pid={pid}"),
                SessionEvent::HostNavigate { url } => format!("navigate url={url}"),
                SessionEvent::ContentChange { doc_time } => {
                    format!("content doc_time={doc_time}")
                }
                SessionEvent::Sync { pid, doc_time } => {
                    format!("sync pid={pid} doc_time={doc_time}")
                }
                SessionEvent::Action { pid, encoded } => {
                    format!(
                        "action pid={pid} data={}",
                        rcb_url::percent::encode(encoded)
                    )
                }
            };
            out.push_str(&format!("{:>12} {}\n", at.as_micros(), line));
        }
        out
    }

    /// Parses a [`SessionRecorder::to_text`] log back.
    pub fn from_text(text: &str) -> rcb_util::Result<SessionRecorder> {
        let mut rec = SessionRecorder::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = || rcb_util::RcbError::parse("session-log", format!("bad line {line:?}"));
            let (ts, rest) = line.split_once(' ').ok_or_else(err)?;
            let at = SimTime::from_micros(ts.trim().parse().map_err(|_| err())?);
            let mut parts = rest.split_whitespace();
            let kind = parts.next().ok_or_else(err)?;
            let kv = |p: Option<&str>, key: &str| -> rcb_util::Result<String> {
                p.and_then(|s| s.strip_prefix(&format!("{key}=")))
                    .map(str::to_string)
                    .ok_or_else(err)
            };
            let event = match kind {
                "join" => SessionEvent::Join {
                    pid: kv(parts.next(), "pid")?.parse().map_err(|_| err())?,
                },
                "leave" => SessionEvent::Leave {
                    pid: kv(parts.next(), "pid")?.parse().map_err(|_| err())?,
                },
                "navigate" => SessionEvent::HostNavigate {
                    url: kv(parts.next(), "url")?,
                },
                "content" => SessionEvent::ContentChange {
                    doc_time: kv(parts.next(), "doc_time")?.parse().map_err(|_| err())?,
                },
                "sync" => SessionEvent::Sync {
                    pid: kv(parts.next(), "pid")?.parse().map_err(|_| err())?,
                    doc_time: kv(parts.next(), "doc_time")?.parse().map_err(|_| err())?,
                },
                "action" => SessionEvent::Action {
                    pid: kv(parts.next(), "pid")?.parse().map_err(|_| err())?,
                    encoded: rcb_url::percent::decode(&kv(parts.next(), "data")?),
                },
                _ => return Err(err()),
            };
            rec.record(at, event);
        }
        Ok(rec)
    }

    /// Replay summary: per-participant sync counts and lag statistics
    /// (time from each content change to each participant's sync of it).
    pub fn replay_summary(&self) -> ReplaySummary {
        let mut content_at: std::collections::HashMap<u64, SimTime> =
            std::collections::HashMap::new();
        let mut syncs = 0u64;
        let mut actions = 0u64;
        let mut lag_total_us: u128 = 0;
        let mut lag_samples = 0u64;
        for TimedEvent { at, event } in &self.events {
            match event {
                SessionEvent::ContentChange { doc_time } => {
                    content_at.entry(*doc_time).or_insert(*at);
                }
                SessionEvent::Sync { doc_time, .. } => {
                    syncs += 1;
                    if let Some(&t0) = content_at.get(doc_time) {
                        lag_total_us += at.since(t0).as_micros() as u128;
                        lag_samples += 1;
                    }
                }
                SessionEvent::Action { .. } => actions += 1,
                _ => {}
            }
        }
        ReplaySummary {
            events: self.events.len(),
            syncs,
            actions,
            mean_sync_lag: if lag_samples == 0 {
                rcb_util::SimDuration::ZERO
            } else {
                rcb_util::SimDuration::from_micros((lag_total_us / lag_samples as u128) as u64)
            },
        }
    }
}

/// Aggregate statistics of a recorded session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Total events.
    pub events: usize,
    /// Content syncs delivered.
    pub syncs: u64,
    /// Participant actions merged.
    pub actions: u64,
    /// Mean lag from content change to participant sync.
    pub mean_sync_lag: rcb_util::SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample() -> SessionRecorder {
        let mut r = SessionRecorder::new();
        r.record(t(0), SessionEvent::Join { pid: 1 });
        r.record(
            t(100),
            SessionEvent::HostNavigate {
                url: "http://cnn.com/".into(),
            },
        );
        r.record(t(150), SessionEvent::ContentChange { doc_time: 42 });
        r.record(
            t(400),
            SessionEvent::Sync {
                pid: 1,
                doc_time: 42,
            },
        );
        r.record(
            t(900),
            SessionEvent::Action {
                pid: 1,
                encoded: "input|q|q|hello world & more".into(),
            },
        );
        r.record(t(2_000), SessionEvent::Leave { pid: 1 });
        r
    }

    #[test]
    fn text_roundtrip() {
        let r = sample();
        let text = r.to_text();
        let parsed = SessionRecorder::from_text(&text).unwrap();
        assert_eq!(parsed.events(), r.events());
    }

    #[test]
    fn participant_filter() {
        let mut r = sample();
        r.record(t(3_000), SessionEvent::Join { pid: 2 });
        assert_eq!(r.for_participant(1).len(), 4);
        assert_eq!(r.for_participant(2).len(), 1);
        assert_eq!(r.for_participant(3).len(), 0);
    }

    #[test]
    fn replay_summary_counts_and_lag() {
        let s = sample().replay_summary();
        assert_eq!(s.events, 6);
        assert_eq!(s.syncs, 1);
        assert_eq!(s.actions, 1);
        assert_eq!(s.mean_sync_lag.as_millis(), 250);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(SessionRecorder::from_text("xyz").is_err());
        assert!(SessionRecorder::from_text("100 teleport pid=1").is_err());
        assert!(SessionRecorder::from_text("100 sync pid=x doc_time=1").is_err());
        // Blank lines are fine.
        assert!(SessionRecorder::from_text("\n\n").unwrap().is_empty());
    }

    #[test]
    fn action_payloads_survive_encoding() {
        let mut r = SessionRecorder::new();
        r.record(
            t(1),
            SessionEvent::Action {
                pid: 9,
                encoded: "submit|f|a=1&b=%7C weird \n chars".into(),
            },
        );
        let parsed = SessionRecorder::from_text(&r.to_text()).unwrap();
        assert_eq!(parsed.events(), r.events());
    }
}
