//! Multi-tenant session routing: thousands of independent co-browsing
//! sessions served by one process.
//!
//! The paper's deployment unit is one session — one host browser, one
//! agent, one set of participants. Scaling past that means many
//! *sessions*, not one big one: a [`SessionRouter`] owns a sharded
//! `sid → session` map and multiplexes every session over one listening
//! socket and one serving engine (any of the three backends). Requests
//! carry their session id as a path prefix (`/s/{sid}/...`); the prefix
//! rides inside the signed request-URI, so it is covered by the poll
//! HMAC and the object token like every other parameter — a request
//! cannot be replayed into another session without failing
//! authentication. Legacy un-prefixed paths route to the implicit
//! *default* session, so the single-session deployment ([`TcpHost`]) is
//! now a thin wrapper over a one-session router.
//!
//! # Isolation
//!
//! Each session gets its own [`SharedHost`] — snapshot, agent,
//! participant shards — and its own [`ParkHub`] *channel*: snapshot
//! publication wakes only the session's own parked long-polls, and
//! evicting a session closes its channel, completing stragglers with the
//! timeout reply (no fd or park-slot leaks). The serving engine, its
//! dispatch pool, and the hub instance are shared across all sessions.
//!
//! # Fairness
//!
//! A regeneration storm in one session must not starve the rest. The
//! router bounds in-flight dispatches *per session*
//! ([`RouterConfig::session_inflight`]): at the bound, a bounded number
//! of dispatch threads queue behind that session
//! ([`RouterConfig::session_waiters`]) and anything beyond is shed with
//! the prefab `503 + Retry-After` — the backpressure lands on the noisy
//! session, not on the shared pool.
//!
//! # Lock ordering
//!
//! The router's shard lock is a **leaf** on the read path: look up,
//! clone the entry `Arc`, release — it is never held across a handler
//! call or while acquiring any per-session lock. Lazy session creation
//! holds the shard write lock across the factory + host build (one-time
//! cost per session, and only that shard blocks). The fairness gate is
//! per-session state acquired strictly after the shard lock is released.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use rcb_browser::Browser;
use rcb_crypto::SessionKey;
use rcb_http::server::{
    Handler, HandlerOutcome, HttpServer, ParkHub, ServerBackend, ServerConfig, ShedResponder,
};
use rcb_http::{Request, Response, Status};
use rcb_util::{Clock, RcbError, Result};

use crate::agent::AgentConfig;
use crate::tcp::{SharedHost, TcpHostStats};

/// The canonical path prefix of a routed session: `/s/{sid}`.
pub fn session_prefix(sid: &str) -> String {
    format!("/s/{sid}")
}

/// How the router provisions a session on first use: given the session
/// id, return the host browser (page already loaded) and the session key
/// participants will authenticate with — or `None` when the id is not a
/// provisioned session (the router answers with the prefab 404).
pub type SessionFactory = Box<dyn Fn(&str) -> Option<(Browser, SessionKey)> + Send + Sync>;

/// Router tunables. `Default` is the plain constants;
/// [`RouterConfig::from_env`] applies the documented `RCB_*` overrides.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Ceiling on live sessions in this process; at the cap, requests
    /// for new session ids are shed with the prefab `503 + Retry-After`.
    /// Env: `RCB_MAX_SESSIONS`.
    pub max_sessions: usize,
    /// A session with no routed request for this long is removed by
    /// [`SessionRouter::evict_idle`] (the default session is exempt).
    /// Env: `RCB_SESSION_IDLE_EVICT_MS`.
    pub idle_evict: Duration,
    /// Per-session in-flight dispatch bound (the fairness lever). The
    /// default — effectively unbounded — keeps single-session behavior
    /// identical; many-session deployments set a small bound so one
    /// storming session queues behind itself instead of occupying the
    /// shared dispatch pool.
    pub session_inflight: usize,
    /// How many dispatches may queue behind a session at its in-flight
    /// bound before further ones are shed with the prefab `503`.
    pub session_waiters: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_sessions: 4096,
            idle_evict: Duration::from_secs(15 * 60),
            session_inflight: usize::MAX,
            session_waiters: 32,
        }
    }
}

impl RouterConfig {
    /// The defaults with `RCB_*` environment overrides applied:
    /// `RCB_MAX_SESSIONS` and `RCB_SESSION_IDLE_EVICT_MS`.
    pub fn from_env() -> RouterConfig {
        let d = RouterConfig::default();
        let env_u64 = |name: &str| -> Option<u64> { std::env::var(name).ok()?.trim().parse().ok() };
        RouterConfig {
            max_sessions: env_u64("RCB_MAX_SESSIONS").map_or(d.max_sessions, |v| v as usize),
            idle_evict: env_u64("RCB_SESSION_IDLE_EVICT_MS")
                .map_or(d.idle_evict, Duration::from_millis),
            ..d
        }
    }
}

/// Per-session fairness gate: `(active, waiting)` under one mutex. At
/// the in-flight bound a bounded number of dispatch threads block on the
/// condvar (queueing behind *this* session); beyond that the dispatch is
/// shed. Slots are held only across the handler call — a parked
/// long-poll holds no slot, exactly as it holds no dispatch thread.
#[derive(Debug, Default)]
struct FairnessGate {
    state: Mutex<(usize, usize)>,
    cond: Condvar,
}

enum Admission {
    Admitted,
    /// Dispatches queued (0 or more) then admitted — the count feeds the
    /// `fairness_queued` stat.
    AdmittedAfterWait,
    Shed,
}

impl FairnessGate {
    fn acquire(&self, max_inflight: usize, max_waiters: usize) -> Admission {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.0 < max_inflight {
            st.0 += 1;
            return Admission::Admitted;
        }
        if st.1 >= max_waiters {
            return Admission::Shed;
        }
        st.1 += 1;
        while st.0 >= max_inflight {
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.1 -= 1;
        st.0 += 1;
        Admission::AdmittedAfterWait
    }

    fn release(&self) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.0 = st.0.saturating_sub(1);
        drop(st);
        self.cond.notify_one();
    }
}

/// One live session: its host state, hub channel, fairness gate, and
/// idle bookkeeping.
struct SessionEntry {
    sid: String,
    channel: u64,
    host: Arc<SharedHost>,
    handler: Handler,
    key: SessionKey,
    /// Engine-clock micros of the last routed request (idle eviction).
    last_activity: AtomicU64,
    gate: FairnessGate,
    /// Per-session fairness sheds (also counted process-wide).
    fairness_shed: AtomicU64,
}

/// A handle to one live session — the per-session slice of the old
/// [`TcpHost`] surface.
#[derive(Clone)]
pub struct SessionHandle {
    entry: Arc<SessionEntry>,
}

impl SessionHandle {
    /// The session id (`""` for the default session).
    pub fn sid(&self) -> &str {
        &self.entry.sid
    }

    /// The path prefix participants reach this session under (`""` for
    /// the default session).
    pub fn prefix(&self) -> String {
        if self.entry.sid.is_empty() {
            String::new()
        } else {
            session_prefix(&self.entry.sid)
        }
    }

    /// The session key to share out of band.
    pub fn key(&self) -> &SessionKey {
        &self.entry.key
    }

    /// Mutates this session's live host page; the snapshot is
    /// regenerated and published (waking this session's parked polls —
    /// and only this session's) before this returns.
    pub fn mutate_page(&self, f: impl FnOnce(&mut rcb_html::Document)) -> Result<()> {
        self.entry.host.mutate_page(f)
    }

    /// This session's concurrent-path counters.
    pub fn stats(&self) -> TcpHostStats {
        self.entry.host.stats_snapshot()
    }

    /// Number of participants this session's agent has seen.
    pub fn participant_count(&self) -> usize {
        self.entry.host.participant_count()
    }

    /// The document timestamp of the currently published snapshot.
    pub fn published_doc_time(&self) -> u64 {
        self.entry.host.published_doc_time()
    }

    /// Byte length of the currently published Fig.-4 XML.
    pub fn published_xml_len(&self) -> usize {
        self.entry.host.published_xml_len()
    }

    /// The underlying shared host state (crate-internal: [`TcpHost`]
    /// keeps its legacy accessor surface through this).
    pub(crate) fn shared_host(&self) -> &Arc<SharedHost> {
        &self.entry.host
    }
}

/// One session's contribution to an outlier ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutlier {
    /// Session id (`""` is the default session).
    pub sid: String,
    /// The ranked gauge value.
    pub value: u64,
}

/// Process-level router statistics: cheap per-session gauges aggregated
/// into one view, with the outlier sessions surfaced (the ACME shape —
/// a fleet summary plus "which tenant is the problem").
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Sessions currently live.
    pub sessions_live: usize,
    /// Sessions ever created (including evicted ones).
    pub sessions_created: u64,
    /// Sessions removed by idle eviction.
    pub sessions_evicted: u64,
    /// Requests shed because the session cap was reached.
    pub cap_sheds: u64,
    /// Requests answered with the prefab 404 for an unknown session id.
    pub unknown_session_404s: u64,
    /// Requests routed into a session handler.
    pub requests_routed: u64,
    /// Dispatches that queued behind a session's in-flight bound.
    pub fairness_queued: u64,
    /// Dispatches shed at a session's waiter bound.
    pub fairness_shed: u64,
    /// Per-session gauges summed across live sessions. The park-cap shed
    /// counter reads the shared hub once (it is hub-global, not
    /// per-session).
    pub totals: TcpHostStats,
    /// Session with the most parked long-polls, and the p99 session.
    pub max_parked_polls: Option<SessionOutlier>,
    /// p99 session by parked long-polls.
    pub p99_parked_polls: Option<SessionOutlier>,
    /// Session with the most fairness sheds, and the p99 session.
    pub max_shed_requests: Option<SessionOutlier>,
    /// p99 session by fairness sheds.
    pub p99_shed_requests: Option<SessionOutlier>,
    /// Session with the largest published snapshot, and the p99 session.
    pub max_snapshot_bytes: Option<SessionOutlier>,
    /// p99 session by published snapshot bytes.
    pub p99_snapshot_bytes: Option<SessionOutlier>,
}

/// Process-wide router counters (the cheap side of the two-tier stats).
#[derive(Debug, Default)]
struct RouterCounters {
    sessions_created: AtomicU64,
    sessions_evicted: AtomicU64,
    cap_sheds: AtomicU64,
    unknown_session_404s: AtomicU64,
    requests_routed: AtomicU64,
    fairness_queued: AtomicU64,
    fairness_shed: AtomicU64,
}

/// How many ways the `sid → session` map is sharded. Requests for
/// different sessions contend only when their sids hash to the same
/// shard (and then only for the duration of a lookup).
const MAP_SHARDS: usize = 16;

/// The session-routing layer (see module docs).
pub struct SessionRouter {
    shards: Vec<RwLock<HashMap<String, Arc<SessionEntry>>>>,
    config: RouterConfig,
    /// Per-session agent-config template; the router overwrites
    /// `path_prefix` per session.
    agent_config: AgentConfig,
    factory: SessionFactory,
    park: Arc<ParkHub>,
    clock: Clock,
    /// Next per-session hub channel (0 is reserved for the default
    /// session, which keeps the classic single-session hub path).
    next_channel: AtomicU64,
    live: AtomicUsize,
    counters: RouterCounters,
    shed: ShedResponder,
    /// The prefab 404 for unknown session ids.
    not_found: Response,
    /// Channels of evicted sessions, forgotten (hub map entry pruned) on
    /// the *next* eviction sweep: a straggler park still due on the
    /// closed channel resolves first, so the tombstone read stays
    /// race-free and the hub map does not grow with session churn.
    retired: Mutex<Vec<u64>>,
    /// Clock reading (micros) of the last idle-eviction sweep. The
    /// dispatch path CASes this forward on a coarse interval so exactly
    /// one request thread pays for each sweep — no caller has to
    /// remember to drive [`SessionRouter::evict_idle`].
    last_sweep: AtomicU64,
}

impl SessionRouter {
    /// Builds a router. `park` and `clock` must come from the
    /// [`ServerConfig`] the serving engine is (or will be) bound with —
    /// the same contract as [`SharedHost::build`].
    pub fn new(
        factory: SessionFactory,
        agent_config: AgentConfig,
        config: RouterConfig,
        park: Arc<ParkHub>,
        clock: Clock,
    ) -> Arc<SessionRouter> {
        let shed = ShedResponder::new(&rcb_http::server::OverloadConfig::from_env());
        let started_at = clock.now().as_micros();
        Arc::new(SessionRouter {
            shards: (0..MAP_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            config,
            agent_config,
            factory,
            park,
            clock,
            next_channel: AtomicU64::new(1),
            live: AtomicUsize::new(0),
            counters: RouterCounters::default(),
            shed,
            not_found: Response::error(Status::NOT_FOUND, "unknown session").into_prefab(),
            retired: Mutex::new(Vec::new()),
            last_sweep: AtomicU64::new(started_at),
        })
    }

    fn shard_for(&self, sid: &str) -> &RwLock<HashMap<String, Arc<SessionEntry>>> {
        // FNV-1a over the sid: cheap, stable, and spread well enough for
        // a 16-way shard fan-out.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in sid.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        &self.shards[(h as usize) % MAP_SHARDS]
    }

    fn now_micros(&self) -> u64 {
        self.clock.now().as_micros()
    }

    /// Looks up a live session.
    pub fn session(&self, sid: &str) -> Option<SessionHandle> {
        let shard = self
            .shard_for(sid)
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.get(sid).map(|e| SessionHandle {
            entry: Arc::clone(e),
        })
    }

    /// Sessions currently live.
    pub fn session_count(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Creates (or returns) the session for `sid`, consulting the
    /// factory. Errors when the factory does not know the sid or the
    /// session cap is reached.
    pub fn create_session(&self, sid: &str) -> Result<SessionHandle> {
        match self.get_or_create(sid) {
            Route::Session(entry) => Ok(SessionHandle { entry }),
            Route::Unknown => Err(RcbError::InvalidInput(format!(
                "session factory does not know sid {sid:?}"
            ))),
            Route::AtCap => Err(RcbError::Protocol(format!(
                "session cap ({}) reached creating {sid:?}",
                self.config.max_sessions
            ))),
        }
    }

    /// Installs the *default* session — the implicit session un-prefixed
    /// paths route to, on hub channel 0 (the classic single-session hub
    /// path, byte-identical to the pre-router deployment). Exempt from
    /// idle eviction and the session cap.
    pub fn install_default_session(
        &self,
        browser: Browser,
        key: SessionKey,
    ) -> Result<SessionHandle> {
        let entry = self.build_entry(String::new(), browser, key, 0)?;
        let mut shard = self
            .shard_for("")
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shard.contains_key("") {
            return Err(RcbError::InvalidInput(
                "default session already installed".into(),
            ));
        }
        shard.insert(String::new(), Arc::clone(&entry));
        drop(shard);
        self.counters
            .sessions_created
            .fetch_add(1, Ordering::Relaxed);
        Ok(SessionHandle { entry })
    }

    fn build_entry(
        &self,
        sid: String,
        browser: Browser,
        key: SessionKey,
        channel: u64,
    ) -> Result<Arc<SessionEntry>> {
        let prefix = if sid.is_empty() {
            String::new()
        } else {
            session_prefix(&sid)
        };
        let config = AgentConfig {
            path_prefix: prefix,
            ..self.agent_config.clone()
        };
        let host = SharedHost::build_on_channel(
            browser,
            key.clone(),
            config,
            Arc::clone(&self.park),
            self.clock.clone(),
            channel,
        )?;
        let handler = host.make_handler();
        Ok(Arc::new(SessionEntry {
            sid,
            channel,
            host,
            handler,
            key,
            last_activity: AtomicU64::new(self.now_micros()),
            gate: FairnessGate::default(),
            fairness_shed: AtomicU64::new(0),
        }))
    }

    fn get_or_create(&self, sid: &str) -> Route {
        {
            let shard = self
                .shard_for(sid)
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(e) = shard.get(sid) {
                return Route::Session(Arc::clone(e));
            }
        }
        // Miss: take the shard write lock for the whole creation so a
        // racing request for the same sid finds the entry instead of
        // double-building. Only this shard blocks meanwhile; the shard
        // lock is still a leaf (the build acquires no other router or
        // session lock).
        let mut shard = self
            .shard_for(sid)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = shard.get(sid) {
            return Route::Session(Arc::clone(e));
        }
        if self.live.load(Ordering::Relaxed) >= self.config.max_sessions {
            return Route::AtCap;
        }
        let Some((browser, key)) = (self.factory)(sid) else {
            return Route::Unknown;
        };
        let channel = self.next_channel.fetch_add(1, Ordering::Relaxed);
        match self.build_entry(sid.to_string(), browser, key, channel) {
            Ok(entry) => {
                shard.insert(sid.to_string(), Arc::clone(&entry));
                self.live.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .sessions_created
                    .fetch_add(1, Ordering::Relaxed);
                Route::Session(entry)
            }
            // A factory page that fails host construction is
            // indistinguishable from an unknown sid to the participant.
            Err(_) => Route::Unknown,
        }
    }

    /// Evicts sessions idle longer than [`RouterConfig::idle_evict`]
    /// (default session exempt), closing each one's hub channel so its
    /// parked long-polls complete with the timeout reply. Channels of
    /// sessions evicted on a *previous* sweep are forgotten now (see
    /// `retired`). Returns how many sessions were evicted.
    pub fn evict_idle(&self) -> usize {
        // Prune last sweep's tombstones first: any park on those
        // channels has long resolved (close wakes every engine), so the
        // hub map stays bounded under session churn.
        let prior: Vec<u64> = {
            let mut retired = self
                .retired
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *retired)
        };
        for channel in prior {
            self.park.forget_channel(channel);
        }

        let now = self.now_micros();
        let horizon = self.config.idle_evict.as_micros() as u64;
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let stale: Vec<String> = map
                .iter()
                .filter(|(sid, e)| {
                    !sid.is_empty()
                        && now.saturating_sub(e.last_activity.load(Ordering::Relaxed)) >= horizon
                })
                .map(|(sid, _)| sid.clone())
                .collect();
            for sid in stale {
                if let Some(entry) = map.remove(&sid) {
                    // Close outside no other lock: the shard lock is
                    // held, but `close_channel` only touches hub
                    // internals (a leaf below everything here).
                    self.park.close_channel(entry.channel);
                    self.retired
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(entry.channel);
                    self.live.fetch_sub(1, Ordering::Relaxed);
                    self.counters
                        .sessions_evicted
                        .fetch_add(1, Ordering::Relaxed);
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// The routing handler: parses the session prefix, finds or lazily
    /// creates the session, applies the fairness gate, and dispatches
    /// into the session's own handler.
    pub fn make_handler(self: &Arc<Self>) -> Handler {
        let router = Arc::clone(self);
        Arc::new(move |req| router.route(req))
    }

    /// Runs an idle-eviction sweep from the dispatch path when one is
    /// due: at most once per quarter idle horizon (never more than once
    /// per virtual second), and only on the single thread that wins the
    /// CAS — everyone else sees a fresh `last_sweep` and skips. Keeps
    /// eviction self-driving: a router that receives traffic sheds its
    /// idle sessions without an external sweeper thread.
    fn maybe_sweep(&self) {
        // A zero horizon would evict every session on every sweep —
        // useless as an automatic policy. Zero therefore means
        // caller-driven eviction only (tests drive `evict_idle`
        // directly).
        if self.config.idle_evict.is_zero() {
            return;
        }
        let interval = (self.config.idle_evict.as_micros() as u64 / 4).max(1_000_000);
        let now = self.now_micros();
        let last = self.last_sweep.load(Ordering::Relaxed);
        if now.saturating_sub(last) < interval {
            return;
        }
        if self
            .last_sweep
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.evict_idle();
        }
    }

    fn route(&self, req: Request) -> HandlerOutcome {
        self.maybe_sweep();
        let sid = match parse_sid(req.path()) {
            SidParse::Routed(sid) => sid.to_string(),
            SidParse::Default => String::new(),
            SidParse::Malformed => {
                self.counters
                    .unknown_session_404s
                    .fetch_add(1, Ordering::Relaxed);
                return self.not_found.clone().into();
            }
        };
        let entry = match self.get_or_create(&sid) {
            Route::Session(e) => e,
            Route::Unknown => {
                self.counters
                    .unknown_session_404s
                    .fetch_add(1, Ordering::Relaxed);
                return self.not_found.clone().into();
            }
            Route::AtCap => {
                self.counters.cap_sheds.fetch_add(1, Ordering::Relaxed);
                return self.shed.next().into();
            }
        };
        entry
            .last_activity
            .store(self.now_micros(), Ordering::Relaxed);
        match entry
            .gate
            .acquire(self.config.session_inflight, self.config.session_waiters)
        {
            Admission::Admitted => {}
            Admission::AdmittedAfterWait => {
                self.counters
                    .fairness_queued
                    .fetch_add(1, Ordering::Relaxed);
            }
            Admission::Shed => {
                entry.fairness_shed.fetch_add(1, Ordering::Relaxed);
                self.counters.fairness_shed.fetch_add(1, Ordering::Relaxed);
                return self.shed.next().into();
            }
        }
        self.counters
            .requests_routed
            .fetch_add(1, Ordering::Relaxed);
        // The slot is held across the handler call only: a returned Park
        // waits in the engine without a slot (exactly as it holds no
        // dispatch thread), so parked sessions cost nothing here.
        let outcome = (entry.handler)(req);
        entry.gate.release();
        outcome
    }

    /// Two-tier stats: process counters plus every live session's gauges
    /// aggregated, with max/p99 outlier sessions surfaced.
    pub fn stats(&self) -> RouterStats {
        let c = &self.counters;
        let mut totals = TcpHostStats::default();
        // (sid, parked, fairness_shed, snapshot_bytes) per live session.
        let mut rows: Vec<(String, u64, u64, u64)> = Vec::new();
        for shard in &self.shards {
            let map = shard
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (sid, e) in map.iter() {
                let s = e.host.stats_snapshot();
                totals.connections += s.connections;
                totals.object_requests += s.object_requests;
                totals.polls_with_content += s.polls_with_content;
                totals.polls_empty += s.polls_empty;
                totals.auth_failures += s.auth_failures;
                totals.bad_requests += s.bad_requests;
                totals.max_concurrent_polls =
                    totals.max_concurrent_polls.max(s.max_concurrent_polls);
                totals.body_bytes_copied += s.body_bytes_copied;
                totals.polls_parked += s.polls_parked;
                totals.polls_woken += s.polls_woken;
                totals.polls_woken_delta += s.polls_woken_delta;
                totals.delta_fallbacks += s.delta_fallbacks;
                totals.polls_park_timeouts += s.polls_park_timeouts;
                rows.push((
                    sid.clone(),
                    s.polls_parked,
                    e.fairness_shed.load(Ordering::Relaxed),
                    e.host.published_xml_len() as u64,
                ));
            }
        }
        // Hub-global, read once (every session would report the same
        // shared counter).
        totals.polls_shed_at_park_cap = self.park.parks_shed();

        let (max_parked_polls, p99_parked_polls) = outliers(&rows, |r| r.1);
        let (max_shed_requests, p99_shed_requests) = outliers(&rows, |r| r.2);
        let (max_snapshot_bytes, p99_snapshot_bytes) = outliers(&rows, |r| r.3);
        RouterStats {
            sessions_live: self.live.load(Ordering::Relaxed)
                + usize::from(self.session("").is_some()),
            sessions_created: c.sessions_created.load(Ordering::Relaxed),
            sessions_evicted: c.sessions_evicted.load(Ordering::Relaxed),
            cap_sheds: c.cap_sheds.load(Ordering::Relaxed),
            unknown_session_404s: c.unknown_session_404s.load(Ordering::Relaxed),
            requests_routed: c.requests_routed.load(Ordering::Relaxed),
            fairness_queued: c.fairness_queued.load(Ordering::Relaxed),
            fairness_shed: c.fairness_shed.load(Ordering::Relaxed),
            totals,
            max_parked_polls,
            p99_parked_polls,
            max_shed_requests,
            p99_shed_requests,
            max_snapshot_bytes,
            p99_snapshot_bytes,
        }
    }
}

/// Ranks sessions by one gauge; returns the max session and the p99
/// session (nearest-rank on the sorted values, the max itself when fewer
/// than 100 sessions report).
fn outliers(
    rows: &[(String, u64, u64, u64)],
    gauge: impl Fn(&(String, u64, u64, u64)) -> u64,
) -> (Option<SessionOutlier>, Option<SessionOutlier>) {
    if rows.is_empty() {
        return (None, None);
    }
    let mut ranked: Vec<(&str, u64)> = rows.iter().map(|r| (r.0.as_str(), gauge(r))).collect();
    ranked.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
    let max = ranked.last().expect("non-empty");
    let p99_idx = rcb_util::nearest_rank_index(ranked.len(), 99.0).expect("non-empty");
    let p99 = &ranked[p99_idx];
    (
        Some(SessionOutlier {
            sid: max.0.to_string(),
            value: max.1,
        }),
        Some(SessionOutlier {
            sid: p99.0.to_string(),
            value: p99.1,
        }),
    )
}

enum Route {
    Session(Arc<SessionEntry>),
    Unknown,
    AtCap,
}

enum SidParse<'a> {
    /// `/s/{sid}/...` with a non-empty sid.
    Routed(&'a str),
    /// A legacy un-prefixed path → the implicit default session.
    Default,
    /// `/s/` with an empty or unterminated sid.
    Malformed,
}

/// Extracts the session id from a request path. The sid is everything
/// between `/s/` and the next `/`; it must be non-empty and the path
/// must continue past it (`/s/abc` alone is malformed — a session's
/// root is `/s/abc/`).
fn parse_sid(path: &str) -> SidParse<'_> {
    let Some(rest) = path.strip_prefix("/s/") else {
        return SidParse::Default;
    };
    match rest.find('/') {
        Some(0) | None => SidParse::Malformed,
        Some(end) => SidParse::Routed(&rest[..end]),
    }
}

/// A live multi-session RCB host: a [`SessionRouter`] behind a real TCP
/// port — the many-sessions counterpart of [`crate::tcp::TcpHost`].
pub struct RouterHost {
    server: HttpServer,
    router: Arc<SessionRouter>,
}

impl RouterHost {
    /// Binds the serving engine on `addr` with the routing handler. The
    /// router wires itself to the `ServerConfig`'s park hub and clock,
    /// the same seam every session's host publishes through.
    pub fn start(
        addr: &str,
        factory: SessionFactory,
        agent_config: AgentConfig,
        router_config: RouterConfig,
        server_config: ServerConfig,
    ) -> Result<RouterHost> {
        let park = Arc::clone(&server_config.park_hub);
        let clock = server_config.clock.clone();
        let router = SessionRouter::new(factory, agent_config, router_config, park, clock);
        let server = HttpServer::bind_with(addr, router.make_handler(), server_config)?;
        Ok(RouterHost { server, router })
    }

    /// The bound address participants connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// The server backend servicing the shared socket.
    pub fn backend(&self) -> ServerBackend {
        self.server.backend()
    }

    /// The routing layer (session creation, lookup, eviction, stats).
    pub fn router(&self) -> &Arc<SessionRouter> {
        &self.router
    }

    /// Process-level router statistics.
    pub fn stats(&self) -> RouterStats {
        self.router.stats()
    }

    /// Engine-level counters from the shared server.
    pub fn server_stats(&self) -> rcb_http::server::ServerStats {
        self.server.stats()
    }

    /// Stops the server.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

/// A [`SessionFactory`] serving the same page to every provisioned sid:
/// sids are drawn from the given set, each getting a deterministic key
/// derived from the shared secret (tests and benches; a deployment
/// would provision sessions out of band).
pub fn fixed_page_factory(
    page_url: String,
    page_html: String,
    sids: std::collections::HashSet<String>,
    secret: String,
) -> SessionFactory {
    Box::new(move |sid| {
        if !sids.contains(sid) {
            return None;
        }
        let mut browser = Browser::new(rcb_browser::BrowserKind::Firefox);
        browser.url = Some(rcb_url::Url::parse(&page_url).ok()?);
        browser.doc = Some(rcb_html::parse_document(&page_html));
        browser.mutate_dom(|_| {}).ok()?;
        // Deterministic per-sid key: the first 16 bytes of
        // HMAC(secret, sid) — stable across processes, distinct per sid.
        let mac = rcb_crypto::hmac::hmac_sha256(secret.as_bytes(), sid.as_bytes());
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&mac[..16]);
        Some((browser, SessionKey::from_bytes(bytes)))
    })
}
