//! The co-browsing world: host + agent + participants on simulated links.
//!
//! Reproduces the nine-step session of paper §3.1 in virtual time:
//! the host runs RCB-Agent (step 1), participants connect and receive the
//! initial page with Ajax-Snippet (step 2), the host browses (steps 3–4),
//! polls carry content to participants (steps 5–6), supplementary objects
//! flow from origins (step 7, non-cache) or from the host cache
//! (step 8, cache mode), and dynamic changes plus user actions keep
//! synchronizing (step 9).
//!
//! The world is the measurement harness for the paper's metrics: each
//! host navigation records M1; each participant synchronization records
//! M2 (document content), M3/M4 (objects, by mode), M5 (generation CPU,
//! from the agent) and M6 (update CPU, from the snippet).

use rcb_browser::engine::ThinkClass;
use rcb_browser::{Browser, BrowserKind, LoadStats, UserAction};
use rcb_http::Request;
use rcb_origin::OriginRegistry;
use rcb_sim::link::{Direction, Pipe};
use rcb_sim::profiles::NetProfile;
use rcb_url::Url;
use rcb_util::{DetRng, RcbError, Result, SimDuration, SimTime};

use crate::agent::{AgentConfig, CacheMode, HostEffect, RcbAgent};
use crate::recorder::{SessionEvent, SessionRecorder};
use crate::snippet::{AjaxSnippet, SnippetOutcome};

use rcb_crypto::SessionKey;

/// The host side: browser plus the agent extension inside it.
pub struct HostSide {
    /// The host browser.
    pub browser: Browser,
    /// The RCB-Agent extension.
    pub agent: RcbAgent,
    /// Host ↔ origin path.
    pub origin_pipe: Pipe,
    /// The host's access link on the RCB path — shared by *all*
    /// participants, so concurrent deliveries queue on the host uplink
    /// (the WAN bottleneck the paper calls out in §5.1.2).
    pub rcb_pipe: Pipe,
}

/// One participant: browser plus Ajax-Snippet state.
pub struct ParticipantSide {
    /// Participant id (the `p` parameter of polls).
    pub id: u64,
    /// The participant's regular browser.
    pub browser: Browser,
    /// Snippet state.
    pub snippet: AjaxSnippet,
    /// Participant ↔ origin path (non-cache object downloads).
    pub origin_pipe: Pipe,
}

/// Timing record of one participant synchronization.
#[derive(Debug, Clone, Copy)]
pub struct SyncRecord {
    /// Content timestamp received.
    pub doc_time: u64,
    /// M2: poll request sent → document content applied.
    pub m2: SimDuration,
    /// M3 or M4 (by mode): content applied → all objects fetched.
    pub object_time: SimDuration,
    /// Number of objects fetched during this sync.
    pub objects: usize,
    /// When the sync (including objects) completed.
    pub finished_at: SimTime,
}

/// The co-browsing world.
pub struct CoBrowsingWorld {
    /// Origin servers reachable from both sides.
    pub origins: OriginRegistry,
    /// Network environment.
    pub profile: NetProfile,
    /// Current virtual time.
    pub now: SimTime,
    /// The host side.
    pub host: HostSide,
    /// Connected participants.
    pub participants: Vec<ParticipantSide>,
    /// Append-only session event log.
    pub recorder: SessionRecorder,
    last_content_recorded: u64,
    next_pid: u64,
    rng: DetRng,
}

impl CoBrowsingWorld {
    /// Creates a world with the given origins, environment and agent
    /// configuration (step 1: the host starts RCB-Agent).
    pub fn new(
        origins: OriginRegistry,
        profile: NetProfile,
        config: AgentConfig,
        seed: u64,
    ) -> Self {
        let mut rng = DetRng::new(seed);
        let key = SessionKey::generate_deterministic(&mut rng);
        CoBrowsingWorld {
            origins,
            host: HostSide {
                browser: Browser::new(BrowserKind::Firefox),
                agent: RcbAgent::new(key, config),
                origin_pipe: Pipe::new(profile.host_origin),
                rcb_pipe: Pipe::new(profile.host_participant),
            },
            profile,
            now: SimTime::ZERO,
            participants: Vec::new(),
            recorder: SessionRecorder::new(),
            last_content_recorded: 0,
            next_pid: 1,
            rng,
        }
    }

    /// Convenience: Alexa-20 origins, default agent config.
    pub fn with_alexa20(profile: NetProfile, config: AgentConfig, seed: u64) -> Self {
        CoBrowsingWorld::new(OriginRegistry::with_alexa20(), profile, config, seed)
    }

    /// Advances virtual time (never backwards).
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Lets virtual time pass (user think time etc.).
    pub fn sleep(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Deterministic think time in `[lo_ms, hi_ms]` for scenario scripts.
    pub fn think(&mut self, lo_ms: u64, hi_ms: u64) {
        let ms = self.rng.range_inclusive(lo_ms, hi_ms);
        self.sleep(SimDuration::from_millis(ms));
    }

    /// Host navigates to a URL (steps 3–4). Records and returns M1 stats.
    pub fn host_navigate(&mut self, url: &str) -> Result<LoadStats> {
        let url = Url::parse(url)?;
        self.recorder.record(
            self.now,
            SessionEvent::HostNavigate {
                url: url.to_string(),
            },
        );
        let stats = self.host.browser.navigate(
            &url,
            &mut self.origins,
            &mut self.host.origin_pipe,
            &self.profile,
            self.now,
        )?;
        self.advance_to(stats.finished_at);
        let doc_time = self
            .host
            .agent
            .current_doc_time(&self.host.browser, self.now);
        self.recorder
            .record(self.now, SessionEvent::ContentChange { doc_time });
        self.last_content_recorded = self.last_content_recorded.max(doc_time);
        Ok(stats)
    }

    /// Host presses the back button: re-navigates to the previous history
    /// entry (participants follow on their next poll, like any other host
    /// navigation).
    pub fn host_back(&mut self) -> Result<Option<LoadStats>> {
        match self.host.browser.go_back() {
            Some(url) => Ok(Some(self.host_navigate(&url.to_string())?)),
            None => Ok(None),
        }
    }

    /// Host presses the forward button.
    pub fn host_forward(&mut self) -> Result<Option<LoadStats>> {
        match self.host.browser.go_forward() {
            Some(url) => Ok(Some(self.host_navigate(&url.to_string())?)),
            None => Ok(None),
        }
    }

    /// A participant joins (step 2): connects to the agent URL, receives
    /// the initial page, and instantiates the snippet with the
    /// out-of-band session key. Returns the participant index.
    pub fn add_participant(&mut self, kind: BrowserKind) -> usize {
        let id = self.next_pid;
        self.next_pid += 1;
        let mut browser = Browser::new(kind);
        // GET / to the agent over the shared RCB path.
        let connect = self.host.rcb_pipe.connect(self.now);
        let req = Request::get("/");
        let req_arrival = self
            .host
            .rcb_pipe
            .transfer(connect, req.wire_len(), Direction::Up);
        let outcome = self
            .host
            .agent
            .handle_request(&req, &mut self.host.browser, req_arrival);
        let resp_arrival =
            self.host
                .rcb_pipe
                .transfer(req_arrival, outcome.response.wire_len(), Direction::Down);
        browser.doc = Some(rcb_html::parse_document(&outcome.response.body_str()));
        self.advance_to(resp_arrival);
        let snippet = AjaxSnippet::new(
            id,
            self.host.agent.key().clone(),
            self.host.agent.config.poll_interval,
        );
        self.participants.push(ParticipantSide {
            id,
            browser,
            snippet,
            origin_pipe: Pipe::new(self.profile.participant_origin),
        });
        self.recorder
            .record(self.now, SessionEvent::Join { pid: id });
        self.participants.len() - 1
    }

    /// A participant leaves the session.
    pub fn remove_participant(&mut self, idx: usize) {
        let p = self.participants.remove(idx);
        self.recorder
            .record(self.now, SessionEvent::Leave { pid: p.id });
        self.host.agent.remove_participant(p.id);
    }

    /// Queues an action on a participant's snippet, to ride the next poll.
    pub fn participant_action(&mut self, idx: usize, action: UserAction) {
        self.recorder.record(
            self.now,
            SessionEvent::Action {
                pid: self.participants[idx].id,
                encoded: action.encode(),
            },
        );
        self.participants[idx].snippet.capture_action(action);
    }

    /// Executes one poll round for participant `idx` starting at `now`
    /// (steps 5–8). Returns the sync record if new content was applied,
    /// plus any app-level host effects the caller must interpret.
    pub fn poll_participant(
        &mut self,
        idx: usize,
    ) -> Result<(Option<SyncRecord>, Vec<HostEffect>)> {
        let start = self.now;
        let p = &mut self.participants[idx];
        let req = p.snippet.build_poll();
        let req_arrival = self
            .host
            .rcb_pipe
            .transfer(start, req.wire_len(), Direction::Up);
        let generations_before = self.host.agent.stats.generations.get();
        let outcome = self
            .host
            .agent
            .handle_request(&req, &mut self.host.browser, req_arrival);
        // The agent's CPU cost (content generation, M5) delays the reply —
        // but only when this poll actually triggered a generation; reused
        // content is served from the agent's content cache at ~zero cost.
        let served_at = if self.host.agent.stats.generations.get() > generations_before {
            let m5_cost = self
                .host
                .agent
                .stats
                .m5
                .samples()
                .last()
                .copied()
                .unwrap_or(SimDuration::ZERO);
            req_arrival + m5_cost
        } else {
            req_arrival
        };
        let resp_arrival =
            self.host
                .rcb_pipe
                .transfer(served_at, outcome.response.wire_len(), Direction::Down);
        let result = p
            .snippet
            .process_response(&outcome.response, &mut p.browser)?;
        let mut sync = None;
        match result {
            SnippetOutcome::NoNewContent => {
                self.advance_to(resp_arrival);
            }
            SnippetOutcome::Updated {
                doc_time,
                object_urls,
                host_actions: _,
            } => {
                // Applying the update costs the snippet's M6 on the clock.
                let m6 = p
                    .snippet
                    .m6
                    .samples()
                    .last()
                    .copied()
                    .unwrap_or(SimDuration::ZERO);
                let applied_at = resp_arrival + m6;
                let m2 = applied_at.since(start);
                let (objects_done, fetched) =
                    self.fetch_participant_objects(idx, &object_urls, applied_at)?;
                self.advance_to(objects_done);
                // Content changes that did not come from a recorded host
                // navigation (merges, dynamic mutations) are logged here,
                // when their timestamp first surfaces.
                if doc_time > self.last_content_recorded {
                    self.recorder
                        .record(start, SessionEvent::ContentChange { doc_time });
                    self.last_content_recorded = doc_time;
                }
                self.recorder.record(
                    objects_done,
                    SessionEvent::Sync {
                        pid: self.participants[idx].id,
                        doc_time,
                    },
                );
                sync = Some(SyncRecord {
                    doc_time,
                    m2,
                    object_time: objects_done.since(applied_at),
                    objects: fetched,
                    finished_at: objects_done,
                });
            }
        }
        // Execute host effects the world can interpret; return the rest.
        let mut app_effects = Vec::new();
        for effect in outcome.effects {
            match effect {
                HostEffect::Navigate(url) => {
                    self.host_navigate(&url)?;
                }
                HostEffect::SubmitForm { form, .. } => {
                    self.host_submit_form(&form)?;
                }
                other => app_effects.push(other),
            }
        }
        Ok((sync, app_effects))
    }

    /// Fetches a participant's supplementary objects: agent-relative URLs
    /// from the host browser cache over the RCB path (step 8), absolute
    /// URLs from origin servers (step 7).
    fn fetch_participant_objects(
        &mut self,
        idx: usize,
        urls: &[String],
        start: SimTime,
    ) -> Result<(SimTime, usize)> {
        let connections = self.profile.browser_connections;
        let mut agent_urls: Vec<String> = Vec::new();
        let mut origin_urls: Vec<String> = Vec::new();
        for u in urls {
            if u.starts_with('/') {
                agent_urls.push(u.clone());
            } else {
                origin_urls.push(u.clone());
            }
        }
        let mut finished = start;
        let mut fetched = 0usize;

        // Agent-served objects (cache mode), over the shared RCB path.
        {
            let mut free_at: Vec<SimTime> = Vec::new();
            for u in &agent_urls {
                if self.participants[idx].browser.cache.contains(u) {
                    continue;
                }
                let slot = if free_at.len() < connections {
                    free_at.push(self.host.rcb_pipe.connect(start));
                    free_at.len() - 1
                } else {
                    free_at
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &t)| t)
                        .map(|(i, _)| i)
                        .expect("pool non-empty")
                };
                let begin = free_at[slot].max(start);
                let req = Request::get(u.clone());
                let req_arrival = self
                    .host
                    .rcb_pipe
                    .transfer(begin, req.wire_len(), Direction::Up);
                let outcome =
                    self.host
                        .agent
                        .handle_request(&req, &mut self.host.browser, req_arrival);
                let resp = outcome.response;
                let done =
                    self.host
                        .rcb_pipe
                        .transfer(req_arrival, resp.wire_len(), Direction::Down);
                free_at[slot] = done;
                finished = finished.max(done);
                fetched += 1;
                if resp.status.is_success() {
                    let ct = resp.content_type().unwrap_or_default();
                    self.participants[idx]
                        .browser
                        .cache
                        .store(u, &ct, resp.body, done);
                }
            }
        }

        // Origin-served objects (non-cache mode), over the participant's
        // own access link.
        if !origin_urls.is_empty() {
            let base = self
                .host
                .browser
                .url
                .clone()
                .unwrap_or_else(|| Url::parse("http://localhost/").expect("static URL parses"));
            let p = &mut self.participants[idx];
            let (done, n, _, _) = p.browser.fetch_objects(
                &base,
                &origin_urls,
                &mut self.origins,
                &mut p.origin_pipe,
                &self.profile,
                start,
            )?;
            finished = finished.max(done);
            fetched += n;
        }
        Ok((finished, fetched))
    }

    /// Submits the named form from the host page to its origin (the
    /// co-filled form path: data was already merged into the host DOM by
    /// the agent; the host sends it out, §5.2.2).
    pub fn host_submit_form(&mut self, form_id: &str) -> Result<LoadStats> {
        let doc = self
            .host
            .browser
            .doc
            .as_ref()
            .ok_or_else(|| RcbError::InvalidInput("host has no document".into()))?;
        let form = rcb_html::query::element_by_id(doc, doc.root(), form_id)
            .ok_or_else(|| RcbError::NotFound(format!("form {form_id}")))?;
        let action = doc.get_attr(form, "action").unwrap_or("/").to_string();
        let method = doc
            .get_attr(form, "method")
            .unwrap_or("get")
            .to_ascii_lowercase();
        let fields = rcb_html::query::form_fields(doc, form);
        let page = self
            .host
            .browser
            .url
            .clone()
            .ok_or_else(|| RcbError::InvalidInput("host has no page URL".into()))?;
        let target = page.join(&action)?;
        if method == "post" {
            let body = rcb_url::percent::build_query(&fields).into_bytes();
            let req = Request::post(target.request_target(), body)
                .with_header("Content-Type", "application/x-www-form-urlencoded");
            let (resp, arrived) = self.host.browser.http_request(
                &target,
                req,
                &mut self.origins,
                &mut self.host.origin_pipe,
                &self.profile,
                ThinkClass::HtmlDocument,
                self.now,
            );
            self.advance_to(arrived);
            // Follow one redirect (e.g. cart/add → /cart).
            if resp.status.0 == 302 {
                let loc = resp.headers.get("location").unwrap_or("/").to_string();
                let next = target.join(&loc)?;
                return self.host_navigate(&next.to_string());
            }
            // Render the response as the new host page.
            let body = resp.body_str();
            self.host.browser.url = Some(target);
            self.host.browser.doc = Some(rcb_html::parse_document(&body));
            let _ = self.host.browser.mutate_dom(|_| {});
            Ok(LoadStats {
                html_time: SimDuration::ZERO,
                objects_time: SimDuration::ZERO,
                finished_at: self.now,
                objects_fetched: 0,
                objects_cached: 0,
                bytes_moved: rcb_util::ByteSize::bytes(resp.body.len() as u64),
            })
        } else {
            let query = rcb_url::percent::build_query(&fields);
            let mut dest = target;
            dest.query = Some(query);
            self.host_navigate(&dest.to_string())
        }
    }

    /// Runs `rounds` poll cycles for every participant, spaced by the
    /// snippet poll interval. Returns the sync records collected.
    pub fn run_poll_rounds(&mut self, rounds: usize) -> Result<Vec<SyncRecord>> {
        let mut records = Vec::new();
        for _ in 0..rounds {
            for idx in 0..self.participants.len() {
                let (sync, _) = self.poll_participant(idx)?;
                if let Some(s) = sync {
                    records.push(s);
                }
            }
            let interval = self.host.agent.config.poll_interval;
            self.sleep(interval);
        }
        Ok(records)
    }

    /// Index of the participant with id `pid`.
    pub fn participant_index(&self, pid: u64) -> Option<usize> {
        self.participants.iter().position(|p| p.id == pid)
    }
}

/// Measures one site end-to-end: host navigates, a fresh participant
/// synchronizes; returns `(M1 stats, sync record)`. The building block of
/// the Figure-6/7/8 and Table-1 experiments.
pub fn measure_site(
    profile: NetProfile,
    mode: CacheMode,
    site: &str,
    seed: u64,
) -> Result<(LoadStats, SyncRecord)> {
    let config = AgentConfig::builder().cache_mode(mode).build();
    let mut world = CoBrowsingWorld::with_alexa20(profile, config, seed);
    let idx = world.add_participant(BrowserKind::Firefox);
    let load = world.host_navigate(&format!("http://{site}/"))?;
    let (sync, _) = world.poll_participant(idx)?;
    let sync = sync.ok_or_else(|| RcbError::Protocol("no content on first poll".into()))?;
    Ok((load, sync))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan_world() -> CoBrowsingWorld {
        CoBrowsingWorld::with_alexa20(NetProfile::lan(), AgentConfig::default(), 42)
    }

    #[test]
    fn end_to_end_sync_on_lan() {
        let mut world = lan_world();
        let idx = world.add_participant(BrowserKind::Firefox);
        let load = world.host_navigate("http://google.com/").unwrap();
        let (sync, effects) = world.poll_participant(idx).unwrap();
        let sync = sync.expect("first poll delivers content");
        assert!(effects.is_empty());
        // The participant document now mirrors the host body text.
        let host_doc = world.host.browser.doc.as_ref().unwrap();
        let part_doc = world.participants[idx].browser.doc.as_ref().unwrap();
        let host_text = host_doc.text_content(host_doc.body().unwrap());
        let part_text = part_doc.text_content(part_doc.body().unwrap());
        assert_eq!(host_text, part_text);
        // Figure 6's claim: M2 << M1 in the LAN.
        assert!(
            sync.m2.as_micros() * 5 < load.html_time.as_micros(),
            "m2={} m1={}",
            sync.m2,
            load.html_time
        );
    }

    #[test]
    fn cache_mode_serves_objects_from_host() {
        let mut world = lan_world();
        let idx = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://apple.com/").unwrap();
        let (sync, _) = world.poll_participant(idx).unwrap();
        let sync = sync.unwrap();
        assert!(sync.objects > 0);
        // All objects came from the agent: participant never touched the
        // origin (its origin pipe stayed idle) — checkable via its cache
        // holding agent-relative keys.
        let p = &world.participants[idx];
        assert!(p
            .browser
            .cache
            .urls()
            .iter()
            .all(|u| u.starts_with("/cache/")));
    }

    #[test]
    fn non_cache_mode_fetches_from_origin() {
        let config = AgentConfig::builder()
            .cache_mode(CacheMode::NonCache)
            .build();
        let mut world = CoBrowsingWorld::with_alexa20(NetProfile::lan(), config, 7);
        let idx = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://apple.com/").unwrap();
        let (sync, _) = world.poll_participant(idx).unwrap();
        let sync = sync.unwrap();
        assert!(sync.objects > 0);
        let p = &world.participants[idx];
        assert!(p
            .browser
            .cache
            .urls()
            .iter()
            .all(|u| u.starts_with("http://apple.com/")));
    }

    #[test]
    fn cache_mode_is_faster_for_objects_on_lan() {
        // Figure 8's claim: M4 < M3 in the LAN, for every site.
        let (_, cache_sync) =
            measure_site(NetProfile::lan(), CacheMode::Cache, "msn.com", 1).unwrap();
        let (_, noncache_sync) =
            measure_site(NetProfile::lan(), CacheMode::NonCache, "msn.com", 1).unwrap();
        assert!(
            cache_sync.object_time < noncache_sync.object_time,
            "M4 {} !< M3 {}",
            cache_sync.object_time,
            noncache_sync.object_time
        );
    }

    #[test]
    fn wan_m2_grows_but_stays_reasonable() {
        let (lan_load, lan_sync) =
            measure_site(NetProfile::lan(), CacheMode::Cache, "wikipedia.org", 2).unwrap();
        let (wan_load, wan_sync) =
            measure_site(NetProfile::wan(), CacheMode::Cache, "wikipedia.org", 2).unwrap();
        assert!(wan_sync.m2 > lan_sync.m2, "WAN M2 exceeds LAN M2");
        // Mid-sized page: M2 still below M1 in both environments.
        assert!(lan_sync.m2 < lan_load.html_time);
        assert!(wan_sync.m2 < wan_load.html_time);
    }

    #[test]
    fn multiple_participants_share_generated_content() {
        let mut world = lan_world();
        let a = world.add_participant(BrowserKind::Firefox);
        let b = world.add_participant(BrowserKind::InternetExplorer);
        world.host_navigate("http://facebook.com/").unwrap();
        world.poll_participant(a).unwrap().0.unwrap();
        world.poll_participant(b).unwrap().0.unwrap();
        assert_eq!(world.host.agent.stats.generations.get(), 1);
        // Both browser kinds render the same body.
        let da = world.participants[a].browser.doc.as_ref().unwrap();
        let db = world.participants[b].browser.doc.as_ref().unwrap();
        assert_eq!(
            rcb_html::inner_html(da, da.body().unwrap()),
            rcb_html::inner_html(db, db.body().unwrap())
        );
    }

    #[test]
    fn dynamic_mutation_resyncs() {
        let mut world = lan_world();
        let idx = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://google.com/").unwrap();
        world.poll_participant(idx).unwrap().0.unwrap();
        // Host-side script mutates the page (step 9).
        world
            .host
            .browser
            .mutate_dom(|doc| {
                let body = doc.body().unwrap();
                let div = doc.create_element("div");
                doc.set_attr(div, "id", "breaking");
                let t = doc.create_text("breaking news");
                doc.append_child(div, t).unwrap();
                doc.append_child(body, div).unwrap();
            })
            .unwrap();
        world.sleep(SimDuration::from_secs(1));
        let (sync, _) = world.poll_participant(idx).unwrap();
        assert!(sync.is_some(), "mutation produced new content");
        let pd = world.participants[idx].browser.doc.as_ref().unwrap();
        assert!(pd.text_content(pd.root()).contains("breaking news"));
    }

    #[test]
    fn participant_navigation_effect_drives_host() {
        let mut world = lan_world();
        let idx = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://google.com/").unwrap();
        world.poll_participant(idx).unwrap();
        world.participant_action(
            idx,
            UserAction::Navigate {
                url: "http://apple.com/".into(),
            },
        );
        world.sleep(SimDuration::from_secs(1));
        world.poll_participant(idx).unwrap();
        assert_eq!(
            world.host.browser.url.as_ref().unwrap().host,
            "apple.com",
            "host navigated on participant request"
        );
        // Next poll syncs the new page to the participant.
        world.sleep(SimDuration::from_secs(1));
        let (sync, _) = world.poll_participant(idx).unwrap();
        assert!(sync.is_some());
        let pd = world.participants[idx].browser.doc.as_ref().unwrap();
        assert!(pd.text_content(pd.root()).contains("apple.com"));
    }

    #[test]
    fn form_cofill_roundtrip() {
        let mut world = lan_world();
        let idx = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://google.com/").unwrap();
        world.poll_participant(idx).unwrap();
        world.participant_action(
            idx,
            UserAction::FormInput {
                form: "q".into(),
                field: "q".into(),
                value: "rcb framework".into(),
            },
        );
        world.sleep(SimDuration::from_secs(1));
        world.poll_participant(idx).unwrap();
        // Merged into the host DOM...
        let hd = world.host.browser.doc.as_ref().unwrap();
        let form = rcb_html::query::element_by_id(hd, hd.root(), "q").unwrap();
        assert!(rcb_html::query::form_fields(hd, form)
            .contains(&("q".to_string(), "rcb framework".to_string())));
        // ...and synchronized back to the participant on the next poll.
        world.sleep(SimDuration::from_secs(1));
        world.poll_participant(idx).unwrap();
        let pd = world.participants[idx].browser.doc.as_ref().unwrap();
        let pform = rcb_html::query::element_by_id(pd, pd.root(), "q").unwrap();
        assert!(rcb_html::query::form_fields(pd, pform)
            .contains(&("q".to_string(), "rcb framework".to_string())));
    }

    #[test]
    fn polls_without_changes_are_cheap_empty_replies() {
        let mut world = lan_world();
        let idx = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://google.com/").unwrap();
        world.poll_participant(idx).unwrap();
        let records = world.run_poll_rounds(5).unwrap();
        assert!(records.is_empty(), "no content changes, no syncs");
        assert_eq!(world.host.agent.stats.polls_empty.get(), 5);
    }

    #[test]
    fn agent_memory_stays_bounded_across_a_long_session() {
        // A long-lived session (1000+ DOM versions, each generating
        // content for a participant) must not grow the agent's
        // generated-content or timestamp maps: both are bounded to the
        // live generation plus one predecessor.
        use crate::agent::LIVE_GENERATIONS;
        let mut world = lan_world();
        let idx = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://google.com/").unwrap();
        world.poll_participant(idx).unwrap().0.unwrap();
        for _ in 0..1_000 {
            world.host.browser.mutate_dom(|_| {}).unwrap();
            world.sleep(SimDuration::from_millis(3));
            world.poll_participant(idx).unwrap();
            assert!(world.host.agent.content_cache_len() <= LIVE_GENERATIONS);
            assert!(world.host.agent.timestamps_len() <= LIVE_GENERATIONS);
        }
        assert!(world.host.agent.stats.timestamp_evictions.get() >= 999);
        assert!(world.host.agent.stats.content_evictions.get() > 0);
        // The participant is still fully synchronized at the end.
        let hd = world.host.browser.doc.as_ref().unwrap();
        let pd = world.participants[idx].browser.doc.as_ref().unwrap();
        assert_eq!(
            hd.text_content(hd.body().unwrap()),
            pd.text_content(pd.body().unwrap())
        );
    }

    #[test]
    fn join_and_leave_lifecycle() {
        let mut world = lan_world();
        let a = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://live.com/").unwrap();
        world.poll_participant(a).unwrap();
        assert_eq!(world.host.agent.participants().len(), 1);
        world.remove_participant(a);
        assert!(world.host.agent.participants().is_empty());
        assert!(world.participants.is_empty());
    }
}
