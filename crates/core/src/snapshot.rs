//! Immutable content snapshots: the contention-free, zero-copy read path.
//!
//! The paper's scalability pitch (§5.1.2) is that one host browser serves a
//! whole co-browsing session; that only holds if the hot read path —
//! Ajax polls and `/cache/{key}` object requests, which every participant
//! issues once per second — does not serialize on host-side state. A
//! [`ContentSnapshot`] makes that path lock-free in the data-structure
//! sense: it is a frozen view of everything a read-only request needs,
//! published as an `Arc` behind an `RwLock<Arc<ContentSnapshot>>`:
//!
//! * the **document timestamp** for timestamp inspection (Fig. 2's
//!   "compare the participant's content timestamp");
//! * the generated **Fig.-4 XML** for the agent's configured cache mode
//!   ("the generated XML format response content is reusable for multiple
//!   participant browsers", §4.1.2), frozen as a **prefab wire image**: the
//!   complete poll response (status line + headers + body, pre-signed when
//!   response authentication is on) is serialized once at snapshot build
//!   time, and every participant's content poll is answered by cloning an
//!   `Arc` — zero bytes are heap-copied per request;
//! * the **object bytes** of every supplementary object the content (and
//!   its immediate predecessor) references, each likewise frozen into a
//!   prefab response whose body `Arc`-shares the host browser cache entry,
//!   resolved through a [`MappingView`] so `/cache/{key}` requests never
//!   touch the live mapping table or host browser cache.
//!
//! # Pipelined regeneration
//!
//! Building a snapshot is split in two so the write path's critical
//! section shrinks to the DOM clone:
//!
//! * [`ContentSnapshot::plan`] — runs **under the host mutex**: mints the
//!   document timestamp, clones the documentElement
//!   ([`prepare_generation`]), and freezes a view of the cache. Cheap and
//!   proportional to the DOM, never to the serialized content.
//! * [`SnapshotPlan::finish`] — runs **with no locks held**: URL
//!   rewriting, event rewriting, escaping, XML assembly, object
//!   resolution, and prefab serialization. The mapping table is the only
//!   shared state it touches (a leaf mutex, locked briefly).
//!
//! The caller publishes the finished snapshot with a single pointer swap
//! under the snapshot write lock, discarding it if a newer DOM version was
//! published in the meantime.
//!
//! **Memory bound:** a snapshot carries the objects of at most two
//! generations — its own plus the live keys of the snapshot it replaced —
//! so a participant mid-flight on the previous content version can still
//! fetch its objects while agent memory stays constant no matter how many
//! DOM versions a session produces (the same
//! [`LIVE_GENERATIONS`](crate::agent::LIVE_GENERATIONS) bound the agent
//! applies to its generated-content and timestamp caches).
//!
//! **Lock ordering** (documented here because this module sits at the
//! center of it): `host mutex → snapshot write lock`. The host mutex is
//! taken first (plan), content is generated with no lock held (finish),
//! and the write lock is taken last, only for the pointer swap.
//! Participant-shard locks and the mapping-table mutex are leaves: never
//! held while acquiring anything else.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rcb_browser::Browser;
use rcb_cache::{CacheKey, CacheView, MappingTable, MappingView};
use rcb_crypto::SessionKey;
use rcb_http::{Body, Response, Status};
use rcb_util::{Result, SimTime};

use crate::agent::{CacheMode, RcbAgent};
use crate::content::{finish_generation, prepare_generation, GeneratedContent, GenerationJob};

/// One supplementary object frozen into a snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotObject {
    /// The absolute origin URL the object was cached under.
    pub url: String,
    /// The response `Content-Type` to serve.
    pub content_type: String,
    /// Body bytes, shared with the host browser cache entry.
    pub data: Arc<[u8]>,
    /// Prefab wire image of the object response (body `Arc`-shared with
    /// `data`, pre-signed when response authentication is on): serving the
    /// object clones this, copying no bytes.
    response: Response,
}

impl SnapshotObject {
    /// The ready-to-send response (an `Arc` clone, zero bytes copied).
    pub fn response(&self) -> Response {
        self.response.clone()
    }
}

/// A frozen, shareable view of one content generation (see module docs).
#[derive(Debug)]
pub struct ContentSnapshot {
    /// The host DOM version this snapshot was generated from.
    pub dom_version: u64,
    /// The document timestamp embedded in the XML.
    pub doc_time: u64,
    /// UTF-8 bytes of the serialized Fig.-4 XML, shared with the poll
    /// response body.
    xml: Arc<[u8]>,
    /// Prefab wire image of the content-bearing poll response.
    poll_response: Response,
    /// Cache keys referenced by *this* generation's content.
    live_keys: Vec<CacheKey>,
    /// Servable objects: this generation's plus the predecessor's live
    /// set (two-generation bound).
    objects: HashMap<CacheKey, SnapshotObject>,
}

/// Everything a snapshot build needs after the host mutex is released:
/// either already-cached generated content, or a prepared generation job,
/// plus the frozen inputs for object resolution and prefab assembly.
pub struct SnapshotPlan {
    dom_version: u64,
    doc_time: u64,
    mode: CacheMode,
    work: PlanWork,
    cache: CacheView,
    mapping: Arc<Mutex<MappingTable>>,
    key: SessionKey,
    /// The session path prefix object URLs are minted under (see
    /// [`crate::agent::AgentConfig::path_prefix`]); stripped again when
    /// mapping generated URLs back to cache keys.
    path_prefix: String,
    sign: bool,
}

enum PlanWork {
    /// The agent had this `(version, mode)` generation cached.
    Cached(Arc<GeneratedContent>),
    /// Generation steps 2–5 still to run (outside any lock).
    Generate(Box<GenerationJob>),
}

impl ContentSnapshot {
    /// Phase 1, **under the host mutex**: mint the document timestamp,
    /// clone the documentElement, freeze the cache view and generation
    /// inputs. Everything expensive is deferred to
    /// [`SnapshotPlan::finish`].
    pub fn plan(agent: &mut RcbAgent, host: &Browser, now: SimTime) -> Result<SnapshotPlan> {
        let doc_time = agent.current_doc_time(host, now);
        let dom_version = host.dom_version();
        let mode = agent.config.cache_mode;
        let work = match agent.cached_content(dom_version, mode) {
            Some(content) => PlanWork::Cached(content),
            None => {
                let user_actions = agent.take_host_actions();
                PlanWork::Generate(Box::new(prepare_generation(
                    host,
                    mode,
                    doc_time,
                    user_actions,
                )?))
            }
        };
        Ok(SnapshotPlan {
            dom_version,
            doc_time,
            mode,
            work,
            cache: host.cache.view(),
            mapping: Arc::clone(agent.mapping()),
            key: agent.key().clone(),
            path_prefix: agent.config.path_prefix.clone(),
            sign: agent.config.authenticate_responses,
        })
    }

    /// Builds a snapshot of the host's current DOM version in one go
    /// (plan + finish + cache admission) — for sequential callers that
    /// already hold exclusive host access end to end. `prev` is the
    /// snapshot being replaced; its live generation's objects are carried
    /// forward so participants still applying the previous content can
    /// fetch them.
    pub fn build(
        agent: &mut RcbAgent,
        host: &Browser,
        now: SimTime,
        prev: Option<&ContentSnapshot>,
    ) -> Result<Arc<ContentSnapshot>> {
        let mode = agent.config.cache_mode;
        let plan = Self::plan(agent, host, now)?;
        let (snap, generated) = plan.finish(prev)?;
        if let Some(content) = generated {
            agent.admit_generated(snap.dom_version, mode, content);
        }
        Ok(snap)
    }

    /// The serialized Fig.-4 XML.
    pub fn xml(&self) -> &str {
        std::str::from_utf8(&self.xml).expect("generated XML is UTF-8")
    }

    /// The ready-to-send content poll response: a clone of the prefab
    /// wire image — headers and body were serialized once at build time,
    /// so this copies pointers, not bytes.
    pub fn poll_response(&self) -> Response {
        self.poll_response.clone()
    }

    /// Looks up a servable object by cache key.
    pub fn object(&self, key: CacheKey) -> Option<&SnapshotObject> {
        self.objects.get(&key)
    }

    /// Number of objects this snapshot can serve (current + predecessor).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of objects referenced by the live generation alone.
    pub fn live_object_count(&self) -> usize {
        self.live_keys.len()
    }
}

impl SnapshotPlan {
    /// Phase 2, **no locks held**: run the deferred generation (if any),
    /// resolve object bytes from the frozen cache view, and serialize the
    /// prefab wire images. Returns the snapshot plus the freshly generated
    /// content (when generation ran) so the caller can admit it into the
    /// agent's generated-content cache under the host mutex.
    pub fn finish(
        self,
        prev: Option<&ContentSnapshot>,
    ) -> Result<(Arc<ContentSnapshot>, Option<Arc<GeneratedContent>>)> {
        let (content, generated) = match self.work {
            PlanWork::Cached(c) => (c, None),
            PlanWork::Generate(job) => {
                let c = Arc::new(finish_generation(
                    *job,
                    &self.cache,
                    &self.mapping,
                    &self.key,
                    &self.path_prefix,
                )?);
                (Arc::clone(&c), Some(c))
            }
        };

        // Live keys: the agent-relative object URLs of this generation,
        // mapped back to cache keys (`/cache/{key}?k={token}`). Non-cache
        // mode leaves absolute URLs, which parse to no key — the snapshot
        // then carries no objects, as participants fetch from origins.
        let live_keys: Vec<CacheKey> = content
            .object_urls
            .iter()
            .filter_map(|u| {
                let path = u.split('?').next().unwrap_or(u);
                let local = path.strip_prefix(self.path_prefix.as_str()).unwrap_or(path);
                MappingTable::parse_agent_path(local)
            })
            .collect();
        let view: MappingView = self
            .mapping
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .view_for(live_keys.iter().copied());

        let mut objects = HashMap::with_capacity(live_keys.len());
        for &key in &live_keys {
            let Some(url) = view.url_for(key) else {
                continue;
            };
            if let Some(entry) = self.cache.get(url) {
                objects.insert(
                    key,
                    SnapshotObject {
                        url: entry.url.clone(),
                        content_type: entry.content_type.clone(),
                        data: Arc::clone(&entry.data),
                        response: prefab_response(
                            Status::OK,
                            &entry.content_type,
                            Arc::clone(&entry.data),
                            self.sign.then_some(&self.key),
                        ),
                    },
                );
            }
        }
        // Two-generation bound: carry forward only the predecessor's live
        // set (with its already-frozen prefabs); anything older ages out
        // with the snapshot it belonged to.
        if let Some(prev) = prev {
            for &key in &prev.live_keys {
                if let Some(obj) = prev.objects.get(&key) {
                    objects.entry(key).or_insert_with(|| obj.clone());
                }
            }
        }

        // Freeze the poll wire image: every participant's content poll for
        // this generation is byte-identical, so serialize it exactly once.
        let xml: Arc<[u8]> = Arc::from(content.xml.as_bytes());
        let poll_response = prefab_response(
            Status::OK,
            "application/xml; charset=utf-8",
            Arc::clone(&xml),
            self.sign.then_some(&self.key),
        );

        Ok((
            Arc::new(ContentSnapshot {
                dom_version: self.dom_version,
                doc_time: self.doc_time,
                xml,
                poll_response,
                live_keys,
                objects,
            }),
            generated,
        ))
    }

    /// The DOM version this plan will publish.
    pub fn dom_version(&self) -> u64 {
        self.dom_version
    }

    /// The cache mode the plan's content was (or will be) generated for.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }
}

/// Builds a frozen, ready-to-send response: shared body, optional
/// response MAC, serialized once into a prefab wire image.
pub(crate) fn prefab_response(
    status: Status,
    content_type: &str,
    body: Arc<[u8]>,
    sign_with: Option<&SessionKey>,
) -> Response {
    let mut resp = Response::with_body(status, content_type, Body::Shared(body));
    if let Some(key) = sign_with {
        crate::auth::sign_response(key, &mut resp);
    }
    resp.into_prefab()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentConfig;
    use rcb_browser::BrowserKind;
    use rcb_origin::OriginRegistry;
    use rcb_sim::link::Pipe;
    use rcb_sim::profiles::NetProfile;
    use rcb_url::Url;
    use rcb_util::DetRng;

    fn agent(mode: CacheMode) -> RcbAgent {
        RcbAgent::new(
            SessionKey::generate_deterministic(&mut DetRng::new(21)),
            AgentConfig::builder().cache_mode(mode).build(),
        )
    }

    fn loaded_host(site: &str) -> Browser {
        let mut origins = OriginRegistry::with_alexa20();
        let profile = NetProfile::lan();
        let mut pipe = Pipe::new(profile.host_origin);
        let mut b = Browser::new(BrowserKind::Firefox);
        b.navigate(
            &Url::parse(&format!("http://{site}/")).unwrap(),
            &mut origins,
            &mut pipe,
            &profile,
            SimTime::ZERO,
        )
        .unwrap();
        b
    }

    #[test]
    fn snapshot_serves_cached_objects_without_host_access() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("apple.com");
        let snap = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), None).unwrap();
        assert!(
            snap.object_count() > 0,
            "apple.com has supplementary objects"
        );
        assert_eq!(snap.object_count(), snap.live_object_count());
        for key in snap.live_keys.clone() {
            let obj = snap.object(key).expect("live object servable");
            // Bytes are shared with (and equal to) the host cache entry.
            let cached = host.cache.lookup(&obj.url).unwrap();
            assert!(Arc::ptr_eq(&obj.data, &cached.data));
            // The prefab response serves those same bytes, pre-serialized.
            let resp = obj.response();
            assert!(resp.is_prefab());
            assert_eq!(resp.body.as_slice(), obj.data.as_ref());
            assert_eq!(resp.body.copied_len(), 0, "object body is shared");
        }
        // XML parses as a Fig.-4 document carrying the snapshot timestamp.
        let nc = rcb_xml::parse_new_content(snap.xml()).unwrap().unwrap();
        assert_eq!(nc.doc_time, snap.doc_time);
    }

    #[test]
    fn poll_response_is_a_frozen_wire_image_of_the_xml() {
        let mut a = agent(CacheMode::Cache);
        let host = loaded_host("google.com");
        let snap = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), None).unwrap();
        let resp = snap.poll_response();
        assert!(resp.is_prefab());
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.body.as_slice(), snap.xml().as_bytes());
        assert_eq!(resp.body.copied_len(), 0, "poll body is shared");
        // Two serves share one image (pointer equality, not re-serialization).
        let again = snap.poll_response();
        assert!(Arc::ptr_eq(
            resp.prefab_bytes().unwrap(),
            again.prefab_bytes().unwrap()
        ));
        // The image parses back to exactly the response it froze.
        let parsed = rcb_http::parse_response(resp.prefab_bytes().unwrap()).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn signed_snapshots_carry_valid_response_macs() {
        let key = SessionKey::generate_deterministic(&mut DetRng::new(22));
        let mut a = RcbAgent::new(
            key.clone(),
            AgentConfig::builder().authenticate_responses(true).build(),
        );
        let host = loaded_host("apple.com");
        let snap = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), None).unwrap();
        assert!(crate::auth::verify_response(&key, &snap.poll_response()));
        for key_id in snap.live_keys.clone() {
            let obj = snap.object(key_id).unwrap();
            assert!(crate::auth::verify_response(&key, &obj.response()));
        }
    }

    #[test]
    fn non_cache_snapshot_carries_no_objects() {
        let mut a = agent(CacheMode::NonCache);
        let host = loaded_host("apple.com");
        let snap = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), None).unwrap();
        assert_eq!(snap.object_count(), 0);
    }

    #[test]
    fn rebuilds_carry_one_predecessor_and_stay_bounded() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("apple.com");
        let mut snap = ContentSnapshot::build(&mut a, &host, SimTime::ZERO, None).unwrap();
        let baseline = snap.live_object_count();
        assert!(baseline > 0);
        for i in 1..=1_000u64 {
            host.mutate_dom(|_| {}).unwrap();
            snap = ContentSnapshot::build(&mut a, &host, SimTime::from_millis(i), Some(&snap))
                .unwrap();
            // The object set never exceeds two generations' worth — here
            // the page is unchanged, so the carried set equals the live
            // set and the total stays flat.
            assert!(
                snap.object_count() <= 2 * baseline,
                "object set unbounded at rebuild {i}"
            );
            assert!(snap.doc_time > 0);
        }
        // The agent's own caches honoured the same bound throughout.
        assert!(a.content_cache_len() <= crate::agent::LIVE_GENERATIONS);
        assert!(a.timestamps_len() <= crate::agent::LIVE_GENERATIONS);
        assert!(a.stats.content_evictions.get() > 0);
    }

    #[test]
    fn snapshot_tracks_dom_version() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("google.com");
        let s1 = ContentSnapshot::build(&mut a, &host, SimTime::ZERO, None).unwrap();
        assert_eq!(s1.dom_version, host.dom_version());
        host.mutate_dom(|_| {}).unwrap();
        let s2 = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), Some(&s1)).unwrap();
        assert_eq!(s2.dom_version, host.dom_version());
        assert!(s2.doc_time > s1.doc_time);
    }

    #[test]
    fn plan_then_finish_matches_build_and_returns_content_to_admit() {
        let mut a = agent(CacheMode::Cache);
        let host = loaded_host("apple.com");
        // Pipelined: plan under "the host mutex", finish afterwards.
        let plan = ContentSnapshot::plan(&mut a, &host, SimTime::from_secs(1)).unwrap();
        assert_eq!(plan.dom_version(), host.dom_version());
        let (snap, generated) = plan.finish(None).unwrap();
        let content = generated.expect("first build generates");
        assert_eq!(a.stats.generations.get(), 0, "not yet admitted");
        a.admit_generated(snap.dom_version, CacheMode::Cache, content);
        assert_eq!(a.stats.generations.get(), 1);
        assert_eq!(a.content_cache_len(), 1);
        // A second plan for the same version reuses the admitted content.
        let plan2 = ContentSnapshot::plan(&mut a, &host, SimTime::from_secs(2)).unwrap();
        let (snap2, generated2) = plan2.finish(Some(&snap)).unwrap();
        assert!(generated2.is_none(), "cache hit: nothing generated");
        assert_eq!(snap2.doc_time, snap.doc_time);
        assert_eq!(snap2.xml(), snap.xml());
    }
}
