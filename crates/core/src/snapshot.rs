//! Immutable content snapshots: the contention-free, zero-copy read path.
//!
//! The paper's scalability pitch (§5.1.2) is that one host browser serves a
//! whole co-browsing session; that only holds if the hot read path —
//! Ajax polls and `/cache/{key}` object requests, which every participant
//! issues once per second — does not serialize on host-side state. A
//! [`ContentSnapshot`] makes that path lock-free in the data-structure
//! sense: it is a frozen view of everything a read-only request needs,
//! published as an `Arc` behind an `RwLock<Arc<ContentSnapshot>>`:
//!
//! * the **document timestamp** for timestamp inspection (Fig. 2's
//!   "compare the participant's content timestamp");
//! * the generated **Fig.-4 XML** for the agent's configured cache mode
//!   ("the generated XML format response content is reusable for multiple
//!   participant browsers", §4.1.2), frozen as a **prefab wire image**: the
//!   complete poll response (status line + headers + body, pre-signed when
//!   response authentication is on) is serialized once at snapshot build
//!   time, and every participant's content poll is answered by cloning an
//!   `Arc` — zero bytes are heap-copied per request;
//! * the **object bytes** of every supplementary object the content (and
//!   its immediate predecessor) references, each likewise frozen into a
//!   prefab response whose body `Arc`-shares the host browser cache entry,
//!   resolved through a [`MappingView`] so `/cache/{key}` requests never
//!   touch the live mapping table or host browser cache.
//!
//! # Pipelined regeneration
//!
//! Building a snapshot is split in two so the write path's critical
//! section shrinks to the DOM clone:
//!
//! * [`ContentSnapshot::plan`] — runs **under the host mutex**: mints the
//!   document timestamp, clones the documentElement
//!   ([`prepare_generation`]), and freezes a view of the cache. Cheap and
//!   proportional to the DOM, never to the serialized content.
//! * [`SnapshotPlan::finish`] — runs **with no locks held**: URL
//!   rewriting, event rewriting, escaping, XML assembly, object
//!   resolution, and prefab serialization. The mapping table is the only
//!   shared state it touches (a leaf mutex, locked briefly).
//!
//! The caller publishes the finished snapshot with a single pointer swap
//! under the snapshot write lock, discarding it if a newer DOM version was
//! published in the meantime.
//!
//! **Memory bound:** a snapshot carries the objects of at most two
//! generations — its own plus the live keys of the snapshot it replaced —
//! so a participant mid-flight on the previous content version can still
//! fetch its objects while agent memory stays constant no matter how many
//! DOM versions a session produces (the same
//! [`LIVE_GENERATIONS`](crate::agent::LIVE_GENERATIONS) bound the agent
//! applies to its generated-content and timestamp caches).
//!
//! **Lock ordering** (documented here because this module sits at the
//! center of it): `host mutex → snapshot write lock`. The host mutex is
//! taken first (plan), content is generated with no lock held (finish),
//! and the write lock is taken last, only for the pointer swap.
//! Participant-shard locks and the mapping-table mutex are leaves: never
//! held while acquiring anything else.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rcb_browser::Browser;
use rcb_cache::{CacheKey, CacheView, MappingTable, MappingView};
use rcb_crypto::SessionKey;
use rcb_http::{Body, Response, Status};
use rcb_util::{Result, SimTime};

use rcb_xml::{DeltaContent, ElementPayload, TopLevel};

use crate::agent::{CacheMode, RcbAgent};
use crate::content::{finish_generation, prepare_generation, GeneratedContent, GenerationJob};

/// Number of predecessor generations the delta ring covers: a woken
/// long-poll whose acked `dom_version` is at most this many generations
/// behind receives a delta instead of the full Fig.-4 XML. Small on
/// purpose — each slot freezes one prefab wire image, so the ring adds a
/// bounded constant to per-snapshot memory, and a participant further
/// behind than this has effectively missed the session's cadence anyway
/// (the negotiated fallback sends it the full document).
pub const DELTA_RING: usize = 3;

pub use rcb_http::{BATCH_BOUNDARY, BATCH_CONTENT_TYPE, BATCH_MEDIA_TYPE};

/// One servable delta in the ring: everything needed to answer a woken
/// poll whose acked generation is `from_dom_version` without touching the
/// full document.
#[derive(Debug)]
struct DeltaSlot {
    /// The acked generation this delta upgrades from.
    from_dom_version: u64,
    /// That generation's document timestamp (the client-side guard: a
    /// participant applies a delta only when its own `doc_time` matches).
    from_doc_time: u64,
    /// Whether the head component changed across the span. Conservative:
    /// accumulated by OR while the slot is carried forward, so a
    /// changed-then-reverted component re-ships (idempotent), never skips.
    head_changed: bool,
    /// Whether the top-level (body/frameset) component changed.
    top_changed: bool,
    /// Live cache keys of the base generation — objects the participant
    /// already holds, excluded from the batched reply.
    from_live_keys: Vec<CacheKey>,
    /// Prefab wire image: plain delta XML, or a
    /// [`BATCH_CONTENT_TYPE`] multipart when new objects are inlined.
    response: Response,
}

/// One supplementary object frozen into a snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotObject {
    /// The absolute origin URL the object was cached under.
    pub url: String,
    /// The response `Content-Type` to serve.
    pub content_type: String,
    /// Body bytes, shared with the host browser cache entry.
    pub data: Arc<[u8]>,
    /// Prefab wire image of the object response (body `Arc`-shared with
    /// `data`, pre-signed when response authentication is on): serving the
    /// object clones this, copying no bytes.
    response: Response,
}

impl SnapshotObject {
    /// The ready-to-send response (an `Arc` clone, zero bytes copied).
    pub fn response(&self) -> Response {
        self.response.clone()
    }
}

/// A frozen, shareable view of one content generation (see module docs).
#[derive(Debug)]
pub struct ContentSnapshot {
    /// The host DOM version this snapshot was generated from.
    pub dom_version: u64,
    /// The document timestamp embedded in the XML.
    pub doc_time: u64,
    /// UTF-8 bytes of the serialized Fig.-4 XML, shared with the poll
    /// response body.
    xml: Arc<[u8]>,
    /// Prefab wire image of the content-bearing poll response.
    poll_response: Response,
    /// Cache keys referenced by *this* generation's content.
    live_keys: Vec<CacheKey>,
    /// Servable objects: this generation's plus the predecessor's live
    /// set (two-generation bound).
    objects: HashMap<CacheKey, SnapshotObject>,
    /// FNV-1a hashes of the encoded head / top payloads, used to decide
    /// which components the *next* generation's deltas must carry.
    /// `None` when the generated XML did not parse back (no ring is built
    /// from such a snapshot — full XML only, never a wrong no-op delta).
    payload_hashes: Option<(u64, u64)>,
    /// Deltas from up to [`DELTA_RING`] predecessor generations to this
    /// one, newest base first.
    delta_ring: Vec<DeltaSlot>,
}

/// Everything a snapshot build needs after the host mutex is released:
/// either already-cached generated content, or a prepared generation job,
/// plus the frozen inputs for object resolution and prefab assembly.
pub struct SnapshotPlan {
    dom_version: u64,
    doc_time: u64,
    mode: CacheMode,
    work: PlanWork,
    cache: CacheView,
    mapping: Arc<Mutex<MappingTable>>,
    key: SessionKey,
    /// The session path prefix object URLs are minted under (see
    /// [`crate::agent::AgentConfig::path_prefix`]); stripped again when
    /// mapping generated URLs back to cache keys.
    path_prefix: String,
    sign: bool,
}

enum PlanWork {
    /// The agent had this `(version, mode)` generation cached.
    Cached(Arc<GeneratedContent>),
    /// Generation steps 2–5 still to run (outside any lock).
    Generate(Box<GenerationJob>),
}

impl ContentSnapshot {
    /// Phase 1, **under the host mutex**: mint the document timestamp,
    /// clone the documentElement, freeze the cache view and generation
    /// inputs. Everything expensive is deferred to
    /// [`SnapshotPlan::finish`].
    pub fn plan(agent: &mut RcbAgent, host: &Browser, now: SimTime) -> Result<SnapshotPlan> {
        let doc_time = agent.current_doc_time(host, now);
        let dom_version = host.dom_version();
        let mode = agent.config.cache_mode;
        let work = match agent.cached_content(dom_version, mode) {
            Some(content) => PlanWork::Cached(content),
            None => {
                let user_actions = agent.take_host_actions();
                PlanWork::Generate(Box::new(prepare_generation(
                    host,
                    mode,
                    doc_time,
                    user_actions,
                )?))
            }
        };
        Ok(SnapshotPlan {
            dom_version,
            doc_time,
            mode,
            work,
            cache: host.cache.view(),
            mapping: Arc::clone(agent.mapping()),
            key: agent.key().clone(),
            path_prefix: agent.config.path_prefix.clone(),
            sign: agent.config.authenticate_responses,
        })
    }

    /// Builds a snapshot of the host's current DOM version in one go
    /// (plan + finish + cache admission) — for sequential callers that
    /// already hold exclusive host access end to end. `prev` is the
    /// snapshot being replaced; its live generation's objects are carried
    /// forward so participants still applying the previous content can
    /// fetch them.
    pub fn build(
        agent: &mut RcbAgent,
        host: &Browser,
        now: SimTime,
        prev: Option<&ContentSnapshot>,
    ) -> Result<Arc<ContentSnapshot>> {
        let mode = agent.config.cache_mode;
        let plan = Self::plan(agent, host, now)?;
        let (snap, generated) = plan.finish(prev)?;
        if let Some(content) = generated {
            agent.admit_generated(snap.dom_version, mode, content);
        }
        Ok(snap)
    }

    /// The serialized Fig.-4 XML.
    pub fn xml(&self) -> &str {
        std::str::from_utf8(&self.xml).expect("generated XML is UTF-8")
    }

    /// The ready-to-send content poll response: a clone of the prefab
    /// wire image — headers and body were serialized once at build time,
    /// so this copies pointers, not bytes.
    pub fn poll_response(&self) -> Response {
        self.poll_response.clone()
    }

    /// Looks up a servable object by cache key.
    pub fn object(&self, key: CacheKey) -> Option<&SnapshotObject> {
        self.objects.get(&key)
    }

    /// Number of objects this snapshot can serve (current + predecessor).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of objects referenced by the live generation alone.
    pub fn live_object_count(&self) -> usize {
        self.live_keys.len()
    }

    /// The ready-to-send delta reply for a participant whose acked
    /// generation is `acked_dom_version`, when that base is still in the
    /// ring: a prefab clone (zero bytes copied), either plain delta XML or
    /// a [`BATCH_CONTENT_TYPE`] multipart inlining the objects the base
    /// generation did not reference. `None` on a ring miss — the caller
    /// falls back to [`ContentSnapshot::poll_response`].
    pub fn delta_response_for(&self, acked_dom_version: u64) -> Option<Response> {
        self.delta_ring
            .iter()
            .find(|s| s.from_dom_version == acked_dom_version)
            .map(|s| s.response.clone())
    }

    /// Number of delta slots currently in the ring (≤ [`DELTA_RING`]).
    pub fn delta_ring_len(&self) -> usize {
        self.delta_ring.len()
    }
}

/// FNV-1a over one byte slice, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Hash of the encoded head payloads, order-sensitive.
fn head_payload_hash(children: &[ElementPayload]) -> u64 {
    let mut h = FNV_OFFSET;
    for child in children {
        h = fnv1a(h, child.encode().as_bytes());
        h = fnv1a(h, b"\x1f");
    }
    h
}

/// Hash of the encoded top-level payload, variant-tagged.
fn top_payload_hash(top: &TopLevel) -> u64 {
    match top {
        TopLevel::Body(b) => fnv1a(fnv1a(FNV_OFFSET, b"B"), b.encode().as_bytes()),
        TopLevel::Frames { frameset, noframes } => {
            let mut h = fnv1a(fnv1a(FNV_OFFSET, b"F"), frameset.encode().as_bytes());
            if let Some(nf) = noframes {
                h = fnv1a(fnv1a(h, b"N"), nf.encode().as_bytes());
            }
            h
        }
    }
}

impl SnapshotPlan {
    /// Phase 2, **no locks held**: run the deferred generation (if any),
    /// resolve object bytes from the frozen cache view, and serialize the
    /// prefab wire images. Returns the snapshot plus the freshly generated
    /// content (when generation ran) so the caller can admit it into the
    /// agent's generated-content cache under the host mutex.
    pub fn finish(
        self,
        prev: Option<&ContentSnapshot>,
    ) -> Result<(Arc<ContentSnapshot>, Option<Arc<GeneratedContent>>)> {
        let (content, generated) = match self.work {
            PlanWork::Cached(c) => (c, None),
            PlanWork::Generate(job) => {
                let c = Arc::new(finish_generation(
                    *job,
                    &self.cache,
                    &self.mapping,
                    &self.key,
                    &self.path_prefix,
                )?);
                (Arc::clone(&c), Some(c))
            }
        };

        // Live keys: the agent-relative object URLs of this generation,
        // mapped back to cache keys (`/cache/{key}?k={token}`). Non-cache
        // mode leaves absolute URLs, which parse to no key — the snapshot
        // then carries no objects, as participants fetch from origins.
        // `minted_urls` keeps the exact agent URL (token included) each key
        // was minted under — the URL participants cache objects by, stamped
        // on inlined batch parts so the receiver stores them addressably.
        let mut minted_urls: HashMap<CacheKey, &str> = HashMap::new();
        let live_keys: Vec<CacheKey> = content
            .object_urls
            .iter()
            .filter_map(|u| {
                let path = u.split('?').next().unwrap_or(u);
                let local = path.strip_prefix(self.path_prefix.as_str()).unwrap_or(path);
                let key = MappingTable::parse_agent_path(local)?;
                minted_urls.insert(key, u.as_str());
                Some(key)
            })
            .collect();
        let view: MappingView = self
            .mapping
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .view_for(live_keys.iter().copied());

        let mut objects = HashMap::with_capacity(live_keys.len());
        for &key in &live_keys {
            let Some(url) = view.url_for(key) else {
                continue;
            };
            if let Some(entry) = self.cache.get(url) {
                objects.insert(
                    key,
                    SnapshotObject {
                        url: entry.url.clone(),
                        content_type: entry.content_type.clone(),
                        data: Arc::clone(&entry.data),
                        response: prefab_response(
                            Status::OK,
                            &entry.content_type,
                            Arc::clone(&entry.data),
                            self.sign.then_some(&self.key),
                        ),
                    },
                );
            }
        }
        // Two-generation bound: carry forward only the predecessor's live
        // set (with its already-frozen prefabs); anything older ages out
        // with the snapshot it belonged to.
        if let Some(prev) = prev {
            for &key in &prev.live_keys {
                if let Some(obj) = prev.objects.get(&key) {
                    objects.entry(key).or_insert_with(|| obj.clone());
                }
            }
        }

        // Freeze the poll wire image: every participant's content poll for
        // this generation is byte-identical, so serialize it exactly once.
        let xml: Arc<[u8]> = Arc::from(content.xml.as_bytes());
        let poll_response = prefab_response(
            Status::OK,
            "application/xml; charset=utf-8",
            Arc::clone(&xml),
            self.sign.then_some(&self.key),
        );

        // Delta ring: parse this generation's payloads back (lock-free,
        // once per generation) and freeze one prefab delta per surviving
        // predecessor base. A failed parse disables the ring for this
        // snapshot rather than risking a wrong no-op delta.
        let parsed = rcb_xml::parse_new_content(&content.xml).ok().flatten();
        let payload_hashes = parsed.as_ref().map(|nc| {
            (
                head_payload_hash(&nc.head_children),
                top_payload_hash(&nc.top),
            )
        });
        let mut delta_ring = Vec::new();
        if let (Some(nc), Some((cur_head, cur_top)), Some(prev)) = (&parsed, payload_hashes, prev) {
            if let Some((prev_head, prev_top)) = prev.payload_hashes {
                let step_head = prev_head != cur_head;
                let step_top = prev_top != cur_top;
                // Candidate bases: the predecessor itself, then every base
                // its ring still covered, with changed flags OR-accumulated
                // across the new step. Strictly older than this generation.
                let mut bases: Vec<(u64, u64, bool, bool, &[CacheKey])> = Vec::new();
                if prev.dom_version < self.dom_version {
                    bases.push((
                        prev.dom_version,
                        prev.doc_time,
                        step_head,
                        step_top,
                        &prev.live_keys,
                    ));
                }
                for slot in &prev.delta_ring {
                    if slot.from_dom_version < self.dom_version {
                        bases.push((
                            slot.from_dom_version,
                            slot.from_doc_time,
                            slot.head_changed || step_head,
                            slot.top_changed || step_top,
                            &slot.from_live_keys,
                        ));
                    }
                }
                bases.sort_by_key(|b| std::cmp::Reverse(b.0));
                bases.dedup_by_key(|b| b.0);
                bases.truncate(DELTA_RING);
                for (from_version, from_time, head_changed, top_changed, from_keys) in bases {
                    let dc = DeltaContent {
                        doc_time: self.doc_time,
                        from_doc_time: from_time,
                        head_children: head_changed.then(|| nc.head_children.clone()),
                        top: top_changed.then(|| nc.top.clone()),
                        user_actions: nc.user_actions.clone(),
                    };
                    let delta_xml = rcb_xml::write_delta_content(&dc);
                    // Inline the objects this generation references that the
                    // base generation did not: the receiver gets them in one
                    // response instead of N `/cache/{key}` round trips.
                    let new_keys: Vec<CacheKey> = live_keys
                        .iter()
                        .copied()
                        .filter(|k| !from_keys.contains(k))
                        .filter(|k| objects.contains_key(k) && minted_urls.contains_key(k))
                        .collect();
                    let response = if new_keys.is_empty() {
                        prefab_response(
                            Status::OK,
                            "application/xml; charset=utf-8",
                            Arc::from(delta_xml.as_bytes()),
                            self.sign.then_some(&self.key),
                        )
                    } else {
                        let body = assemble_batch(&delta_xml, &new_keys, &objects, &minted_urls);
                        prefab_response(
                            Status::OK,
                            BATCH_CONTENT_TYPE,
                            Arc::from(body),
                            self.sign.then_some(&self.key),
                        )
                    };
                    delta_ring.push(DeltaSlot {
                        from_dom_version: from_version,
                        from_doc_time: from_time,
                        head_changed,
                        top_changed,
                        from_live_keys: from_keys.to_vec(),
                        response,
                    });
                }
            }
        }

        Ok((
            Arc::new(ContentSnapshot {
                dom_version: self.dom_version,
                doc_time: self.doc_time,
                xml,
                poll_response,
                live_keys,
                objects,
                payload_hashes,
                delta_ring,
            }),
            generated,
        ))
    }

    /// The DOM version this plan will publish.
    pub fn dom_version(&self) -> u64 {
        self.dom_version
    }

    /// The cache mode the plan's content was (or will be) generated for.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }
}

/// Serializes one multipart batch body: part 1 is the delta XML, every
/// further part one inlined object stamped (`X-RCB-Url`) with the exact
/// agent URL it is cached under on the participant side. Parts are framed
/// by per-part `Content-Length`, so binary object bytes never collide
/// with the fixed boundary.
fn assemble_batch(
    delta_xml: &str,
    new_keys: &[CacheKey],
    objects: &HashMap<CacheKey, SnapshotObject>,
    minted_urls: &HashMap<CacheKey, &str>,
) -> Vec<u8> {
    use std::io::Write as _;
    let extra: usize = new_keys
        .iter()
        .filter_map(|k| objects.get(k))
        .map(|o| o.data.len() + 160)
        .sum();
    let mut body = Vec::with_capacity(delta_xml.len() + extra + 160);
    let _ = write!(
        body,
        "--{BATCH_BOUNDARY}\r\nContent-Type: application/xml; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
        delta_xml.len()
    );
    body.extend_from_slice(delta_xml.as_bytes());
    body.extend_from_slice(b"\r\n");
    for key in new_keys {
        let (Some(obj), Some(url)) = (objects.get(key), minted_urls.get(key)) else {
            continue;
        };
        let _ = write!(
            body,
            "--{BATCH_BOUNDARY}\r\nContent-Type: {}\r\nContent-Length: {}\r\nX-RCB-Url: {}\r\n\r\n",
            obj.content_type,
            obj.data.len(),
            url
        );
        body.extend_from_slice(&obj.data);
        body.extend_from_slice(b"\r\n");
    }
    let _ = write!(body, "--{BATCH_BOUNDARY}--\r\n");
    body
}

/// Builds a frozen, ready-to-send response: shared body, optional
/// response MAC, serialized once into a prefab wire image.
pub(crate) fn prefab_response(
    status: Status,
    content_type: &str,
    body: Arc<[u8]>,
    sign_with: Option<&SessionKey>,
) -> Response {
    let mut resp = Response::with_body(status, content_type, Body::Shared(body));
    if let Some(key) = sign_with {
        crate::auth::sign_response(key, &mut resp);
    }
    resp.into_prefab()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentConfig;
    use rcb_browser::BrowserKind;
    use rcb_origin::OriginRegistry;
    use rcb_sim::link::Pipe;
    use rcb_sim::profiles::NetProfile;
    use rcb_url::Url;
    use rcb_util::DetRng;

    fn agent(mode: CacheMode) -> RcbAgent {
        RcbAgent::new(
            SessionKey::generate_deterministic(&mut DetRng::new(21)),
            AgentConfig::builder().cache_mode(mode).build(),
        )
    }

    fn loaded_host(site: &str) -> Browser {
        let mut origins = OriginRegistry::with_alexa20();
        let profile = NetProfile::lan();
        let mut pipe = Pipe::new(profile.host_origin);
        let mut b = Browser::new(BrowserKind::Firefox);
        b.navigate(
            &Url::parse(&format!("http://{site}/")).unwrap(),
            &mut origins,
            &mut pipe,
            &profile,
            SimTime::ZERO,
        )
        .unwrap();
        b
    }

    #[test]
    fn snapshot_serves_cached_objects_without_host_access() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("apple.com");
        let snap = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), None).unwrap();
        assert!(
            snap.object_count() > 0,
            "apple.com has supplementary objects"
        );
        assert_eq!(snap.object_count(), snap.live_object_count());
        for key in snap.live_keys.clone() {
            let obj = snap.object(key).expect("live object servable");
            // Bytes are shared with (and equal to) the host cache entry.
            let cached = host.cache.lookup(&obj.url).unwrap();
            assert!(Arc::ptr_eq(&obj.data, &cached.data));
            // The prefab response serves those same bytes, pre-serialized.
            let resp = obj.response();
            assert!(resp.is_prefab());
            assert_eq!(resp.body.as_slice(), obj.data.as_ref());
            assert_eq!(resp.body.copied_len(), 0, "object body is shared");
        }
        // XML parses as a Fig.-4 document carrying the snapshot timestamp.
        let nc = rcb_xml::parse_new_content(snap.xml()).unwrap().unwrap();
        assert_eq!(nc.doc_time, snap.doc_time);
    }

    #[test]
    fn poll_response_is_a_frozen_wire_image_of_the_xml() {
        let mut a = agent(CacheMode::Cache);
        let host = loaded_host("google.com");
        let snap = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), None).unwrap();
        let resp = snap.poll_response();
        assert!(resp.is_prefab());
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.body.as_slice(), snap.xml().as_bytes());
        assert_eq!(resp.body.copied_len(), 0, "poll body is shared");
        // Two serves share one image (pointer equality, not re-serialization).
        let again = snap.poll_response();
        assert!(Arc::ptr_eq(
            resp.prefab_bytes().unwrap(),
            again.prefab_bytes().unwrap()
        ));
        // The image parses back to exactly the response it froze.
        let parsed = rcb_http::parse_response(resp.prefab_bytes().unwrap()).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn signed_snapshots_carry_valid_response_macs() {
        let key = SessionKey::generate_deterministic(&mut DetRng::new(22));
        let mut a = RcbAgent::new(
            key.clone(),
            AgentConfig::builder().authenticate_responses(true).build(),
        );
        let host = loaded_host("apple.com");
        let snap = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), None).unwrap();
        assert!(crate::auth::verify_response(&key, &snap.poll_response()));
        for key_id in snap.live_keys.clone() {
            let obj = snap.object(key_id).unwrap();
            assert!(crate::auth::verify_response(&key, &obj.response()));
        }
    }

    #[test]
    fn non_cache_snapshot_carries_no_objects() {
        let mut a = agent(CacheMode::NonCache);
        let host = loaded_host("apple.com");
        let snap = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), None).unwrap();
        assert_eq!(snap.object_count(), 0);
    }

    #[test]
    fn rebuilds_carry_one_predecessor_and_stay_bounded() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("apple.com");
        let mut snap = ContentSnapshot::build(&mut a, &host, SimTime::ZERO, None).unwrap();
        let baseline = snap.live_object_count();
        assert!(baseline > 0);
        for i in 1..=1_000u64 {
            host.mutate_dom(|_| {}).unwrap();
            snap = ContentSnapshot::build(&mut a, &host, SimTime::from_millis(i), Some(&snap))
                .unwrap();
            // The object set never exceeds two generations' worth — here
            // the page is unchanged, so the carried set equals the live
            // set and the total stays flat.
            assert!(
                snap.object_count() <= 2 * baseline,
                "object set unbounded at rebuild {i}"
            );
            assert!(snap.doc_time > 0);
        }
        // The agent's own caches honoured the same bound throughout.
        assert!(a.content_cache_len() <= crate::agent::LIVE_GENERATIONS);
        assert!(a.timestamps_len() <= crate::agent::LIVE_GENERATIONS);
        assert!(a.stats.content_evictions.get() > 0);
    }

    fn append_div(host: &mut Browser, text: &str) {
        host.mutate_dom(|doc| {
            let body = doc.body().expect("page has a body");
            let div = doc.create_element("div");
            let t = doc.create_text(text);
            doc.append_child(div, t).unwrap();
            doc.append_child(body, div).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn delta_ring_covers_recent_generations_and_evicts_old_bases() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("apple.com");
        let mut snaps = vec![ContentSnapshot::build(&mut a, &host, SimTime::ZERO, None).unwrap()];
        assert_eq!(snaps[0].delta_ring_len(), 0, "first generation has no base");
        for i in 1..=5u64 {
            append_div(&mut host, &format!("update {i}"));
            let prev = Arc::clone(snaps.last().unwrap());
            snaps.push(
                ContentSnapshot::build(&mut a, &host, SimTime::from_millis(i), Some(&prev))
                    .unwrap(),
            );
        }
        let last = snaps.last().unwrap();
        assert_eq!(last.delta_ring_len(), DELTA_RING);
        // The three newest bases are covered, older ones miss.
        for covered in &snaps[2..5] {
            assert!(
                last.delta_response_for(covered.dom_version).is_some(),
                "base v{} should be in the ring",
                covered.dom_version
            );
        }
        assert!(last.delta_response_for(snaps[0].dom_version).is_none());
        assert!(last.delta_response_for(snaps[1].dom_version).is_none());
        assert!(last.delta_response_for(last.dom_version).is_none());
    }

    #[test]
    fn delta_reply_is_prefab_parses_and_is_smaller_than_full_xml() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("apple.com");
        let s1 = ContentSnapshot::build(&mut a, &host, SimTime::ZERO, None).unwrap();
        append_div(&mut host, "body-only change");
        let s2 = ContentSnapshot::build(&mut a, &host, SimTime::from_millis(5), Some(&s1)).unwrap();
        let delta = s2.delta_response_for(s1.dom_version).expect("base in ring");
        assert!(delta.is_prefab());
        assert_eq!(delta.content_type().as_deref(), Some("application/xml"));
        let dc = rcb_xml::parse_delta_content(std::str::from_utf8(delta.body.as_slice()).unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(dc.doc_time, s2.doc_time);
        assert_eq!(dc.from_doc_time, s1.doc_time);
        assert!(dc.head_children.is_none(), "head unchanged: slot omitted");
        assert!(dc.top.is_some(), "body changed: slot shipped");
        // The whole point: strictly fewer wire bytes than the full reply.
        assert!(
            delta.wire_len() < s2.poll_response().wire_len(),
            "delta ({}) must undercut full XML ({})",
            delta.wire_len(),
            s2.poll_response().wire_len()
        );
    }

    #[test]
    fn delta_with_new_objects_is_a_multipart_batch() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("apple.com");
        let s1 = ContentSnapshot::build(&mut a, &host, SimTime::ZERO, None).unwrap();
        // Plant an extra cached object the current DOM does not reference,
        // then reference it: generation 2 gains a live key generation 1
        // never minted.
        let extra_url = "http://apple.com/extra-object.png";
        host.cache.store(
            extra_url,
            "image/png",
            b"PNG-ish bytes \x00\x01\x02".to_vec(),
            SimTime::ZERO,
        );
        host.mutate_dom(|doc| {
            let body = doc.body().expect("page has a body");
            let img =
                doc.create_element_with_attrs("img", vec![("src".into(), extra_url.to_string())]);
            doc.append_child(body, img).unwrap();
        })
        .unwrap();
        let s2 = ContentSnapshot::build(&mut a, &host, SimTime::from_millis(5), Some(&s1)).unwrap();
        let delta = s2.delta_response_for(s1.dom_version).expect("base in ring");
        assert_eq!(
            delta.content_type().as_deref(),
            Some("multipart/x-rcb-batch"),
            "batch media type with boundary {BATCH_BOUNDARY} stripped"
        );
        let body = delta.body.as_slice();
        let text = String::from_utf8_lossy(body);
        assert!(text.contains("X-RCB-Url: "), "inlined part carries its URL");
        assert!(text.contains("--rcb-batch--"), "closing boundary present");
        // The inlined bytes are the cached object's bytes.
        let needle: &[u8] = b"PNG-ish bytes \x00\x01\x02";
        assert!(
            body.windows(needle.len()).any(|w| w == needle),
            "object bytes inlined verbatim"
        );
        // And still one self-contained response, smaller than full XML +
        // a separate object round trip.
        let full = s2.poll_response().wire_len()
            + s2.objects
                .values()
                .map(|o| o.response().wire_len())
                .sum::<usize>();
        assert!(delta.wire_len() < full);
    }

    #[test]
    fn unchanged_content_yields_minimal_deltas() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("google.com");
        let s1 = ContentSnapshot::build(&mut a, &host, SimTime::ZERO, None).unwrap();
        // Version bump with byte-identical serialized content.
        host.mutate_dom(|_| {}).unwrap();
        let s2 = ContentSnapshot::build(&mut a, &host, SimTime::from_millis(9), Some(&s1)).unwrap();
        let delta = s2.delta_response_for(s1.dom_version).expect("base in ring");
        let dc = rcb_xml::parse_delta_content(std::str::from_utf8(delta.body.as_slice()).unwrap())
            .unwrap()
            .unwrap();
        assert!(dc.head_children.is_none() && dc.top.is_none());
    }

    #[test]
    fn signed_delta_replies_carry_valid_response_macs() {
        let key = SessionKey::generate_deterministic(&mut DetRng::new(23));
        let mut a = RcbAgent::new(
            key.clone(),
            AgentConfig::builder().authenticate_responses(true).build(),
        );
        let mut host = loaded_host("apple.com");
        let s1 = ContentSnapshot::build(&mut a, &host, SimTime::ZERO, None).unwrap();
        append_div(&mut host, "signed update");
        let s2 = ContentSnapshot::build(&mut a, &host, SimTime::from_millis(3), Some(&s1)).unwrap();
        let delta = s2.delta_response_for(s1.dom_version).expect("base in ring");
        assert!(crate::auth::verify_response(&key, &delta));
    }

    #[test]
    fn snapshot_tracks_dom_version() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("google.com");
        let s1 = ContentSnapshot::build(&mut a, &host, SimTime::ZERO, None).unwrap();
        assert_eq!(s1.dom_version, host.dom_version());
        host.mutate_dom(|_| {}).unwrap();
        let s2 = ContentSnapshot::build(&mut a, &host, SimTime::from_secs(1), Some(&s1)).unwrap();
        assert_eq!(s2.dom_version, host.dom_version());
        assert!(s2.doc_time > s1.doc_time);
    }

    #[test]
    fn plan_then_finish_matches_build_and_returns_content_to_admit() {
        let mut a = agent(CacheMode::Cache);
        let host = loaded_host("apple.com");
        // Pipelined: plan under "the host mutex", finish afterwards.
        let plan = ContentSnapshot::plan(&mut a, &host, SimTime::from_secs(1)).unwrap();
        assert_eq!(plan.dom_version(), host.dom_version());
        let (snap, generated) = plan.finish(None).unwrap();
        let content = generated.expect("first build generates");
        assert_eq!(a.stats.generations.get(), 0, "not yet admitted");
        a.admit_generated(snap.dom_version, CacheMode::Cache, content);
        assert_eq!(a.stats.generations.get(), 1);
        assert_eq!(a.content_cache_len(), 1);
        // A second plan for the same version reuses the admitted content.
        let plan2 = ContentSnapshot::plan(&mut a, &host, SimTime::from_secs(2)).unwrap();
        let (snap2, generated2) = plan2.finish(Some(&snap)).unwrap();
        assert!(generated2.is_none(), "cache hit: nothing generated");
        assert_eq!(snap2.doc_time, snap.doc_time);
        assert_eq!(snap2.xml(), snap.xml());
    }
}
