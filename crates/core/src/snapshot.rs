//! Immutable content snapshots: the contention-free read path.
//!
//! The paper's scalability pitch (§5.1.2) is that one host browser serves a
//! whole co-browsing session; that only holds if the hot read path —
//! Ajax polls and `/cache/{key}` object requests, which every participant
//! issues once per second — does not serialize on host-side state. A
//! [`ContentSnapshot`] makes that path lock-free in the data-structure
//! sense: it is a frozen view of everything a read-only request needs,
//! published as an `Arc` behind an `RwLock<Arc<ContentSnapshot>>`:
//!
//! * the **document timestamp** for timestamp inspection (Fig. 2's
//!   "compare the participant's content timestamp");
//! * the generated **Fig.-4 XML** for the agent's configured cache mode
//!   ("the generated XML format response content is reusable for multiple
//!   participant browsers", §4.1.2);
//! * the **object bytes** of every supplementary object the content (and
//!   its immediate predecessor) references, resolved through a
//!   [`MappingView`] so `/cache/{key}` requests never touch the live
//!   mapping table or host browser cache.
//!
//! A snapshot is regenerated only when the host DOM version changes, on
//! the write path (host mutations and participant-action merges), and the
//! swap holds the write lock for a single pointer store. Readers clone the
//! `Arc` under a read lock and serve from the frozen data; a poll can
//! therefore never block behind content generation.
//!
//! **Memory bound:** a snapshot carries the objects of at most two
//! generations — its own plus the live keys of the snapshot it replaced —
//! so a participant mid-flight on the previous content version can still
//! fetch its objects while agent memory stays constant no matter how many
//! DOM versions a session produces (the same
//! [`LIVE_GENERATIONS`](crate::agent::LIVE_GENERATIONS) bound the agent
//! applies to its generated-content and timestamp caches).
//!
//! **Lock ordering** (documented here because this module sits at the
//! center of it): `host mutex → snapshot write lock`. The host mutex is
//! taken first, content is generated outside any snapshot lock, and the
//! write lock is taken last, only for the pointer swap. Participant-shard
//! locks are leaves: never held while acquiring either of the other two.

use std::collections::HashMap;
use std::sync::Arc;

use rcb_browser::Browser;
use rcb_cache::{CacheKey, MappingTable, MappingView};
use rcb_util::{Result, SimTime};

use crate::agent::RcbAgent;

/// One supplementary object frozen into a snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotObject {
    /// The absolute origin URL the object was cached under.
    pub url: String,
    /// The response `Content-Type` to serve.
    pub content_type: String,
    /// Body bytes, shared with the host browser cache entry.
    pub data: Arc<Vec<u8>>,
}

/// A frozen, shareable view of one content generation (see module docs).
#[derive(Debug)]
pub struct ContentSnapshot {
    /// The host DOM version this snapshot was generated from.
    pub dom_version: u64,
    /// The document timestamp embedded in the XML.
    pub doc_time: u64,
    /// The serialized Fig.-4 XML for the agent's configured cache mode.
    pub xml: String,
    /// Cache keys referenced by *this* generation's content.
    live_keys: Vec<CacheKey>,
    /// Servable objects: this generation's plus the predecessor's live
    /// set (two-generation bound).
    objects: HashMap<CacheKey, SnapshotObject>,
}

impl ContentSnapshot {
    /// Builds a snapshot of the host's current DOM version, reusing the
    /// agent's generated-content cache when the version was already
    /// generated. `prev` is the snapshot being replaced; its live
    /// generation's objects are carried forward so participants still
    /// applying the previous content can fetch them.
    ///
    /// Must be called with exclusive host access (the write path); the
    /// returned value is immutable and safe to publish to any number of
    /// concurrent readers.
    pub fn build(
        agent: &mut RcbAgent,
        host: &mut Browser,
        now: SimTime,
        prev: Option<&ContentSnapshot>,
    ) -> Result<Arc<ContentSnapshot>> {
        let doc_time = agent.current_doc_time(host, now);
        let mode = agent.config.cache_mode;
        let content = agent.content_for(host, doc_time, mode)?;

        // Live keys: the agent-relative object URLs of this generation,
        // mapped back to cache keys (`/cache/{key}?k={token}`). Non-cache
        // mode leaves absolute URLs, which parse to no key — the snapshot
        // then carries no objects, as participants fetch from origins.
        let live_keys: Vec<CacheKey> = content
            .object_urls
            .iter()
            .filter_map(|u| {
                let path = u.split('?').next().unwrap_or(u);
                MappingTable::parse_agent_path(path)
            })
            .collect();
        let view: MappingView = agent.mapping().view_for(live_keys.iter().copied());

        let mut objects = HashMap::with_capacity(live_keys.len());
        for &key in &live_keys {
            let Some(url) = view.url_for(key) else { continue };
            if let Some(entry) = host.cache.lookup(url) {
                objects.insert(
                    key,
                    SnapshotObject {
                        url: entry.url,
                        content_type: entry.content_type,
                        data: entry.data,
                    },
                );
            }
        }
        // Two-generation bound: carry forward only the predecessor's live
        // set; anything older ages out with the snapshot it belonged to.
        if let Some(prev) = prev {
            for &key in &prev.live_keys {
                if let Some(obj) = prev.objects.get(&key) {
                    objects.entry(key).or_insert_with(|| obj.clone());
                }
            }
        }

        Ok(Arc::new(ContentSnapshot {
            dom_version: host.dom_version(),
            doc_time,
            xml: content.xml.clone(),
            live_keys,
            objects,
        }))
    }

    /// Looks up a servable object by cache key.
    pub fn object(&self, key: CacheKey) -> Option<&SnapshotObject> {
        self.objects.get(&key)
    }

    /// Number of objects this snapshot can serve (current + predecessor).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of objects referenced by the live generation alone.
    pub fn live_object_count(&self) -> usize {
        self.live_keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentConfig, CacheMode};
    use rcb_browser::BrowserKind;
    use rcb_crypto::SessionKey;
    use rcb_origin::OriginRegistry;
    use rcb_sim::link::Pipe;
    use rcb_sim::profiles::NetProfile;
    use rcb_url::Url;
    use rcb_util::DetRng;

    fn agent(mode: CacheMode) -> RcbAgent {
        RcbAgent::new(
            SessionKey::generate_deterministic(&mut DetRng::new(21)),
            AgentConfig {
                cache_mode: mode,
                ..AgentConfig::default()
            },
        )
    }

    fn loaded_host(site: &str) -> Browser {
        let mut origins = OriginRegistry::with_alexa20();
        let profile = NetProfile::lan();
        let mut pipe = Pipe::new(profile.host_origin);
        let mut b = Browser::new(BrowserKind::Firefox);
        b.navigate(
            &Url::parse(&format!("http://{site}/")).unwrap(),
            &mut origins,
            &mut pipe,
            &profile,
            SimTime::ZERO,
        )
        .unwrap();
        b
    }

    #[test]
    fn snapshot_serves_cached_objects_without_host_access() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("apple.com");
        let snap =
            ContentSnapshot::build(&mut a, &mut host, SimTime::from_secs(1), None).unwrap();
        assert!(snap.object_count() > 0, "apple.com has supplementary objects");
        assert_eq!(snap.object_count(), snap.live_object_count());
        for key in snap.live_keys.clone() {
            let obj = snap.object(key).expect("live object servable");
            // Bytes are shared with (and equal to) the host cache entry.
            let cached = host.cache.lookup(&obj.url).unwrap();
            assert!(Arc::ptr_eq(&obj.data, &cached.data));
        }
        // XML parses as a Fig.-4 document carrying the snapshot timestamp.
        let nc = rcb_xml::parse_new_content(&snap.xml).unwrap().unwrap();
        assert_eq!(nc.doc_time, snap.doc_time);
    }

    #[test]
    fn non_cache_snapshot_carries_no_objects() {
        let mut a = agent(CacheMode::NonCache);
        let mut host = loaded_host("apple.com");
        let snap =
            ContentSnapshot::build(&mut a, &mut host, SimTime::from_secs(1), None).unwrap();
        assert_eq!(snap.object_count(), 0);
    }

    #[test]
    fn rebuilds_carry_one_predecessor_and_stay_bounded() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("apple.com");
        let mut snap =
            ContentSnapshot::build(&mut a, &mut host, SimTime::ZERO, None).unwrap();
        let baseline = snap.live_object_count();
        assert!(baseline > 0);
        for i in 1..=1_000u64 {
            host.mutate_dom(|_| {}).unwrap();
            snap = ContentSnapshot::build(
                &mut a,
                &mut host,
                SimTime::from_millis(i),
                Some(&snap),
            )
            .unwrap();
            // The object set never exceeds two generations' worth — here
            // the page is unchanged, so the carried set equals the live
            // set and the total stays flat.
            assert!(
                snap.object_count() <= 2 * baseline,
                "object set unbounded at rebuild {i}"
            );
            assert!(snap.doc_time > 0);
        }
        // The agent's own caches honoured the same bound throughout.
        assert!(a.content_cache_len() <= crate::agent::LIVE_GENERATIONS);
        assert!(a.timestamps_len() <= crate::agent::LIVE_GENERATIONS);
        assert!(a.stats.content_evictions.get() > 0);
    }

    #[test]
    fn snapshot_tracks_dom_version() {
        let mut a = agent(CacheMode::Cache);
        let mut host = loaded_host("google.com");
        let s1 = ContentSnapshot::build(&mut a, &mut host, SimTime::ZERO, None).unwrap();
        assert_eq!(s1.dom_version, host.dom_version());
        host.mutate_dom(|_| {}).unwrap();
        let s2 =
            ContentSnapshot::build(&mut a, &mut host, SimTime::from_secs(1), Some(&s1))
                .unwrap();
        assert_eq!(s2.dom_version, host.dom_version());
        assert!(s2.doc_time > s1.doc_time);
    }
}
