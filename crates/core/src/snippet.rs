//! Ajax-Snippet: the participant-side poller (paper §4.2).
//!
//! The snippet lives in the head of whatever document is currently shown
//! on the participant browser ("it always keeps itself as a `<script>`
//! child element within the head element of any current document"). It
//! does two things:
//!
//! * **request sending** (§4.2.1): POST polling requests whose bodies
//!   piggyback the participant's pending actions, with the content
//!   timestamp of the current page and an HMAC on the request-URI;
//! * **response processing** (§4.2.2, Fig. 5): on "no new content",
//!   schedule the next poll; otherwise run the four-step smooth update —
//!   (1) clean the head keeping the snippet, (2) set head children from
//!   the payloads (Firefox: innerHTML assignment; IE: DOM construction),
//!   (3) remove stale top-level elements (body ↔ frameset switches),
//!   (4) set the new top-level content — then poll again.
//!
//! The wall-clock cost of one content update is the paper's **M6**.

use std::fmt::Write as _;

use rcb_browser::{Browser, BrowserKind, UserAction};
use rcb_crypto::SessionKey;
use rcb_html::dom::{Document, NodeId};
use rcb_html::parser::parse_fragment_into;
use rcb_http::{parse_batch_parts, Request, Response, BATCH_MEDIA_TYPE};
use rcb_util::{Histogram, RcbError, Result, SimDuration, SimTime, Stopwatch};
use rcb_xml::{parse_poll_payload, DeltaContent, ElementPayload, PollPayload, TopLevel};

use crate::agent::build_poll_body;
use crate::auth::sign_request;

/// Outcome of processing one polling response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnippetOutcome {
    /// Empty response: nothing changed on the host; poll again later.
    NoNewContent,
    /// The page was updated to the given content timestamp.
    Updated {
        /// New content timestamp now acknowledged by this snippet.
        doc_time: u64,
        /// Supplementary-object URLs the browser must now fetch
        /// (agent-relative in cache mode, absolute otherwise).
        object_urls: Vec<String>,
        /// Host-side actions mirrored to this participant (mouse moves).
        host_actions: Vec<UserAction>,
    },
}

/// Ajax-Snippet state for one participant.
pub struct AjaxSnippet {
    /// Participant id carried in the `p` query parameter.
    pub participant_id: u64,
    key: SessionKey,
    /// Timestamp of the content currently displayed.
    pub doc_time: u64,
    /// Actions captured since the last poll (drained into the next one).
    pending: Vec<UserAction>,
    /// Poll interval (the paper used one second).
    pub poll_interval: SimDuration,
    /// Wall-clock costs of content updates (the paper's M6 samples).
    pub m6: Histogram,
    /// Updates applied.
    pub updates_applied: u64,
    /// Polls sent.
    pub polls_sent: u64,
    /// Require a valid `X-RCB-MAC` on every successful response (the
    /// §3.4 future-work extension; pairs with
    /// `AgentConfig::authenticate_responses`).
    pub require_response_auth: bool,
    /// When set, every poll asks the agent to *park* it for up to this
    /// long instead of answering an up-to-date poll immediately (the
    /// `lp=<ms>` query parameter; the agent caps the wait at its own
    /// `park_timeout`). Converts the protocol's per-interval cost into a
    /// per-change cost: the reply arrives when content changes, not on
    /// the next interval tick. `None` (the default) keeps the paper's
    /// plain interval polling.
    pub long_poll: Option<SimDuration>,
    /// When set, every poll advertises delta capability (the `d=1` query
    /// parameter, MAC-covered like `lp=`): a woken long-poll may then be
    /// answered with a `deltaContent` document — or a
    /// `multipart/x-rcb-batch` reply inlining new cache objects — instead
    /// of the full Fig.-4 XML. The agent falls back to full XML whenever
    /// the acked generation has left its delta ring, so enabling this is
    /// always safe. `false` (the default) keeps the legacy protocol.
    pub delta: bool,
    /// Delta replies applied (a subset of `updates_applied`).
    pub deltas_applied: u64,
    /// Path prefix every poll target lives under — `""` for the classic
    /// single-session deployment, `"/s/{sid}"` when the session sits
    /// behind a router. Part of the signed request-URI, so the session id
    /// is covered by the poll HMAC like every other parameter.
    pub base_path: String,
}

impl AjaxSnippet {
    /// Creates a snippet with the shared session key.
    pub fn new(participant_id: u64, key: SessionKey, poll_interval: SimDuration) -> AjaxSnippet {
        AjaxSnippet {
            participant_id,
            key,
            doc_time: 0,
            pending: Vec::new(),
            poll_interval,
            m6: Histogram::new(),
            updates_applied: 0,
            polls_sent: 0,
            require_response_auth: false,
            long_poll: None,
            delta: false,
            deltas_applied: 0,
            base_path: String::new(),
        }
    }

    /// Captures a user action for piggybacking on the next poll.
    pub fn capture_action(&mut self, action: UserAction) {
        self.pending.push(action);
    }

    /// Number of actions waiting to be piggybacked.
    pub fn pending_actions(&self) -> usize {
        self.pending.len()
    }

    /// Builds the next signed polling request, draining pending actions
    /// (§4.2.1: POST method so action data rides in the body;
    /// `Content-Length` is set by the request constructor).
    pub fn build_poll(&mut self) -> Request {
        self.polls_sent += 1;
        let actions = std::mem::take(&mut self.pending);
        let body = build_poll_body(self.doc_time, &actions);
        // The `lp` and `d` parameters ride in the request-URI *before*
        // signing, so the requested park duration and the delta
        // capability are covered by the HMAC like the participant id.
        let mut target = format!("{}/poll?p={}", self.base_path, self.participant_id);
        if let Some(wait) = self.long_poll {
            let _ = write!(target, "&lp={}", wait.as_millis().max(1));
        }
        if self.delta {
            target.push_str("&d=1");
        }
        let mut req = Request::post(target, body);
        sign_request(&self.key, &mut req);
        req
    }

    /// Processes a polling response against the participant browser
    /// (Fig. 5). Returns what happened; on `Updated` the caller is
    /// responsible for fetching the returned object URLs.
    pub fn process_response(
        &mut self,
        resp: &Response,
        browser: &mut Browser,
    ) -> Result<SnippetOutcome> {
        if !resp.status.is_success() {
            return Err(RcbError::Protocol(format!(
                "poll failed with status {}",
                resp.status.0
            )));
        }
        if self.require_response_auth && !crate::auth::verify_response(&self.key, resp) {
            return Err(RcbError::Auth("response MAC missing or invalid".into()));
        }
        // A batch reply carries the poll payload as its first part and
        // inlines new cache objects as further parts: unpack it, store the
        // objects, and process the payload exactly like a plain reply.
        let (body, inlined) = if resp.content_type().as_deref() == Some(BATCH_MEDIA_TYPE) {
            let mut parts = parse_batch_parts(resp.body.as_slice())?;
            let first = parts.remove(0);
            (String::from_utf8_lossy(&first.data).into_owned(), parts)
        } else {
            (resp.body_str(), Vec::new())
        };
        let Some(payload) = parse_poll_payload(&body)? else {
            return Ok(SnippetOutcome::NoNewContent);
        };
        // Inlined objects go into the browser cache *before* the update is
        // applied, so the caller's object-fetch pass sees them as already
        // present and issues no follow-up round trips for them.
        for part in inlined {
            if let Some(url) = &part.url {
                browser
                    .cache
                    .store(url, &part.content_type, part.data, SimTime::ZERO);
            }
        }
        match payload {
            PollPayload::Full(nc) => {
                let (doc_time, object_urls) = self.apply_update(browser, |doc, kind| {
                    apply_new_content(doc, kind, &nc.head_children, &nc.top)?;
                    Ok(nc.doc_time)
                })?;
                Ok(SnippetOutcome::Updated {
                    doc_time,
                    object_urls,
                    host_actions: UserAction::decode_batch(&nc.user_actions).unwrap_or_default(),
                })
            }
            PollPayload::Delta(dc) => self.apply_delta(dc, browser),
        }
    }

    /// Applies a delta reply. The base-generation guard makes deltas safe
    /// against any server/client disagreement: a delta whose base is not
    /// the content this snippet currently shows is dropped as "no new
    /// content", and the next poll's stale timestamp makes the agent
    /// answer with the full document — clean recovery, never a mix of two
    /// generations.
    fn apply_delta(&mut self, dc: DeltaContent, browser: &mut Browser) -> Result<SnippetOutcome> {
        if dc.from_doc_time != self.doc_time {
            return Ok(SnippetOutcome::NoNewContent);
        }
        let (doc_time, object_urls) = self.apply_update(browser, |doc, kind| {
            if let Some(head_children) = &dc.head_children {
                apply_head_children(doc, kind, head_children)?;
            }
            if let Some(top) = &dc.top {
                apply_top_level(doc, top)?;
            }
            Ok(dc.doc_time)
        })?;
        self.deltas_applied += 1;
        Ok(SnippetOutcome::Updated {
            doc_time,
            object_urls,
            host_actions: UserAction::decode_batch(&dc.user_actions).unwrap_or_default(),
        })
    }

    /// Shared update bookkeeping: runs `apply` against the participant
    /// DOM under the M6 stopwatch, advances `doc_time`, and collects the
    /// supplementary URLs of the updated document.
    fn apply_update(
        &mut self,
        browser: &mut Browser,
        apply: impl FnOnce(&mut Document, BrowserKind) -> Result<u64>,
    ) -> Result<(u64, Vec<String>)> {
        let sw = Stopwatch::start();
        let kind = browser.kind;
        let doc = browser
            .doc
            .as_mut()
            .ok_or_else(|| RcbError::InvalidInput("participant has no document".into()))?;
        let doc_time = apply(doc, kind)?;
        let object_urls = {
            let d = browser.doc.as_ref().expect("document still loaded");
            rcb_html::query::collect_supplementary_urls(d, d.root())
        };
        self.m6.record(sw.elapsed());
        self.updates_applied += 1;
        self.doc_time = doc_time;
        Ok((doc_time, object_urls))
    }
}

/// The four-step smooth update of Fig. 5, applied to a participant DOM:
/// steps 1–2 ([`apply_head_children`]) then 3–4 ([`apply_top_level`]).
pub fn apply_new_content(
    doc: &mut Document,
    kind: BrowserKind,
    head_children: &[ElementPayload],
    top: &TopLevel,
) -> Result<()> {
    apply_head_children(doc, kind, head_children)?;
    apply_top_level(doc, top)
}

/// Fig.-5 steps 1–2: clean the head (keeping Ajax-Snippet) and append
/// the new head children per browser capability. Also the delta path's
/// head-component apply, which is why it stands alone.
pub fn apply_head_children(
    doc: &mut Document,
    kind: BrowserKind,
    head_children: &[ElementPayload],
) -> Result<()> {
    let html = doc
        .document_element()
        .ok_or_else(|| RcbError::InvalidInput("participant document has no <html>".into()))?;
    let head = match doc.head() {
        Some(h) => h,
        None => {
            let h = doc.create_element("head");
            doc.append_child(html, h)?;
            h
        }
    };

    // Step 1: clean the head, keeping only Ajax-Snippet.
    let snippet_node = find_snippet(doc, head);
    let children: Vec<NodeId> = doc.children(head).to_vec();
    for child in children {
        if Some(child) != snippet_node {
            doc.detach(child);
        }
    }

    // Step 2: append the new head children, per browser capability.
    for payload in head_children {
        if is_snippet_payload(payload) {
            continue; // never duplicate the snippet
        }
        let el = doc.create_element_with_attrs(&payload.tag, payload.attrs.clone());
        doc.append_child(head, el)?;
        match kind {
            BrowserKind::Firefox => {
                // Firefox path: head innerHTML is writable — one shot.
                rcb_html::parser::set_inner_html(doc, el, &payload.inner_html);
            }
            BrowserKind::InternetExplorer => {
                // IE path: construct children with DOM methods. For style
                // (innerHTML read-only even on the element) install a
                // single text node, as createTextNode+appendChild would.
                if payload.tag == "style" || payload.tag == "script" {
                    let text = doc.create_text(payload.inner_html.clone());
                    doc.append_child(el, text)?;
                } else {
                    let staging = doc.create_element("div");
                    let created = parse_fragment_into(doc, staging, &payload.inner_html);
                    for c in created {
                        doc.append_child(el, c)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Fig.-5 steps 3–4: remove stale top-level elements (body ↔ frameset
/// switches) and set the new top-level content. Also the delta path's
/// top-component apply.
pub fn apply_top_level(doc: &mut Document, top: &TopLevel) -> Result<()> {
    let html = doc
        .document_element()
        .ok_or_else(|| RcbError::InvalidInput("participant document has no <html>".into()))?;

    // Step 3: clean up stale top-level elements.
    let top_level: Vec<NodeId> = doc.children(html).to_vec();
    for child in top_level {
        let Some(tag) = doc.tag(child) else { continue };
        let stale = match top {
            TopLevel::Body(_) => matches!(tag, "frameset" | "noframes"),
            TopLevel::Frames { .. } => tag == "body",
        };
        if stale {
            doc.detach(child);
        }
    }

    // Step 4: set the new top-level content.
    match top {
        TopLevel::Body(body) => {
            set_top_element(doc, html, "body", body)?;
        }
        TopLevel::Frames { frameset, noframes } => {
            set_top_element(doc, html, "frameset", frameset)?;
            if let Some(nf) = noframes {
                set_top_element(doc, html, "noframes", nf)?;
            }
        }
    }
    Ok(())
}

/// Finds the snippet script element (`id="ajax-snippet"`) in the head.
fn find_snippet(doc: &Document, head: NodeId) -> Option<NodeId> {
    doc.children(head)
        .iter()
        .copied()
        .find(|&c| doc.is_element(c, "script") && doc.get_attr(c, "id") == Some("ajax-snippet"))
}

fn is_snippet_payload(p: &ElementPayload) -> bool {
    p.tag == "script"
        && p.attrs
            .iter()
            .any(|(k, v)| k == "id" && v == "ajax-snippet")
}

/// Replaces (or creates) the named top-level element under `<html>` and
/// fills it from the payload.
fn set_top_element(
    doc: &mut Document,
    html: NodeId,
    tag: &str,
    payload: &ElementPayload,
) -> Result<()> {
    let existing = doc
        .children(html)
        .iter()
        .copied()
        .find(|&c| doc.is_element(c, tag));
    let el = match existing {
        Some(el) => {
            // Refresh attributes: drop then re-add.
            let names: Vec<String> = doc.attrs(el).iter().map(|(n, _)| n.clone()).collect();
            for n in names {
                doc.remove_attr(el, &n);
            }
            el
        }
        None => {
            let el = doc.create_element(tag);
            doc.append_child(html, el)?;
            el
        }
    };
    for (n, v) in &payload.attrs {
        doc.set_attr(el, n, v.clone());
    }
    rcb_html::parser::set_inner_html(doc, el, &payload.inner_html);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_html::parse_document;
    use rcb_util::DetRng;

    fn key() -> SessionKey {
        SessionKey::generate_deterministic(&mut DetRng::new(11))
    }

    fn initial_participant_doc() -> Document {
        parse_document(
            "<html><head><script id=\"ajax-snippet\">/*rcb*/</script>\
             <title>RCB co-browsing session</title></head>\
             <body><div id=\"rcb-status\">waiting</div></body></html>",
        )
    }

    fn payload(tag: &str, attrs: &[(&str, &str)], inner: &str) -> ElementPayload {
        ElementPayload {
            tag: tag.into(),
            attrs: attrs
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            inner_html: inner.into(),
        }
    }

    #[test]
    fn poll_requests_are_signed_posts_with_timestamp() {
        let mut s = AjaxSnippet::new(3, key(), SimDuration::from_secs(1));
        s.doc_time = 42;
        s.capture_action(UserAction::MouseMove { x: 1, y: 2 });
        let req = s.build_poll();
        assert_eq!(req.method, rcb_http::Method::Post);
        assert!(req.target.starts_with("/poll?p=3"));
        assert!(req.target.contains("hmac="));
        let body = String::from_utf8(req.body.clone()).unwrap();
        assert!(body.starts_with("t=42"));
        assert!(body.contains("mouse|1|2"));
        assert_eq!(s.pending_actions(), 0, "pending drained");
        assert!(crate::auth::verify_request(&key(), &req));
    }

    #[test]
    fn long_poll_parameter_rides_the_signed_uri() {
        let mut s = AjaxSnippet::new(3, key(), SimDuration::from_secs(1));
        s.long_poll = Some(SimDuration::from_millis(2500));
        let req = s.build_poll();
        assert!(req.target.starts_with("/poll?p=3&lp=2500"));
        assert!(
            crate::auth::verify_request(&key(), &req),
            "lp must be MAC-covered"
        );
        // Sub-millisecond waits still request a nonzero park.
        s.long_poll = Some(SimDuration::from_micros(10));
        assert!(s.build_poll().target.contains("&lp=1"));
    }

    #[test]
    fn delta_parameter_rides_the_signed_uri() {
        let mut s = AjaxSnippet::new(3, key(), SimDuration::from_secs(1));
        s.delta = true;
        let req = s.build_poll();
        assert!(req.target.starts_with("/poll?p=3&d=1"));
        assert!(
            crate::auth::verify_request(&key(), &req),
            "d must be MAC-covered"
        );
        // Composes with long-poll: both parameters, both covered.
        s.long_poll = Some(SimDuration::from_millis(2500));
        let req = s.build_poll();
        assert!(req.target.starts_with("/poll?p=3&lp=2500&d=1"));
        assert!(crate::auth::verify_request(&key(), &req));
    }

    #[test]
    fn delta_reply_updates_only_the_shipped_components() {
        use rcb_xml::write_delta_content;
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.doc = Some(initial_participant_doc());
        let mut s = AjaxSnippet::new(1, key(), SimDuration::from_secs(1));
        s.doc_time = 10;
        // Top-only delta: head (snippet + title) must survive untouched.
        let dc = DeltaContent {
            doc_time: 11,
            from_doc_time: 10,
            head_children: None,
            top: Some(TopLevel::Body(payload("body", &[], "<p>delta v11</p>"))),
            user_actions: String::new(),
        };
        let resp = Response::xml(write_delta_content(&dc));
        let out = s.process_response(&resp, &mut browser).unwrap();
        assert!(matches!(out, SnippetOutcome::Updated { doc_time: 11, .. }));
        assert_eq!(s.doc_time, 11);
        assert_eq!(s.deltas_applied, 1);
        assert_eq!(s.updates_applied, 1);
        let doc = browser.doc.as_ref().unwrap();
        assert_eq!(doc.text_content(doc.body().unwrap()), "delta v11");
        let head = doc.head().unwrap();
        assert_eq!(
            doc.children(head).len(),
            2,
            "head untouched by top-only delta"
        );

        // Head-only delta: body stays.
        let dc = DeltaContent {
            doc_time: 12,
            from_doc_time: 11,
            head_children: Some(vec![payload("title", &[], "new title")]),
            top: None,
            user_actions: String::new(),
        };
        let out = s
            .process_response(&Response::xml(write_delta_content(&dc)), &mut browser)
            .unwrap();
        assert!(matches!(out, SnippetOutcome::Updated { doc_time: 12, .. }));
        let doc = browser.doc.as_ref().unwrap();
        assert_eq!(doc.text_content(doc.body().unwrap()), "delta v11");
        assert_eq!(s.deltas_applied, 2);
    }

    #[test]
    fn stale_base_delta_is_dropped_not_misapplied() {
        use rcb_xml::write_delta_content;
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.doc = Some(initial_participant_doc());
        let mut s = AjaxSnippet::new(1, key(), SimDuration::from_secs(1));
        s.doc_time = 10;
        let dc = DeltaContent {
            doc_time: 12,
            from_doc_time: 11, // we hold 10, not 11
            head_children: None,
            top: Some(TopLevel::Body(payload("body", &[], "<p>wrong</p>"))),
            user_actions: String::new(),
        };
        let out = s
            .process_response(&Response::xml(write_delta_content(&dc)), &mut browser)
            .unwrap();
        assert_eq!(out, SnippetOutcome::NoNewContent);
        assert_eq!(
            s.doc_time, 10,
            "timestamp unchanged: next poll recovers in full"
        );
        assert_eq!(s.deltas_applied, 0);
        let doc = browser.doc.as_ref().unwrap();
        assert_ne!(doc.text_content(doc.body().unwrap()), "wrong");
    }

    #[test]
    fn batch_reply_caches_inlined_objects_and_applies_the_delta() {
        use rcb_http::BATCH_CONTENT_TYPE;
        use rcb_xml::write_delta_content;
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.doc = Some(initial_participant_doc());
        let mut s = AjaxSnippet::new(1, key(), SimDuration::from_secs(1));
        s.doc_time = 5;
        let dc = DeltaContent {
            doc_time: 6,
            from_doc_time: 5,
            head_children: None,
            top: Some(TopLevel::Body(payload(
                "body",
                &[],
                "<img src=\"/cache/3?k=tok\">",
            ))),
            user_actions: String::new(),
        };
        let xml = write_delta_content(&dc);
        let obj: &[u8] = b"\x89PNG binary \x00 bytes";
        let mut body = Vec::new();
        body.extend_from_slice(
            format!(
                "--rcb-batch\r\nContent-Type: application/xml; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
                xml.len()
            )
            .as_bytes(),
        );
        body.extend_from_slice(xml.as_bytes());
        body.extend_from_slice(b"\r\n");
        body.extend_from_slice(
            format!(
                "--rcb-batch\r\nContent-Type: image/png\r\nContent-Length: {}\r\nX-RCB-Url: /cache/3?k=tok\r\n\r\n",
                obj.len()
            )
            .as_bytes(),
        );
        body.extend_from_slice(obj);
        body.extend_from_slice(b"\r\n--rcb-batch--\r\n");
        let resp = Response::with_body(
            rcb_http::Status::OK,
            BATCH_CONTENT_TYPE,
            rcb_http::Body::Owned(body),
        );
        let out = s.process_response(&resp, &mut browser).unwrap();
        match out {
            SnippetOutcome::Updated {
                doc_time,
                object_urls,
                ..
            } => {
                assert_eq!(doc_time, 6);
                assert_eq!(object_urls, vec!["/cache/3?k=tok".to_string()]);
            }
            other => panic!("expected update, got {other:?}"),
        }
        // The inlined object is already cached: no follow-up fetch needed.
        assert!(browser.cache.contains("/cache/3?k=tok"));
        let entry = browser.cache.lookup("/cache/3?k=tok").unwrap();
        assert_eq!(entry.data.as_ref(), obj);
        assert_eq!(entry.content_type, "image/png");
        assert_eq!(s.deltas_applied, 1);
    }

    #[test]
    fn head_update_keeps_snippet_firefox_and_ie() {
        for kind in [BrowserKind::Firefox, BrowserKind::InternetExplorer] {
            let mut doc = initial_participant_doc();
            let heads = vec![
                payload("title", &[], "cnn.com — home"),
                payload("style", &[("type", "text/css")], "body{color:red}"),
            ];
            let top = TopLevel::Body(payload("body", &[("class", "home")], "<p>news</p>"));
            apply_new_content(&mut doc, kind, &heads, &top).unwrap();
            let head = doc.head().unwrap();
            let tags: Vec<&str> = doc
                .children(head)
                .iter()
                .filter_map(|&c| doc.tag(c))
                .collect();
            assert_eq!(tags, vec!["script", "title", "style"], "kind {kind:?}");
            let snippet = doc.children(head)[0];
            assert_eq!(doc.get_attr(snippet, "id"), Some("ajax-snippet"));
            let body = doc.body().unwrap();
            assert_eq!(doc.get_attr(body, "class"), Some("home"));
            assert_eq!(doc.text_content(body), "news");
        }
    }

    #[test]
    fn body_to_frameset_switch() {
        let mut doc = initial_participant_doc();
        let top = TopLevel::Frames {
            frameset: payload(
                "frameset",
                &[("cols", "50%,50%")],
                "<frame src=\"/a\"><frame src=\"/b\">",
            ),
            noframes: Some(payload("noframes", &[], "frames needed")),
        };
        apply_new_content(&mut doc, BrowserKind::Firefox, &[], &top).unwrap();
        assert!(doc.body().is_none(), "stale body removed");
        let fs = doc.frameset().unwrap();
        assert_eq!(doc.get_attr(fs, "cols"), Some("50%,50%"));
        // And back to a body page.
        let top2 = TopLevel::Body(payload("body", &[], "<p>back</p>"));
        apply_new_content(&mut doc, BrowserKind::Firefox, &[], &top2).unwrap();
        assert!(doc.frameset().is_none());
        assert_eq!(doc.text_content(doc.body().unwrap()), "back");
    }

    #[test]
    fn repeated_updates_converge_to_latest_content() {
        let mut doc = initial_participant_doc();
        for i in 0..5 {
            let top = TopLevel::Body(payload("body", &[], &format!("<p>v{i}</p>")));
            apply_new_content(
                &mut doc,
                BrowserKind::Firefox,
                &[payload("title", &[], &format!("page v{i}"))],
                &top,
            )
            .unwrap();
        }
        assert_eq!(doc.text_content(doc.body().unwrap()), "v4");
        let head = doc.head().unwrap();
        // One snippet plus one title — no accumulation across updates.
        assert_eq!(doc.children(head).len(), 2);
    }

    #[test]
    fn snippet_payload_from_agent_is_not_duplicated() {
        let mut doc = initial_participant_doc();
        let heads = vec![
            payload("script", &[("id", "ajax-snippet")], "/*rcb*/"),
            payload("title", &[], "t"),
        ];
        let top = TopLevel::Body(payload("body", &[], ""));
        apply_new_content(&mut doc, BrowserKind::Firefox, &heads, &top).unwrap();
        let head = doc.head().unwrap();
        let snippets = doc
            .children(head)
            .iter()
            .filter(|&&c| doc.get_attr(c, "id") == Some("ajax-snippet"))
            .count();
        assert_eq!(snippets, 1);
    }

    #[test]
    fn ie_path_constructs_equivalent_dom() {
        let heads = vec![payload("style", &[], ".x{color:blue}")];
        let top = TopLevel::Body(payload(
            "body",
            &[],
            "<div id=\"a\"><b>rich</b> content</div>",
        ));
        let mut ff_doc = initial_participant_doc();
        apply_new_content(&mut ff_doc, BrowserKind::Firefox, &heads, &top).unwrap();
        let mut ie_doc = initial_participant_doc();
        apply_new_content(&mut ie_doc, BrowserKind::InternetExplorer, &heads, &top).unwrap();
        // Both paths must render identical body content.
        let ff_body = rcb_html::inner_html(&ff_doc, ff_doc.body().unwrap());
        let ie_body = rcb_html::inner_html(&ie_doc, ie_doc.body().unwrap());
        assert_eq!(ff_body, ie_body);
        let ff_head = rcb_html::inner_html(&ff_doc, ff_doc.head().unwrap());
        let ie_head = rcb_html::inner_html(&ie_doc, ie_doc.head().unwrap());
        assert_eq!(ff_head, ie_head);
    }

    #[test]
    fn process_response_full_cycle() {
        use rcb_xml::{write_new_content, NewContent};
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.doc = Some(initial_participant_doc());
        let mut s = AjaxSnippet::new(1, key(), SimDuration::from_secs(1));

        // Empty response → NoNewContent.
        let out = s
            .process_response(&Response::empty_ok(), &mut browser)
            .unwrap();
        assert_eq!(out, SnippetOutcome::NoNewContent);

        // Real content → Updated with object URLs and host actions.
        let nc = NewContent {
            doc_time: 99,
            head_children: vec![payload("title", &[], "shop")],
            top: TopLevel::Body(payload(
                "body",
                &[],
                "<img src=\"http://shop/a.png\"><p>hi</p>",
            )),
            user_actions: "mouse|4|5".into(),
        };
        let resp = Response::xml(write_new_content(&nc));
        let out = s.process_response(&resp, &mut browser).unwrap();
        match out {
            SnippetOutcome::Updated {
                doc_time,
                object_urls,
                host_actions,
            } => {
                assert_eq!(doc_time, 99);
                assert_eq!(object_urls, vec!["http://shop/a.png".to_string()]);
                assert_eq!(host_actions, vec![UserAction::MouseMove { x: 4, y: 5 }]);
            }
            other => panic!("expected update, got {other:?}"),
        }
        assert_eq!(s.doc_time, 99);
        assert_eq!(s.updates_applied, 1);
        assert_eq!(s.m6.len(), 1);

        // Error statuses are surfaced.
        let err = s.process_response(
            &Response::error(rcb_http::Status::UNAUTHORIZED, "bad mac"),
            &mut browser,
        );
        assert!(err.is_err());
    }
}
