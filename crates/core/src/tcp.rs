//! Real-socket deployment of RCB-Agent — the concurrent request pipeline.
//!
//! Everything else in this crate runs on simulated links; this module is
//! the "practical" half of the paper's claim: the agent served over real
//! `std::net` TCP (paper §3.1 step 1: "a co-browsing host starts running
//! RCB-Agent on the host browser with an open TCP port, e.g. 3000"), and
//! a participant joining with nothing but an HTTP client — exactly what a
//! regular browser plus Ajax-Snippet amounts to.
//!
//! # Concurrency architecture
//!
//! The paper names the host uplink as the session bottleneck (§5.1.2);
//! the agent itself must therefore never become one. This deployment
//! splits the agent into a read-mostly fast path and a serialized write
//! path:
//!
//! * **Read path** (polls, object requests, joins): served from a
//!   published [`ContentSnapshot`] behind an
//!   `Arc<RwLock<Arc<ContentSnapshot>>>`. Readers clone the inner `Arc`
//!   under a read lock held for nanoseconds and then work on frozen data;
//!   per-participant bookkeeping goes through [`ParticipantShards`], so
//!   two polls contend only if their pids hash to the same shard.
//! * **Write path** (host page mutations, participant-action merges):
//!   takes the single host mutex, applies the change to the live browser
//!   DOM via [`RcbAgent`], and — when the DOM version changed — *plans* a
//!   snapshot rebuild while still holding the mutex (DOM clone + frozen
//!   captures only), then releases it and runs generation, object
//!   resolution, and prefab serialization with **no lock held**,
//!   publishing with one pointer swap under the write lock. A slow
//!   generation therefore never blocks merges or page mutations, let
//!   alone polls.
//!
//! The read path is also **zero-copy**: content polls and object requests
//! are answered by cloning prefab wire images frozen into the snapshot
//! (`Arc` bumps), so per-request heap-copied response-body bytes are zero
//! — [`TcpHostStats::body_bytes_copied`] measures exactly that.
//!
//! **Lock ordering:** host mutex → snapshot write lock; shard locks and
//! the mapping-table mutex are leaves (never held while acquiring
//! anything else). Content generation never runs under the host mutex or
//! the snapshot lock, so neither a poll nor a merge can serialize behind
//! it.
//!
//! Timestamps on this path come from the [`Clock`] the serving engine
//! runs on: real wall-clock milliseconds since the Unix epoch (§4.1.1)
//! in the deployment default, the shared virtual clock when the same
//! handler is driven by the deterministic world sim ([`crate::worldsim`]).
//! Either way the value lands in the document-timestamp domain — not a
//! wrapped count (the old `% 1_000_000_000` mapping recurred every ~11.6
//! days).
//!
//! The socket itself is served by any of three interchangeable backends
//! behind the same `Handler` (see [`ServerBackend`]): the bounded worker
//! pool, the event-driven epoll loop whose connection ceiling is the fd
//! limit rather than the thread count, or the sharded epoll engine that
//! spreads connections round-robin across several independent event
//! loops (`RCB_SERVER_SHARDS` loops, default: available cores). Select
//! via [`ServerConfig::backend`] or the `RCB_SERVER_BACKEND` environment
//! variable; everything above the handler — snapshots, shards, prefab
//! wire images — is backend-agnostic, and the agent's participant shards
//! are unrelated to (and compose freely with) the server's loop shards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use rcb_browser::{Browser, BrowserKind, UserAction};
use rcb_cache::MappingTable;
use rcb_crypto::SessionKey;
use rcb_http::client::{ClientOptions, HttpConnection, RetryPolicy};
use rcb_http::server::{
    Handler, HandlerOutcome, HttpServer, Park, ParkHub, ServerBackend, ServerConfig,
};
use rcb_http::{Request, Response, Status};
use rcb_util::{Clock, RcbError, Result, SimDuration, SimTime};

use crate::agent::{AgentConfig, AgentStats, ParticipantShards, RcbAgent};
use crate::snapshot::{prefab_response, ContentSnapshot, SnapshotPlan};
use crate::snippet::{AjaxSnippet, SnippetOutcome};

/// Atomic counters for the concurrent request path (the sequential
/// [`AgentStats`] equivalents live behind the host mutex and only track
/// write-path work such as generations and evictions).
#[derive(Debug, Default)]
struct TcpStats {
    connections: AtomicU64,
    object_requests: AtomicU64,
    polls_with_content: AtomicU64,
    polls_empty: AtomicU64,
    auth_failures: AtomicU64,
    bad_requests: AtomicU64,
    polls_in_flight: AtomicU64,
    max_concurrent_polls: AtomicU64,
    body_bytes_copied: AtomicU64,
    polls_parked: AtomicU64,
    polls_woken: AtomicU64,
    polls_park_timeouts: AtomicU64,
    polls_woken_delta: AtomicU64,
    delta_fallbacks: AtomicU64,
}

/// A point-in-time copy of the host's concurrent-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpHostStats {
    /// New-connection (`GET /`) requests served.
    pub connections: u64,
    /// Object (`GET /cache/{key}`) requests served successfully.
    pub object_requests: u64,
    /// Polls answered with new content.
    pub polls_with_content: u64,
    /// Polls answered empty.
    pub polls_empty: u64,
    /// Requests rejected by authentication.
    pub auth_failures: u64,
    /// Polls rejected for a missing/malformed participant id, plus other
    /// malformed requests.
    pub bad_requests: u64,
    /// The highest number of polls ever observed inside the handler at
    /// once — direct evidence the poll path is not serialized.
    pub max_concurrent_polls: u64,
    /// Response-body bytes heap-copied while building responses, summed
    /// over every request served. Prefab wire images and `Arc`-shared
    /// bodies copy nothing, so on the hot read path this stays at zero no
    /// matter how large the content is or how many polls are served —
    /// only small owned bodies (error texts) ever add to it.
    pub body_bytes_copied: u64,
    /// Up-to-date polls parked as long-polls (`lp=` requests) instead of
    /// being answered empty immediately.
    pub polls_parked: u64,
    /// Parked polls completed by a snapshot publication (each also counts
    /// in `polls_with_content`).
    pub polls_woken: u64,
    /// Parked polls that hit their park deadline and fell back to the
    /// empty reply (each also counts in `polls_empty`).
    pub polls_park_timeouts: u64,
    /// Woken polls answered with a delta (or batched-delta) prefab
    /// instead of the full Fig.-4 XML — requires the request to have
    /// advertised `d=1` and the acked generation to still be in the
    /// snapshot's delta ring (each also counts in `polls_woken`).
    pub polls_woken_delta: u64,
    /// Woken delta-capable polls that fell back to the full XML because
    /// the acked generation had left the ring — the missed-generation
    /// path of the negotiation (each also counts in `polls_woken`).
    pub delta_fallbacks: u64,
    /// Long-polls the serving engine degraded to the immediate empty
    /// reply because the park cap was reached (each also counts in
    /// `polls_parked` — the agent offered the park; the engine declined
    /// it). Read from the shared [`ParkHub`], so it spans every backend.
    pub polls_shed_at_park_cap: u64,
}

/// Decrements the in-flight poll gauge even on early returns.
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The write-path state: the live agent and host browser, behind one lock.
struct HostCore {
    agent: RcbAgent,
    browser: Browser,
}

/// State shared between the server handler and the serving facade —
/// [`TcpHost`] over real sockets, [`crate::worldsim::WorldHost`] over the
/// deterministic fabric. Crate-visible so the world sim drives the exact
/// same agent pipeline the deployment path serves.
pub(crate) struct SharedHost {
    /// The published read-path snapshot (see module docs for ordering).
    snapshot: RwLock<Arc<ContentSnapshot>>,
    /// Highest DOM version a thread is currently generating a snapshot
    /// for (0 = none). Written under the host mutex (plan) and cleared by
    /// compare-exchange (finish), it keeps a regeneration singly-flighted:
    /// while one thread generates version V, other write-path requests
    /// that would replan V (or anything older) skip instead of running a
    /// duplicate generation inline — they keep serving the previous
    /// snapshot and pick the new one up once the in-flight thread
    /// publishes. A *newer* version always proceeds (concurrent
    /// generations of different versions are ordered by the publish
    /// guard).
    regen_in_flight: AtomicU64,
    /// Sharded per-participant state: the concurrent `participants` map.
    participants: ParticipantShards,
    /// The write path: merges and snapshot-plan capture only (generation
    /// itself runs after the mutex is released).
    core: Mutex<HostCore>,
    /// Frozen agent configuration (the read path must not lock for it).
    config: AgentConfig,
    /// Prefab wire image of the initial page (static per session) served
    /// to `GET /` — serialized once at startup, cloned per join.
    initial_page_response: Response,
    /// Prefab wire image of the empty poll reply (§4.1.1's "response with
    /// empty content") — identical for every up-to-date participant.
    empty_poll_response: Response,
    key: SessionKey,
    stats: TcpStats,
    /// The server's park/wake rendezvous (shared with every backend
    /// engine via `ServerConfig::park_hub`): snapshot publication calls
    /// [`ParkHub::publish_on`] with the new `dom_version`, completing
    /// every long-poll parked on an older version of this session.
    park: Arc<ParkHub>,
    /// The hub channel this session publishes and parks on. `0` is the
    /// default single-session channel; a session router assigns each
    /// session its own channel so one session's publishes never wake
    /// (or leak watermarks into) another's parks.
    channel: u64,
    /// The time source for every timestamp this host mints (snapshot
    /// doc-times, poll bookkeeping): the serving engine's clock from
    /// `ServerConfig::clock` — wall in the real deployment, the world's
    /// virtual clock under the sim.
    clock: Clock,
}

impl SharedHost {
    /// Builds the shared host state — agent, prefab responses, initial
    /// snapshot — around an already prepared host browser. `park` and
    /// `clock` must be the ones from the `ServerConfig` the serving
    /// engine will run on: snapshot publication signals that hub, and
    /// every timestamp reads that clock.
    pub(crate) fn build(
        browser: Browser,
        key: SessionKey,
        config: AgentConfig,
        park: Arc<ParkHub>,
        clock: Clock,
    ) -> Result<Arc<SharedHost>> {
        Self::build_on_channel(browser, key, config, park, clock, 0)
    }

    /// [`SharedHost::build`] parked on a specific hub channel — the
    /// session router gives each session its own channel so publishes
    /// stay session-local (channel `0` is the single-session default).
    pub(crate) fn build_on_channel(
        browser: Browser,
        key: SessionKey,
        config: AgentConfig,
        park: Arc<ParkHub>,
        clock: Clock,
        channel: u64,
    ) -> Result<Arc<SharedHost>> {
        let mut agent = RcbAgent::new(key.clone(), config.clone());
        let sign_with = config.authenticate_responses.then_some(&key);
        // Static per session: freeze the initial page and the empty poll
        // reply into prefab wire images once, at startup.
        let initial_page_response = prefab_response(
            Status::OK,
            "text/html; charset=utf-8",
            Arc::from(agent.initial_page().into_bytes()),
            sign_with,
        );
        let empty_poll_response = prefab_response(
            Status::OK,
            "application/xml; charset=utf-8",
            Arc::from(Vec::new()),
            sign_with,
        );
        let snapshot = ContentSnapshot::build(&mut agent, &browser, clock.now(), None)?;
        Ok(Arc::new(SharedHost {
            snapshot: RwLock::new(snapshot),
            regen_in_flight: AtomicU64::new(0),
            participants: ParticipantShards::new(),
            core: Mutex::new(HostCore { agent, browser }),
            config,
            initial_page_response,
            empty_poll_response,
            key,
            stats: TcpStats::default(),
            park,
            channel,
            clock,
        }))
    }

    /// The Fig.-2 request handler over this shared state — the same
    /// closure every serving engine (worker pool, epoll loops, the
    /// world-sim pump driver) dispatches into.
    pub(crate) fn make_handler(self: &Arc<Self>) -> Handler {
        let state = Arc::clone(self);
        Arc::new(move |req| state.handle(&req))
    }

    /// Now, on the engine clock, in the document-timestamp domain.
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn lock_core(&self) -> std::sync::MutexGuard<'_, HostCore> {
        self.core
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Reads the current snapshot (the only read-path lock besides shards).
    fn current_snapshot(&self) -> Arc<ContentSnapshot> {
        Arc::clone(
            &self
                .snapshot
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Phase 1 of a republish, **under the host mutex** (caller holds it):
    /// if the host DOM version moved past the published one — and no other
    /// thread is already generating it — capture a snapshot plan (DOM
    /// clone + frozen inputs) and mark the version in flight. Returns
    /// `Ok(None)` when the published snapshot is already current or the
    /// regeneration is already being handled elsewhere.
    ///
    /// Host actions drained into a plan are ephemeral mirror data (mouse
    /// positions): if the plan's snapshot later loses the publish race to
    /// a newer generation, they are dropped rather than replayed stale —
    /// the next generation's positions supersede them, as in the
    /// sequential deployment where only participants polling during a
    /// generation's window ever saw its actions.
    fn plan_republish(&self, core: &mut HostCore) -> Result<Option<SnapshotPlan>> {
        let version = core.browser.dom_version();
        if self.current_snapshot().dom_version == version {
            return Ok(None);
        }
        // Single-flight: the store is race-free because every planner
        // holds the host mutex here.
        if self.regen_in_flight.load(Ordering::Acquire) >= version {
            return Ok(None);
        }
        let plan = ContentSnapshot::plan(&mut core.agent, &core.browser, self.now())?;
        self.regen_in_flight.store(version, Ordering::Release);
        Ok(Some(plan))
    }

    /// Phase 2, **no locks held on entry**: generate content and assemble
    /// the snapshot from the plan's frozen captures, admit the generated
    /// content into the agent cache (brief host lock), and publish with a
    /// pointer swap — unless a newer DOM version was published while this
    /// one was generating, in which case the result is discarded.
    ///
    /// On generation failure the previous snapshot keeps serving and the
    /// error is returned: host-side callers surface it (the host can
    /// retry its mutation), merge-path callers drop it (the snapshot is
    /// still stale, so the next write retries generation).
    fn finish_republish(&self, plan: SnapshotPlan) -> Result<()> {
        let mode = plan.mode();
        let version = plan.dom_version();
        let prev = self.current_snapshot();
        // Clears the single-flight marker on every exit path — only after
        // publishing (or failing), so no window exists in which another
        // thread could replan this same version. A planner for a newer
        // version may have overwritten the marker; the compare-exchange
        // leaves that one alone.
        let clear_marker = || {
            let _ = self.regen_in_flight.compare_exchange(
                version,
                0,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        };
        let (snap, generated) = match plan.finish(Some(&prev)) {
            Ok(done) => done,
            Err(e) => {
                clear_marker();
                return Err(e);
            }
        };
        if let Some(content) = generated {
            let mut core = self.lock_core();
            core.agent.admit_generated(snap.dom_version, mode, content);
        }
        let swapped = {
            let mut published = self
                .snapshot
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if snap.dom_version > published.dom_version {
                let version = snap.dom_version;
                *published = snap;
                Some(version)
            } else {
                None
            }
        };
        // The long-poll wake: publication *is* the pointer swap, so the
        // hub is notified only when this generation actually won the race
        // (a loser would re-wake parked polls with nothing new). Outside
        // the write lock — `publish` takes the hub's own locks and pokes
        // the engine wakers, and lock ordering keeps hub internals a leaf.
        if let Some(version) = swapped {
            self.park.publish_on(self.channel, version);
        }
        clear_marker();
        Ok(())
    }

    /// The full Fig.-2 request classification, on the concurrent paths.
    /// Every response — immediate or deferred through a park closure —
    /// leaves through [`SharedHost::finalize`], so signing and copy
    /// accounting are identical on both paths.
    fn handle(self: &Arc<Self>, req: &Request) -> HandlerOutcome {
        // Session-local classification: the configured path prefix is
        // stripped first ("" for the single-session deployment), so a
        // routed `/s/{sid}/poll` classifies exactly like `/poll`.
        let local = req.path().strip_prefix(self.config.path_prefix.as_str());
        match (req.method, local) {
            (rcb_http::Method::Get, Some("/")) => {
                self.stats.connections.fetch_add(1, Ordering::Relaxed);
                self.finalize(self.initial_page_response.clone()).into()
            }
            (rcb_http::Method::Get, Some(path)) if path.starts_with("/cache/") => {
                self.finalize(self.serve_object(req, path)).into()
            }
            (rcb_http::Method::Post, Some("/poll")) => self.handle_poll(req),
            _ => self
                .finalize(Response::error(Status::NOT_FOUND, "unknown request type"))
                .into(),
        }
    }

    /// Response post-processing shared by the immediate path and the
    /// long-poll wake/timeout closures: sign when configured, account
    /// heap-copied body bytes.
    fn finalize(&self, mut response: Response) -> Response {
        // Prefab responses were signed (when configured) at freeze time;
        // signing them again would desync the frozen image.
        if self.config.authenticate_responses
            && response.status.is_success()
            && !response.is_prefab()
        {
            crate::auth::sign_response(&self.key, &mut response);
        }
        // Copy accounting: prefab/shared bodies contribute zero.
        self.stats
            .body_bytes_copied
            .fetch_add(response.body.copied_len() as u64, Ordering::Relaxed);
        response
    }

    /// Object requests: token check, key parse, snapshot lookup — no host
    /// lock anywhere. `local_path` is the request path with the session
    /// prefix already stripped; the token is verified over the *full*
    /// path, so a token minted in one session cannot fetch from another.
    fn serve_object(&self, req: &Request, local_path: &str) -> Response {
        // A missing `k` and an empty `k=` are the same defect — no token
        // material to verify — and must answer identically on every
        // backend: 400, before any MAC work.
        let token = match req.query_param("k") {
            Some(t) if !t.is_empty() => t,
            _ => {
                self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                return Response::error(Status::BAD_REQUEST, crate::auth::OBJECT_TOKEN_REQUIRED);
            }
        };
        if !crate::auth::verify_object_token(&self.key, req.path(), &token) {
            self.stats.auth_failures.fetch_add(1, Ordering::Relaxed);
            return Response::error(Status::UNAUTHORIZED, "bad object token");
        }
        let Some(cache_key) = MappingTable::parse_agent_path(local_path) else {
            self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::error(Status::BAD_REQUEST, "malformed cache path");
        };
        let snap = self.current_snapshot();
        match snap.object(cache_key) {
            Some(obj) => {
                self.stats.object_requests.fetch_add(1, Ordering::Relaxed);
                // Prefab wire image frozen at snapshot build: an `Arc`
                // clone, no byte of the object body is copied.
                obj.response()
            }
            None => Response::error(Status::NOT_FOUND, "object not in live generations"),
        }
    }

    /// Ajax polls: HMAC verification and timestamp inspection are pure
    /// reads; only piggybacked actions take the host mutex.
    ///
    /// An up-to-date poll carrying an `lp=<ms>` parameter does not answer
    /// at all: it returns [`HandlerOutcome::Park`], and the server engine
    /// holds the connection until the next snapshot publication (wake:
    /// the fresh prefab wire image, still zero-copy) or the park deadline
    /// (timeout: the empty-poll prefab) — converting per-interval polls
    /// into per-change replies. Parking is opt-in per request; without
    /// `lp` the empty reply goes out immediately, as the paper specifies.
    fn handle_poll(self: &Arc<Self>, req: &Request) -> HandlerOutcome {
        let in_flight = self.stats.polls_in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats
            .max_concurrent_polls
            .fetch_max(in_flight, Ordering::Relaxed);
        let _guard = InFlightGuard(&self.stats.polls_in_flight);

        if !crate::auth::verify_request(&self.key, req) {
            self.stats.auth_failures.fetch_add(1, Ordering::Relaxed);
            return self
                .finalize(Response::error(
                    Status::UNAUTHORIZED,
                    "HMAC verification failed",
                ))
                .into();
        }
        // Same contract as the sequential agent: a missing/malformed `p`
        // must not collapse participants into shared pid-0 state.
        let Some(pid) = req.query_param("p").and_then(|v| v.parse::<u64>().ok()) else {
            self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            return self
                .finalize(Response::error(
                    Status::BAD_REQUEST,
                    "missing or malformed participant id",
                ))
                .into();
        };
        // Borrowed parse: `from_utf8_lossy` only allocates when the body
        // is not valid UTF-8 (never for snippet-built polls) — the old
        // `.into_owned()` copied every poll body just to split it.
        let body = String::from_utf8_lossy(&req.body);
        let (client_time, actions) = crate::agent::parse_poll_body(&body);
        self.participants.record_poll(pid, client_time, self.now());

        // Data merging (the only write): take the host mutex just long
        // enough to merge and — when the merge changed the DOM — capture a
        // snapshot plan (DOM clone); generation then runs after the mutex
        // is dropped, so other merges and mutations proceed meanwhile.
        // Polls whose actions the frozen policy would discard anyway never
        // touch the lock.
        if !actions.is_empty() && self.config.interaction_policy.allows(pid) {
            let plan = {
                let mut core = self.lock_core();
                let HostCore { agent, browser } = &mut *core;
                // Host effects (navigations/submissions) need the network;
                // the TCP facade has no world to run them in, so they are
                // dropped, as in the sequential deployment.
                let _ = agent.merge_poll_actions(pid, actions, browser);
                self.plan_republish(&mut core)
            };
            // A failed regeneration keeps the previous snapshot; the next
            // write-path request retries.
            if let Ok(Some(plan)) = plan {
                let _ = self.finish_republish(plan);
            }
        }

        // Timestamp inspection against the frozen snapshot.
        let snap = self.current_snapshot();
        if client_time < snap.doc_time {
            self.stats
                .polls_with_content
                .fetch_add(1, Ordering::Relaxed);
            self.participants.advance_doc_time(pid, snap.doc_time);
            // Prefab wire image: every participant's content poll for this
            // generation is byte-identical, serialized once at build time.
            return self.finalize(snap.poll_response()).into();
        }
        // Up to date. Park if (and only if) the request asked to.
        let requested_ms = req
            .query_param("lp")
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0);
        if let Some(ms) = requested_ms {
            let max_wait = std::time::Duration::from_millis(ms).min(
                std::time::Duration::from_micros(self.config.park_timeout.as_micros()),
            );
            // Delta capability is negotiated per request (`d=1`,
            // MAC-covered like `lp=`). Captured here with the acked
            // generation: the wake closure decides between the delta
            // prefab and the full-XML fallback.
            let delta_ok = req.query_param("d").is_some_and(|v| v == "1");
            let parked_version = snap.dom_version;
            self.stats.polls_parked.fetch_add(1, Ordering::Relaxed);
            let on_wake_host = Arc::clone(self);
            let on_timeout_host = Arc::clone(self);
            return HandlerOutcome::Park(Park {
                channel: self.channel,
                // dom_version, not doc_time: the version is strictly
                // monotonic under the publish guard, while doc_time is
                // wall-clock milliseconds and can collide across rapid
                // publishes. `ParkHub::publish_on` receives the same value.
                wait_key: parked_version,
                max_wait,
                on_wake: Box::new(move || {
                    // Re-read at wake time: the response must be the
                    // snapshot that exists *now*, not a stale capture.
                    let snap = on_wake_host.current_snapshot();
                    on_wake_host
                        .stats
                        .polls_woken
                        .fetch_add(1, Ordering::Relaxed);
                    on_wake_host
                        .stats
                        .polls_with_content
                        .fetch_add(1, Ordering::Relaxed);
                    on_wake_host
                        .participants
                        .advance_doc_time(pid, snap.doc_time);
                    // Prefab selection: the delta for the generation this
                    // poll acked when it parked, when the client can apply
                    // it and the ring still covers that base; the full XML
                    // otherwise (ring miss = negotiated fallback).
                    let response = if delta_ok {
                        match snap.delta_response_for(parked_version) {
                            Some(delta) => {
                                on_wake_host
                                    .stats
                                    .polls_woken_delta
                                    .fetch_add(1, Ordering::Relaxed);
                                delta
                            }
                            None => {
                                on_wake_host
                                    .stats
                                    .delta_fallbacks
                                    .fetch_add(1, Ordering::Relaxed);
                                snap.poll_response()
                            }
                        }
                    } else {
                        snap.poll_response()
                    };
                    on_wake_host.finalize(response)
                }),
                on_timeout: Box::new(move || {
                    on_timeout_host
                        .stats
                        .polls_park_timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    on_timeout_host
                        .stats
                        .polls_empty
                        .fetch_add(1, Ordering::Relaxed);
                    on_timeout_host.finalize(on_timeout_host.empty_poll_response.clone())
                }),
            });
        }
        self.stats.polls_empty.fetch_add(1, Ordering::Relaxed);
        self.finalize(self.empty_poll_response.clone()).into()
    }

    pub(crate) fn stats_snapshot(&self) -> TcpHostStats {
        TcpHostStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            object_requests: self.stats.object_requests.load(Ordering::Relaxed),
            polls_with_content: self.stats.polls_with_content.load(Ordering::Relaxed),
            polls_empty: self.stats.polls_empty.load(Ordering::Relaxed),
            auth_failures: self.stats.auth_failures.load(Ordering::Relaxed),
            bad_requests: self.stats.bad_requests.load(Ordering::Relaxed),
            max_concurrent_polls: self.stats.max_concurrent_polls.load(Ordering::Relaxed),
            body_bytes_copied: self.stats.body_bytes_copied.load(Ordering::Relaxed),
            polls_parked: self.stats.polls_parked.load(Ordering::Relaxed),
            polls_woken: self.stats.polls_woken.load(Ordering::Relaxed),
            polls_park_timeouts: self.stats.polls_park_timeouts.load(Ordering::Relaxed),
            polls_woken_delta: self.stats.polls_woken_delta.load(Ordering::Relaxed),
            delta_fallbacks: self.stats.delta_fallbacks.load(Ordering::Relaxed),
            polls_shed_at_park_cap: self.park.parks_shed(),
        }
    }

    pub(crate) fn mutate_page(&self, f: impl FnOnce(&mut rcb_html::Document)) -> Result<()> {
        let plan = {
            let mut core = self.lock_core();
            core.browser.mutate_dom(f)?;
            self.plan_republish(&mut core)?
        };
        match plan {
            Some(plan) => self.finish_republish(plan),
            None => Ok(()),
        }
    }

    /// The live host DOM version (behind the host mutex — the published
    /// snapshot may briefly lag it mid-regeneration).
    pub(crate) fn dom_version(&self) -> u64 {
        self.lock_core().browser.dom_version()
    }

    /// The document timestamp of the currently published snapshot.
    pub(crate) fn published_doc_time(&self) -> u64 {
        self.current_snapshot().doc_time
    }

    /// Byte length of the currently published Fig.-4 XML.
    pub(crate) fn published_xml_len(&self) -> usize {
        self.current_snapshot().xml().len()
    }

    /// Number of participants the agent has seen.
    pub(crate) fn participant_count(&self) -> usize {
        self.participants.count()
    }

    /// Current host form field values (to observe merged co-fill data).
    pub(crate) fn form_fields(&self, form_id: &str) -> Vec<(String, String)> {
        let core = self.lock_core();
        let Some(doc) = core.browser.doc.as_ref() else {
            return Vec::new();
        };
        match rcb_html::query::element_by_id(doc, doc.root(), form_id) {
            Some(form) => rcb_html::query::form_fields(doc, form),
            None => Vec::new(),
        }
    }
}

/// A live RCB host: the agent plus a host browser behind a real TCP
/// port. Since the session-router redesign this is the *single-session
/// convenience wrapper*: it builds a one-session
/// [`crate::router::SessionRouter`], installs its browser as the default
/// session (hub channel 0, empty path prefix — the classic wire
/// behavior, byte for byte), and serves the router's handler. Multi-
/// session deployments use [`crate::router::RouterHost`] directly.
pub struct TcpHost {
    server: HttpServer,
    router: Arc<crate::router::SessionRouter>,
    shared: Arc<SharedHost>,
    key: SessionKey,
}

impl TcpHost {
    /// Starts the agent on `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port), with the host browser showing the given HTML document.
    pub fn start(addr: &str, page_url: &str, page_html: &str) -> Result<TcpHost> {
        let key = SessionKey::generate();
        Self::start_with_key(addr, page_url, page_html, key)
    }

    /// Starts with an explicit session key (tests use deterministic keys).
    pub fn start_with_key(
        addr: &str,
        page_url: &str,
        page_html: &str,
        key: SessionKey,
    ) -> Result<TcpHost> {
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.url = Some(rcb_url::Url::parse(page_url)?);
        browser.doc = Some(rcb_html::parse_document(page_html));
        browser.mutate_dom(|_| {}).expect("document just loaded");
        Self::start_from_browser(
            addr,
            browser,
            key,
            AgentConfig::default(),
            ServerConfig::default(),
        )
    }

    /// Starts from an already prepared host browser (e.g. one that
    /// navigated a real site and filled its cache), with explicit agent
    /// and server configuration.
    pub fn start_from_browser(
        addr: &str,
        browser: Browser,
        key: SessionKey,
        config: AgentConfig,
        server_config: ServerConfig,
    ) -> Result<TcpHost> {
        // Grab the hub and clock handles before `server_config` moves into
        // the bind: snapshot publication signals this hub, the server's
        // event loops registered their wakers on the very same instance,
        // and every host timestamp reads this clock.
        let park = Arc::clone(&server_config.park_hub);
        let clock = server_config.clock.clone();
        // One-session router: the factory knows no sids, so `/s/{sid}`
        // requests answer with the router's prefab 404 while every
        // legacy path routes into the default session unchanged.
        let router = crate::router::SessionRouter::new(
            Box::new(|_| None),
            config,
            crate::router::RouterConfig::default(),
            park,
            clock,
        );
        let handle = router.install_default_session(browser, key.clone())?;
        let shared = Arc::clone(handle.shared_host());
        let server = HttpServer::bind_with(addr, router.make_handler(), server_config)?;
        Ok(TcpHost {
            server,
            router,
            shared,
            key,
        })
    }

    /// The session-routing layer under this host (one default session;
    /// exposed so callers can inspect [`crate::router::RouterStats`]).
    pub fn session_router(&self) -> &Arc<crate::router::SessionRouter> {
        &self.router
    }

    /// The bound address participants connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// The server backend servicing this host's socket (workers pool,
    /// epoll event loop, or sharded epoll — see [`ServerBackend`];
    /// defaults follow the `RCB_SERVER_BACKEND` environment variable).
    /// Sharded backends report their resolved shard count.
    pub fn backend(&self) -> ServerBackend {
        self.server.backend()
    }

    /// Engine-level counters from the server under the agent: accept
    /// errors survived, connections accepted, and — on the sharded epoll
    /// backend — how they were distributed across event-loop shards.
    pub fn server_stats(&self) -> rcb_http::server::ServerStats {
        self.server.stats()
    }

    /// The session key to share out of band.
    pub fn key(&self) -> &SessionKey {
        &self.key
    }

    /// Mutates the live host page (stands in for host-side browsing or
    /// page JavaScript); the snapshot is regenerated and published before
    /// this returns, so participants pick the change up on their next
    /// poll — but the host mutex is held only for the mutation and the
    /// DOM clone, never across content generation, so concurrent merges
    /// and polls are not blocked by a slow regeneration. A
    /// content-generation failure is returned to the host (the previous
    /// snapshot keeps serving until a retry succeeds).
    pub fn mutate_page(&self, f: impl FnOnce(&mut rcb_html::Document)) -> Result<()> {
        self.shared.mutate_page(f)
    }

    /// Test hook: a handle to the shared host state so tests can mutate
    /// the page from another thread while a poll is parked.
    #[cfg(test)]
    fn clone_shared_for_test(&self) -> Arc<SharedHost> {
        Arc::clone(&self.shared)
    }

    /// Number of participants the agent has seen.
    pub fn participant_count(&self) -> usize {
        self.shared.participant_count()
    }

    /// Concurrent-path counters (polls, objects, observed concurrency).
    pub fn stats(&self) -> TcpHostStats {
        self.shared.stats_snapshot()
    }

    /// The document timestamp of the currently published snapshot.
    pub fn published_doc_time(&self) -> u64 {
        self.shared.published_doc_time()
    }

    /// Byte length of the currently published Fig.-4 XML (the content
    /// poll response body).
    pub fn published_xml_len(&self) -> usize {
        self.shared.published_xml_len()
    }

    /// Runs `f` against the sequential agent stats (generation counters,
    /// eviction counters, M5 samples) under the host lock.
    pub fn with_agent_stats<R>(&self, f: impl FnOnce(&AgentStats) -> R) -> R {
        let core = self.shared.lock_core();
        f(&core.agent.stats)
    }

    /// `(content_cache_len, timestamps_len)` of the live agent — both are
    /// bounded to [`crate::agent::LIVE_GENERATIONS`] generations.
    pub fn agent_cache_lens(&self) -> (usize, usize) {
        let core = self.shared.lock_core();
        (core.agent.content_cache_len(), core.agent.timestamps_len())
    }

    /// Reads current host form field values (to observe merged co-fill
    /// data, as in the paper's Figure 10).
    pub fn form_fields(&self, form_id: &str) -> Vec<(String, String)> {
        self.shared.form_fields(form_id)
    }

    /// Stops the server.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

/// A participant joined over real TCP: a persistent connection, a browser
/// model, and snippet state.
pub struct TcpParticipant {
    conn: HttpConnection,
    /// Client knobs for every round trip: the read timeout plus a seeded
    /// backoff for `503` sheds (per participant, so a cohort shed in the
    /// same instant fans back out instead of re-storming).
    options: ClientOptions,
    /// The participant's browser model.
    pub browser: Browser,
    /// Snippet state (poll building, content application, M6 samples).
    pub snippet: AjaxSnippet,
    /// Response bytes received over this connection since the join, as
    /// serialized on the wire (status line + headers + body) — poll
    /// replies and object fetches alike. The bytes-on-wire-per-update
    /// bench measurement reads this.
    pub wire_bytes_in: u64,
}

impl TcpParticipant {
    /// Joins a session: connects, fetches the initial page (step 2), and
    /// instantiates the snippet with the out-of-band key. Uses the
    /// default [`AgentConfig`] client knobs.
    pub fn join(addr: &str, key: SessionKey, participant_id: u64) -> Result<TcpParticipant> {
        Self::join_with_config(addr, key, participant_id, &AgentConfig::default())
    }

    /// [`TcpParticipant::join`] with explicit client configuration: the
    /// read timeout on every blocking read comes from
    /// [`AgentConfig::client_read_timeout`] instead of the client
    /// library's default, and [`AgentConfig::path_prefix`] scopes the
    /// join GET and every later poll to that session.
    pub fn join_with_config(
        addr: &str,
        key: SessionKey,
        participant_id: u64,
        config: &AgentConfig,
    ) -> Result<TcpParticipant> {
        let read_timeout = std::time::Duration::from_micros(config.client_read_timeout.as_micros());
        let mut options = ClientOptions::with_read_timeout(read_timeout)
            .retry(RetryPolicy::seeded(0x7e7_2026 ^ participant_id));
        let mut conn = HttpConnection::connect_opts(addr, &options)?;
        let join_target = format!("{}/", config.path_prefix);
        let resp = conn.round_trip_opts(&rcb_http::Request::get(join_target), &mut options)?;
        if !resp.status.is_success() {
            return Err(RcbError::Protocol(format!(
                "join failed with status {}",
                resp.status.0
            )));
        }
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.doc = Some(rcb_html::parse_document(&resp.body_str()));
        let mut snippet = AjaxSnippet::new(participant_id, key, SimDuration::from_secs(1));
        snippet.base_path = config.path_prefix.clone();
        Ok(TcpParticipant {
            conn,
            options,
            browser,
            snippet,
            wire_bytes_in: 0,
        })
    }

    /// Joins one session behind a [`crate::router::SessionRouter`]: the
    /// same handshake as [`TcpParticipant::join_with_config`], scoped
    /// under the session's `/s/{sid}` path prefix.
    pub fn join_session(
        addr: &str,
        sid: &str,
        key: SessionKey,
        participant_id: u64,
        config: &AgentConfig,
    ) -> Result<TcpParticipant> {
        let config = AgentConfig {
            path_prefix: crate::router::session_prefix(sid),
            ..config.clone()
        };
        Self::join_with_config(addr, key, participant_id, &config)
    }

    /// Queues an action to ride the next poll.
    pub fn act(&mut self, action: UserAction) {
        self.snippet.capture_action(action);
    }

    /// One poll round over the real socket. Returns the snippet outcome;
    /// on `Updated` also fetches agent-served objects through the same
    /// connection.
    pub fn poll(&mut self) -> Result<SnippetOutcome> {
        let req = self.snippet.build_poll();
        let resp = self.conn.round_trip_opts(&req, &mut self.options)?;
        self.wire_bytes_in += resp.wire_len() as u64;
        let outcome = self.snippet.process_response(&resp, &mut self.browser)?;
        if let SnippetOutcome::Updated { object_urls, .. } = &outcome {
            for url in object_urls {
                if url.starts_with('/') && !self.browser.cache.contains(url) {
                    let obj = self
                        .conn
                        .round_trip_opts(&rcb_http::Request::get(url.clone()), &mut self.options)?;
                    self.wire_bytes_in += obj.wire_len() as u64;
                    if obj.status.is_success() {
                        let ct = obj.content_type().unwrap_or_default();
                        self.browser.cache.store(url, &ct, obj.body, SimTime::ZERO);
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// Opts this participant into parked long-polling: an up-to-date
    /// poll is held open by the agent for up to `wait` (capped by the
    /// host's [`AgentConfig::park_timeout`]) and completed the moment a
    /// new snapshot publishes, instead of returning empty immediately.
    pub fn enable_long_poll(&mut self, wait: SimDuration) {
        self.snippet.long_poll = Some(wait);
    }

    /// Convenience: polls until new content arrives or `attempts` polls
    /// pass (sleeping `interval` between them, like setTimeout).
    pub fn poll_until_update(
        &mut self,
        attempts: usize,
        interval: std::time::Duration,
    ) -> Result<SnippetOutcome> {
        for _ in 0..attempts {
            match self.poll()? {
                SnippetOutcome::NoNewContent => std::thread::sleep(interval),
                updated => return Ok(updated),
            }
        }
        Err(RcbError::Protocol("no update within poll budget".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_util::DetRng;

    const PAGE: &str = "<html><head><title>demo</title></head>\
        <body><h1 id=\"headline\">hello co-browsers</h1>\
        <form id=\"f\" action=\"/submit\"><input type=\"text\" name=\"note\" value=\"\"></form>\
        </body></html>";

    fn start_host() -> TcpHost {
        let key = SessionKey::generate_deterministic(&mut DetRng::new(77));
        TcpHost::start_with_key("127.0.0.1:0", "http://demo.local/", PAGE, key).unwrap()
    }

    #[test]
    fn participant_syncs_over_real_sockets() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
        let outcome = alice.poll().unwrap();
        assert!(matches!(outcome, SnippetOutcome::Updated { .. }));
        let doc = alice.browser.doc.as_ref().unwrap();
        assert!(doc.text_content(doc.root()).contains("hello co-browsers"));
        assert_eq!(host.participant_count(), 1);
        let stats = host.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.polls_with_content, 1);
        host.shutdown();
    }

    #[test]
    fn live_mutation_reaches_participant() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
        alice.poll().unwrap();
        host.mutate_page(|doc| {
            let body = doc.body().unwrap();
            let div = doc.create_element("div");
            let t = doc.create_text("breaking update");
            doc.append_child(div, t).unwrap();
            doc.append_child(body, div).unwrap();
        })
        .unwrap();
        let outcome = alice
            .poll_until_update(10, std::time::Duration::from_millis(20))
            .unwrap();
        assert!(matches!(outcome, SnippetOutcome::Updated { .. }));
        let doc = alice.browser.doc.as_ref().unwrap();
        assert!(doc.text_content(doc.root()).contains("breaking update"));
        host.shutdown();
    }

    #[test]
    fn form_cofill_merges_on_host_over_tcp() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
        alice.poll().unwrap();
        alice.act(UserAction::FormInput {
            form: "f".into(),
            field: "note".into(),
            value: "ship to NYC".into(),
        });
        alice.poll().unwrap();
        assert_eq!(
            host.form_fields("f"),
            vec![("note".to_string(), "ship to NYC".to_string())]
        );
        host.shutdown();
    }

    #[test]
    fn wrong_key_is_rejected_over_tcp() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let wrong = SessionKey::generate_deterministic(&mut DetRng::new(78));
        let mut eve = TcpParticipant::join(&addr, wrong, 9).unwrap();
        let err = eve.poll().unwrap_err();
        assert_eq!(err.category(), "protocol");
        assert_eq!(host.participant_count(), 0);
        assert_eq!(host.stats().auth_failures, 1);
        host.shutdown();
    }

    #[test]
    fn multiple_participants_over_tcp() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let mut ps: Vec<TcpParticipant> = (1..=3)
            .map(|i| TcpParticipant::join(&addr, host.key().clone(), i).unwrap())
            .collect();
        for p in &mut ps {
            assert!(matches!(p.poll().unwrap(), SnippetOutcome::Updated { .. }));
        }
        assert_eq!(host.participant_count(), 3);
        // One generation served all three — the snapshot is shared.
        host.with_agent_stats(|s| assert_eq!(s.generations.get(), 1));
        host.shutdown();
    }

    #[test]
    fn full_session_on_epoll_backend() {
        // The same join → poll → mutate → poll → co-fill flow, explicitly
        // on the event-driven backend (skipped where it isn't compiled
        // in): everything above the Handler must be backend-agnostic.
        if !rcb_http::server::EPOLL_SUPPORTED {
            return;
        }
        let key = SessionKey::generate_deterministic(&mut DetRng::new(77));
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.url = Some(rcb_url::Url::parse("http://demo.local/").unwrap());
        browser.doc = Some(rcb_html::parse_document(PAGE));
        browser.mutate_dom(|_| {}).unwrap();
        let mut host = TcpHost::start_from_browser(
            "127.0.0.1:0",
            browser,
            key.clone(),
            AgentConfig::default(),
            ServerConfig::builder()
                .backend(ServerBackend::Epoll)
                .workers(2)
                .build(),
        )
        .unwrap();
        assert_eq!(host.backend(), ServerBackend::Epoll);
        let addr = host.addr().to_string();
        let mut alice = TcpParticipant::join(&addr, key, 1).unwrap();
        assert!(matches!(
            alice.poll().unwrap(),
            SnippetOutcome::Updated { .. }
        ));
        host.mutate_page(|doc| {
            let body = doc.body().unwrap();
            let div = doc.create_element("div");
            let t = doc.create_text("epoll update");
            doc.append_child(div, t).unwrap();
            doc.append_child(body, div).unwrap();
        })
        .unwrap();
        alice
            .poll_until_update(10, std::time::Duration::from_millis(20))
            .unwrap();
        let doc = alice.browser.doc.as_ref().unwrap();
        assert!(doc.text_content(doc.root()).contains("epoll update"));
        alice.act(UserAction::FormInput {
            form: "f".into(),
            field: "note".into(),
            value: "via epoll".into(),
        });
        alice.poll().unwrap();
        assert_eq!(
            host.form_fields("f"),
            vec![("note".to_string(), "via epoll".to_string())]
        );
        // Zero-copy accounting holds on the nonblocking write path too.
        assert_eq!(host.stats().body_bytes_copied, 0);
        host.shutdown();
    }

    #[test]
    fn full_session_on_sharded_backend() {
        // The same session flow on the sharded engine, with enough
        // participants to land on every event-loop shard: joins, polls,
        // a live mutation, and a co-fill merge must all behave exactly as
        // on the single-loop backends, with connections spread round-robin.
        if !rcb_http::server::EPOLL_SUPPORTED {
            return;
        }
        const SHARDS: usize = 2;
        let key = SessionKey::generate_deterministic(&mut DetRng::new(77));
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.url = Some(rcb_url::Url::parse("http://demo.local/").unwrap());
        browser.doc = Some(rcb_html::parse_document(PAGE));
        browser.mutate_dom(|_| {}).unwrap();
        let mut host = TcpHost::start_from_browser(
            "127.0.0.1:0",
            browser,
            key.clone(),
            AgentConfig::default(),
            ServerConfig::builder()
                .backend(ServerBackend::EpollSharded(SHARDS))
                .workers(2)
                .build(),
        )
        .unwrap();
        assert_eq!(host.backend(), ServerBackend::EpollSharded(SHARDS));
        let addr = host.addr().to_string();
        let mut participants: Vec<TcpParticipant> = (1..=4)
            .map(|pid| TcpParticipant::join(&addr, key.clone(), pid).unwrap())
            .collect();
        for p in &mut participants {
            assert!(matches!(p.poll().unwrap(), SnippetOutcome::Updated { .. }));
        }
        host.mutate_page(|doc| {
            let body = doc.body().unwrap();
            let div = doc.create_element("div");
            let t = doc.create_text("sharded update");
            doc.append_child(div, t).unwrap();
            doc.append_child(body, div).unwrap();
        })
        .unwrap();
        for p in &mut participants {
            p.poll_until_update(10, std::time::Duration::from_millis(20))
                .unwrap();
            let doc = p.browser.doc.as_ref().unwrap();
            assert!(doc.text_content(doc.root()).contains("sharded update"));
        }
        participants[0].act(UserAction::FormInput {
            form: "f".into(),
            field: "note".into(),
            value: "via shards".into(),
        });
        participants[0].poll().unwrap();
        assert_eq!(
            host.form_fields("f"),
            vec![("note".to_string(), "via shards".to_string())]
        );
        // Zero-copy accounting holds across shards, and the four
        // persistent connections were spread over both loops.
        assert_eq!(host.stats().body_bytes_copied, 0);
        let server = host.server_stats();
        assert_eq!(server.shards, SHARDS);
        assert_eq!(server.connections_accepted, 4);
        assert!(
            server.connections_per_shard.iter().all(|&c| c == 2),
            "round-robin spread, got {:?}",
            server.connections_per_shard
        );
        host.shutdown();
    }

    #[test]
    fn poll_without_pid_rejected_over_tcp() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let key = host.key().clone();
        let mut req = Request::post("/poll", crate::agent::build_poll_body(0, &[]));
        crate::auth::sign_request(&key, &mut req);
        let resp = rcb_http::client::send_request(&addr, &req).unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        assert_eq!(host.participant_count(), 0);
        assert_eq!(host.stats().bad_requests, 1);
        host.shutdown();
    }

    #[test]
    fn real_timestamps_are_epoch_millis() {
        let mut host = start_host();
        let now_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_millis() as u64;
        let doc_time = host.published_doc_time();
        // Within a minute of the real wall clock — and far beyond the old
        // `% 1_000_000_000` wrap ceiling.
        assert!(
            doc_time > 1_000_000_000,
            "doc_time {doc_time} looks wrapped"
        );
        assert!(doc_time.abs_diff(now_ms) < 60_000);
        host.shutdown();
    }

    #[test]
    fn cached_objects_served_from_snapshot_over_tcp() {
        use rcb_origin::OriginRegistry;
        use rcb_sim::link::Pipe;
        use rcb_sim::profiles::NetProfile;

        // A host browser that really navigated (cache filled from origin).
        let mut origins = OriginRegistry::with_alexa20();
        let profile = NetProfile::lan();
        let mut pipe = Pipe::new(profile.host_origin);
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser
            .navigate(
                &rcb_url::Url::parse("http://apple.com/").unwrap(),
                &mut origins,
                &mut pipe,
                &profile,
                SimTime::ZERO,
            )
            .unwrap();

        let key = SessionKey::generate_deterministic(&mut DetRng::new(79));
        let mut host = TcpHost::start_from_browser(
            "127.0.0.1:0",
            browser,
            key.clone(),
            AgentConfig::default(),
            ServerConfig::default(),
        )
        .unwrap();
        let addr = host.addr().to_string();
        let mut alice = TcpParticipant::join(&addr, key, 1).unwrap();
        let outcome = alice.poll().unwrap();
        let SnippetOutcome::Updated { object_urls, .. } = outcome else {
            panic!("expected initial sync");
        };
        assert!(!object_urls.is_empty(), "apple.com page has objects");
        assert!(object_urls.iter().all(|u| u.starts_with("/cache/")));
        // `poll` auto-fetched them over the same connection.
        assert_eq!(host.stats().object_requests as usize, object_urls.len());
        for u in &object_urls {
            assert!(alice.browser.cache.contains(u));
        }
        host.shutdown();
    }

    fn start_host_on(backend: ServerBackend) -> TcpHost {
        let key = SessionKey::generate_deterministic(&mut DetRng::new(77));
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.url = Some(rcb_url::Url::parse("http://demo.local/").unwrap());
        browser.doc = Some(rcb_html::parse_document(PAGE));
        browser.mutate_dom(|_| {}).unwrap();
        TcpHost::start_from_browser(
            "127.0.0.1:0",
            browser,
            key,
            AgentConfig::default(),
            ServerConfig::builder().backend(backend).workers(2).build(),
        )
        .unwrap()
    }

    fn park_backends() -> Vec<ServerBackend> {
        let mut backends = vec![ServerBackend::Workers];
        if rcb_http::server::EPOLL_SUPPORTED {
            backends.push(ServerBackend::Epoll);
            backends.push(ServerBackend::EpollSharded(2));
        }
        backends
    }

    #[test]
    fn parked_long_poll_wakes_on_mutation() {
        for backend in park_backends() {
            let mut host = start_host_on(backend);
            let addr = host.addr().to_string();
            let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
            alice.poll().unwrap(); // initial sync; now up to date
            alice.enable_long_poll(SimDuration::from_secs(5));
            let handle = {
                let host = host.clone_shared_for_test();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(120));
                    host.mutate_page(|doc| {
                        let body = doc.body().unwrap();
                        let div = doc.create_element("div");
                        let t = doc.create_text("parked wake");
                        doc.append_child(div, t).unwrap();
                        doc.append_child(body, div).unwrap();
                    })
                    .unwrap();
                })
            };
            let started = std::time::Instant::now();
            let outcome = alice.poll().unwrap();
            let elapsed = started.elapsed();
            handle.join().unwrap();
            assert!(
                matches!(outcome, SnippetOutcome::Updated { .. }),
                "{backend:?}: parked poll must complete with content"
            );
            let doc = alice.browser.doc.as_ref().unwrap();
            assert!(doc.text_content(doc.root()).contains("parked wake"));
            assert!(
                elapsed >= std::time::Duration::from_millis(100),
                "{backend:?}: poll returned before the mutation ({elapsed:?})"
            );
            assert!(
                elapsed < std::time::Duration::from_secs(4),
                "{backend:?}: wake took {elapsed:?}, looks like a timeout"
            );
            let stats = host.stats();
            assert_eq!(stats.polls_parked, 1, "{backend:?}");
            assert_eq!(stats.polls_woken, 1, "{backend:?}");
            assert_eq!(stats.polls_park_timeouts, 0, "{backend:?}");
            // The woken reply is the prefab snapshot wire image.
            assert_eq!(stats.body_bytes_copied, 0, "{backend:?}");
            host.shutdown();
        }
    }

    #[test]
    fn parked_delta_wake_completes_with_the_delta_prefab() {
        for backend in park_backends() {
            let mut host = start_host_on(backend);
            let addr = host.addr().to_string();
            let shared = host.clone_shared_for_test();
            let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
            alice.poll().unwrap(); // initial sync; now up to date
            alice.enable_long_poll(SimDuration::from_secs(5));
            alice.snippet.delta = true;
            let parked_version = shared.current_snapshot().dom_version;
            let handle = {
                let host = host.clone_shared_for_test();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(120));
                    host.mutate_page(|doc| {
                        let body = doc.body().unwrap();
                        let div = doc.create_element("div");
                        let t = doc.create_text("delta wake");
                        doc.append_child(div, t).unwrap();
                        doc.append_child(body, div).unwrap();
                    })
                    .unwrap();
                })
            };
            let outcome = alice.poll().unwrap();
            handle.join().unwrap();
            assert!(
                matches!(outcome, SnippetOutcome::Updated { .. }),
                "{backend:?}: woken delta poll must complete with content"
            );
            let doc = alice.browser.doc.as_ref().unwrap();
            assert!(doc.text_content(doc.root()).contains("delta wake"));
            assert_eq!(
                alice.snippet.deltas_applied, 1,
                "{backend:?}: the wake reply must be the delta, not full XML"
            );
            let stats = host.stats();
            assert_eq!(stats.polls_parked, 1, "{backend:?}");
            assert_eq!(stats.polls_woken, 1, "{backend:?}");
            assert_eq!(stats.polls_woken_delta, 1, "{backend:?}");
            assert_eq!(stats.delta_fallbacks, 0, "{backend:?}");
            // Delta is a prefab wire image like every other reply.
            assert_eq!(stats.body_bytes_copied, 0, "{backend:?}");
            // The reason the protocol exists: fewer bytes on the wire than
            // the full-XML wake for the same generation.
            let snap = shared.current_snapshot();
            let delta = snap.delta_response_for(parked_version).unwrap();
            assert!(
                delta.wire_len() < snap.poll_response().wire_len(),
                "{backend:?}: delta ({}) must be smaller than full ({})",
                delta.wire_len(),
                snap.poll_response().wire_len()
            );
            host.shutdown();
        }
    }

    #[test]
    fn parked_delta_wake_inlines_new_objects_in_one_batch() {
        for backend in park_backends() {
            let key = SessionKey::generate_deterministic(&mut DetRng::new(77));
            let mut browser = Browser::new(BrowserKind::Firefox);
            browser.url = Some(rcb_url::Url::parse("http://demo.local/").unwrap());
            browser.doc = Some(rcb_html::parse_document(PAGE));
            // The object the mutation will reference, already in the host
            // cache so the snapshot can mint an agent URL for it.
            browser.cache.store(
                "http://demo.local/pic.png",
                "image/png",
                b"PNG-BYTES".to_vec(),
                rcb_util::SimTime::ZERO,
            );
            browser.mutate_dom(|_| {}).unwrap();
            let mut host = TcpHost::start_from_browser(
                "127.0.0.1:0",
                browser,
                key,
                AgentConfig::default(),
                ServerConfig::builder().backend(backend).workers(2).build(),
            )
            .unwrap();
            let addr = host.addr().to_string();
            let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
            alice.poll().unwrap(); // initial sync; no objects yet
            alice.enable_long_poll(SimDuration::from_secs(5));
            alice.snippet.delta = true;
            let handle = {
                let host = host.clone_shared_for_test();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(120));
                    host.mutate_page(|doc| {
                        let body = doc.body().unwrap();
                        let img = doc.create_element_with_attrs(
                            "img",
                            vec![("src".to_string(), "http://demo.local/pic.png".to_string())],
                        );
                        doc.append_child(body, img).unwrap();
                    })
                    .unwrap();
                })
            };
            let outcome = alice.poll().unwrap();
            handle.join().unwrap();
            let SnippetOutcome::Updated { object_urls, .. } = outcome else {
                panic!("{backend:?}: woken batch poll must complete with content");
            };
            assert_eq!(
                object_urls.len(),
                1,
                "{backend:?}: the delta references the newly minted object"
            );
            assert!(object_urls[0].starts_with("/cache/"));
            // The object arrived inline in the multipart wake reply: it is
            // already cached under its minted URL, and no follow-up
            // `/cache/{key}` round trip ever hit the server.
            assert!(alice.browser.cache.contains(&object_urls[0]), "{backend:?}");
            let entry = alice.browser.cache.lookup(&object_urls[0]).unwrap();
            assert_eq!(entry.data.as_ref(), b"PNG-BYTES", "{backend:?}");
            assert_eq!(entry.content_type, "image/png", "{backend:?}");
            let stats = host.stats();
            assert_eq!(
                stats.object_requests, 0,
                "{backend:?}: batched reply must eliminate object round trips"
            );
            assert_eq!(stats.polls_woken_delta, 1, "{backend:?}");
            assert_eq!(stats.delta_fallbacks, 0, "{backend:?}");
            assert_eq!(alice.snippet.deltas_applied, 1, "{backend:?}");
            host.shutdown();
        }
    }

    #[test]
    fn object_request_without_token_material_is_400_everywhere() {
        // Missing `k=` and empty `k=` are the same malformed request; the
        // reply must be byte-identical across both spellings and all
        // backends (satellite regression: empty used to fall through to
        // token verification).
        let mut replies: Vec<(Status, String, Vec<u8>)> = Vec::new();
        for backend in park_backends() {
            let mut host = start_host_on(backend);
            let addr = host.addr().to_string();
            let mut opts = ClientOptions::with_read_timeout(std::time::Duration::from_secs(2));
            let mut conn = HttpConnection::connect_opts(&addr, &opts).unwrap();
            for target in ["/cache/0", "/cache/0?k="] {
                let resp = conn
                    .round_trip_opts(&rcb_http::Request::get(target), &mut opts)
                    .unwrap();
                assert_eq!(
                    resp.status,
                    Status::BAD_REQUEST,
                    "{backend:?} {target}: no token material is malformed, not 401/404"
                );
                assert_eq!(resp.body_str(), crate::auth::OBJECT_TOKEN_REQUIRED);
                replies.push((resp.status, target.to_string(), resp.body.to_vec()));
            }
            assert_eq!(host.stats().bad_requests, 2, "{backend:?}");
            host.shutdown();
        }
        // Same bytes regardless of spelling or backend.
        let first = &replies[0];
        for r in &replies[1..] {
            assert_eq!((r.0, &r.2), (first.0, &first.2));
        }
    }

    #[test]
    fn parked_long_poll_times_out_to_empty_reply() {
        for backend in park_backends() {
            let mut host = start_host_on(backend);
            let addr = host.addr().to_string();
            let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
            alice.poll().unwrap();
            alice.enable_long_poll(SimDuration::from_millis(200));
            let started = std::time::Instant::now();
            let outcome = alice.poll().unwrap();
            let elapsed = started.elapsed();
            assert!(
                matches!(outcome, SnippetOutcome::NoNewContent),
                "{backend:?}: timed-out park must fall back to the empty reply"
            );
            assert!(
                elapsed >= std::time::Duration::from_millis(150),
                "{backend:?}: park returned after only {elapsed:?}"
            );
            let stats = host.stats();
            assert_eq!(stats.polls_parked, 1, "{backend:?}");
            assert_eq!(stats.polls_woken, 0, "{backend:?}");
            assert_eq!(stats.polls_park_timeouts, 1, "{backend:?}");
            assert_eq!(stats.body_bytes_copied, 0, "{backend:?}");
            host.shutdown();
        }
    }

    #[test]
    fn park_cap_zero_degrades_long_polls_to_immediate_empty() {
        use rcb_http::server::OverloadConfig;
        for backend in park_backends() {
            let key = SessionKey::generate_deterministic(&mut DetRng::new(77));
            let mut browser = Browser::new(BrowserKind::Firefox);
            browser.url = Some(rcb_url::Url::parse("http://demo.local/").unwrap());
            browser.doc = Some(rcb_html::parse_document(PAGE));
            browser.mutate_dom(|_| {}).unwrap();
            let mut host = TcpHost::start_from_browser(
                "127.0.0.1:0",
                browser,
                key,
                AgentConfig::default(),
                ServerConfig::builder()
                    .backend(backend)
                    .workers(2)
                    .overload(OverloadConfig {
                        max_parked: 0,
                        ..OverloadConfig::default()
                    })
                    .build(),
            )
            .unwrap();
            let addr = host.addr().to_string();
            let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
            alice.poll().unwrap(); // initial sync; now up to date
            alice.enable_long_poll(SimDuration::from_secs(5));
            let started = std::time::Instant::now();
            let outcome = alice.poll().unwrap();
            let elapsed = started.elapsed();
            assert!(
                matches!(outcome, SnippetOutcome::NoNewContent),
                "{backend:?}: degraded park must equal the empty reply"
            );
            assert!(
                elapsed < std::time::Duration::from_secs(2),
                "{backend:?}: degraded park still waited {elapsed:?}"
            );
            let stats = host.stats();
            assert_eq!(
                stats.polls_parked, 1,
                "{backend:?}: the agent offered the park"
            );
            assert_eq!(stats.polls_shed_at_park_cap, 1, "{backend:?}");
            assert_eq!(host.server_stats().parks_shed, 1, "{backend:?}");
            host.shutdown();
        }
    }
}
