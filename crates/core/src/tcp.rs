//! Real-socket deployment of RCB-Agent.
//!
//! Everything else in this crate runs on simulated links; this module is
//! the "practical" half of the paper's claim: the agent served over real
//! `std::net` TCP (paper §3.1 step 1: "a co-browsing host starts running
//! RCB-Agent on the host browser with an open TCP port, e.g. 3000"), and
//! a participant joining with nothing but an HTTP client — exactly what a
//! regular browser plus Ajax-Snippet amounts to.

use std::sync::Arc;

use std::sync::Mutex;

use rcb_browser::{Browser, BrowserKind, UserAction};
use rcb_crypto::SessionKey;
use rcb_http::client::HttpConnection;
use rcb_http::server::{Handler, HttpServer};
use rcb_util::{RcbError, Result, SimDuration, SimTime};

use crate::agent::{AgentConfig, RcbAgent};
use crate::snippet::{AjaxSnippet, SnippetOutcome};

/// A live RCB host: the agent plus a host browser behind a real TCP port.
pub struct TcpHost {
    server: HttpServer,
    state: Arc<Mutex<HostState>>,
    key: SessionKey,
}

struct HostState {
    agent: RcbAgent,
    browser: Browser,
}

impl TcpHost {
    /// Starts the agent on `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port), with the host browser showing the given HTML document.
    pub fn start(addr: &str, page_url: &str, page_html: &str) -> Result<TcpHost> {
        let key = SessionKey::generate();
        Self::start_with_key(addr, page_url, page_html, key)
    }

    /// Starts with an explicit session key (tests use deterministic keys).
    pub fn start_with_key(
        addr: &str,
        page_url: &str,
        page_html: &str,
        key: SessionKey,
    ) -> Result<TcpHost> {
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.url = Some(rcb_url::Url::parse(page_url)?);
        browser.doc = Some(rcb_html::parse_document(page_html));
        browser.mutate_dom(|_| {}).expect("document just loaded");
        let agent = RcbAgent::new(key.clone(), AgentConfig::default());
        let state = Arc::new(Mutex::new(HostState { agent, browser }));
        let handler_state = Arc::clone(&state);
        let handler: Handler = Arc::new(move |req| {
            let mut st = handler_state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let HostState { agent, browser } = &mut *st;
            // Wall-clock now mapped onto the document-timestamp domain.
            let now = SimTime::from_millis(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0)
                    % 1_000_000_000,
            );
            agent.handle_request(&req, browser, now).response
        });
        let server = HttpServer::bind(addr, handler)?;
        Ok(TcpHost { server, state, key })
    }

    /// The bound address participants connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// The session key to share out of band.
    pub fn key(&self) -> &SessionKey {
        &self.key
    }

    /// Mutates the live host page (stands in for host-side browsing or
    /// page JavaScript); participants pick the change up on their next
    /// poll.
    pub fn mutate_page(&self, f: impl FnOnce(&mut rcb_html::Document)) -> Result<()> {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.browser.mutate_dom(f)
    }

    /// Number of participants the agent has seen.
    pub fn participant_count(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .agent
            .participants()
            .len()
    }

    /// Reads current host form field values (to observe merged co-fill
    /// data, as in the paper's Figure 10).
    pub fn form_fields(&self, form_id: &str) -> Vec<(String, String)> {
        let st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(doc) = st.browser.doc.as_ref() else {
            return Vec::new();
        };
        match rcb_html::query::element_by_id(doc, doc.root(), form_id) {
            Some(form) => rcb_html::query::form_fields(doc, form),
            None => Vec::new(),
        }
    }

    /// Stops the server.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

/// A participant joined over real TCP: a persistent connection, a browser
/// model, and snippet state.
pub struct TcpParticipant {
    conn: HttpConnection,
    /// The participant's browser model.
    pub browser: Browser,
    /// Snippet state (poll building, content application, M6 samples).
    pub snippet: AjaxSnippet,
}

impl TcpParticipant {
    /// Joins a session: connects, fetches the initial page (step 2), and
    /// instantiates the snippet with the out-of-band key.
    pub fn join(addr: &str, key: SessionKey, participant_id: u64) -> Result<TcpParticipant> {
        let mut conn = HttpConnection::connect(addr)?;
        let resp = conn.round_trip(&rcb_http::Request::get("/"))?;
        if !resp.status.is_success() {
            return Err(RcbError::Protocol(format!(
                "join failed with status {}",
                resp.status.0
            )));
        }
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.doc = Some(rcb_html::parse_document(&resp.body_str()));
        Ok(TcpParticipant {
            conn,
            browser,
            snippet: AjaxSnippet::new(participant_id, key, SimDuration::from_secs(1)),
        })
    }

    /// Queues an action to ride the next poll.
    pub fn act(&mut self, action: UserAction) {
        self.snippet.capture_action(action);
    }

    /// One poll round over the real socket. Returns the snippet outcome;
    /// on `Updated` also fetches agent-served objects through the same
    /// connection.
    pub fn poll(&mut self) -> Result<SnippetOutcome> {
        let req = self.snippet.build_poll();
        let resp = self.conn.round_trip(&req)?;
        let outcome = self.snippet.process_response(&resp, &mut self.browser)?;
        if let SnippetOutcome::Updated { object_urls, .. } = &outcome {
            for url in object_urls {
                if url.starts_with('/') && !self.browser.cache.contains(url) {
                    let obj = self.conn.round_trip(&rcb_http::Request::get(url.clone()))?;
                    if obj.status.is_success() {
                        let ct = obj.content_type().unwrap_or_default();
                        self.browser
                            .cache
                            .store(url, &ct, obj.body, SimTime::ZERO);
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// Convenience: polls until new content arrives or `attempts` polls
    /// pass (sleeping `interval` between them, like setTimeout).
    pub fn poll_until_update(
        &mut self,
        attempts: usize,
        interval: std::time::Duration,
    ) -> Result<SnippetOutcome> {
        for _ in 0..attempts {
            match self.poll()? {
                SnippetOutcome::NoNewContent => std::thread::sleep(interval),
                updated => return Ok(updated),
            }
        }
        Err(RcbError::Protocol("no update within poll budget".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_util::DetRng;

    const PAGE: &str = "<html><head><title>demo</title></head>\
        <body><h1 id=\"headline\">hello co-browsers</h1>\
        <form id=\"f\" action=\"/submit\"><input type=\"text\" name=\"note\" value=\"\"></form>\
        </body></html>";

    fn start_host() -> TcpHost {
        let key = SessionKey::generate_deterministic(&mut DetRng::new(77));
        TcpHost::start_with_key("127.0.0.1:0", "http://demo.local/", PAGE, key).unwrap()
    }

    #[test]
    fn participant_syncs_over_real_sockets() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
        let outcome = alice.poll().unwrap();
        assert!(matches!(outcome, SnippetOutcome::Updated { .. }));
        let doc = alice.browser.doc.as_ref().unwrap();
        assert!(doc.text_content(doc.root()).contains("hello co-browsers"));
        assert_eq!(host.participant_count(), 1);
        host.shutdown();
    }

    #[test]
    fn live_mutation_reaches_participant() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
        alice.poll().unwrap();
        host.mutate_page(|doc| {
            let body = doc.body().unwrap();
            let div = doc.create_element("div");
            let t = doc.create_text("breaking update");
            doc.append_child(div, t).unwrap();
            doc.append_child(body, div).unwrap();
        })
        .unwrap();
        let outcome = alice
            .poll_until_update(10, std::time::Duration::from_millis(20))
            .unwrap();
        assert!(matches!(outcome, SnippetOutcome::Updated { .. }));
        let doc = alice.browser.doc.as_ref().unwrap();
        assert!(doc.text_content(doc.root()).contains("breaking update"));
        host.shutdown();
    }

    #[test]
    fn form_cofill_merges_on_host_over_tcp() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
        alice.poll().unwrap();
        alice.act(UserAction::FormInput {
            form: "f".into(),
            field: "note".into(),
            value: "ship to NYC".into(),
        });
        alice.poll().unwrap();
        assert_eq!(
            host.form_fields("f"),
            vec![("note".to_string(), "ship to NYC".to_string())]
        );
        host.shutdown();
    }

    #[test]
    fn wrong_key_is_rejected_over_tcp() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let wrong = SessionKey::generate_deterministic(&mut DetRng::new(78));
        let mut eve = TcpParticipant::join(&addr, wrong, 9).unwrap();
        let err = eve.poll().unwrap_err();
        assert_eq!(err.category(), "protocol");
        assert_eq!(host.participant_count(), 0);
        host.shutdown();
    }

    #[test]
    fn multiple_participants_over_tcp() {
        let mut host = start_host();
        let addr = host.addr().to_string();
        let mut ps: Vec<TcpParticipant> = (1..=3)
            .map(|i| TcpParticipant::join(&addr, host.key().clone(), i).unwrap())
            .collect();
        for p in &mut ps {
            assert!(matches!(p.poll().unwrap(), SnippetOutcome::Updated { .. }));
        }
        assert_eq!(host.participant_count(), 3);
        host.shutdown();
    }
}
