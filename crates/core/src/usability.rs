//! The §5.2 usability study, reproduced with scripted role-players.
//!
//! The paper ran 10 pairs of human subjects through two scenarios —
//! coordinating a meeting spot on Google Maps and co-shopping at
//! Amazon.com — as 20 concrete tasks (Table 2), then collected a 16
//! question Likert questionnaire (Tables 3/4).
//!
//! Humans cannot be re-run, so this module does two separable things:
//!
//! 1. **Task execution is genuinely re-measured**: [`run_session`] drives
//!    the 20 tasks of Table 2 against the real RCB stack (maps app, shop
//!    app, agent, snippet, simulated users with think time) and records
//!    per-task success and duration. A failure anywhere (missed sync,
//!    broken form merge, lost action) fails the task — this is an
//!    end-to-end correctness harness, the same role the study played.
//! 2. **The questionnaire is a calibrated regeneration**: [`likert`]
//!    samples simulated subjects from the paper's published per-question
//!    response distributions (Table 4) so the reporting pipeline
//!    (median/mode/percentage summarization over merged positive and
//!    inverted negative questions) can be reproduced and printed. It is
//!    labelled as synthetic in EXPERIMENTS.md.

use rcb_browser::{BrowserKind, UserAction};
use rcb_origin::apps::maps::{MapsApp, Viewport};
use rcb_origin::apps::ShopApp;
use rcb_origin::OriginRegistry;
use rcb_sim::profiles::NetProfile;
use rcb_util::{Result, SimDuration};

use crate::agent::AgentConfig;
use crate::session::CoBrowsingWorld;

/// Hosts used by the study scenarios.
pub const MAPS_HOST: &str = "maps.example.com";
/// Shop host (the Amazon.com stand-in).
pub const SHOP_HOST: &str = "shop.example.com";

/// Result of one Table-2 task.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// Task id, matching Table 2 ("T1-B", "T1-A", ...).
    pub id: &'static str,
    /// Short description.
    pub description: &'static str,
    /// Whether the task's verification check passed.
    pub ok: bool,
    /// Virtual time the task consumed.
    pub duration: SimDuration,
}

/// Result of one full 20-task co-browsing session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Per-task outcomes, in Table-2 order.
    pub tasks: Vec<TaskResult>,
    /// Total virtual session time.
    pub total: SimDuration,
}

impl SessionResult {
    /// Whether every task succeeded.
    pub fn all_ok(&self) -> bool {
        self.tasks.iter().all(|t| t.ok)
    }
}

/// Builds the scenario world: maps + shop apps, LAN profile (the study ran
/// on two campus computers).
pub fn study_world(seed: u64) -> CoBrowsingWorld {
    let mut origins = OriginRegistry::new();
    origins.register(Box::new(MapsApp::new(MAPS_HOST)));
    origins.register(Box::new(ShopApp::new(SHOP_HOST)));
    CoBrowsingWorld::new(origins, NetProfile::lan(), AgentConfig::default(), seed)
}

/// Applies a maps viewport to the host page: swaps the tile-grid image
/// sources and fetches the new tiles — what the map page's JavaScript
/// does on pan/zoom/search (the URL never changes).
pub fn host_maps_set_viewport(world: &mut CoBrowsingWorld, vp: Viewport) -> Result<()> {
    let tiles = vp.tiles();
    world.host.browser.mutate_dom(move |doc| {
        let root = doc.root();
        let imgs = rcb_html::query::elements_by_tag(doc, root, "img");
        for (img, (x, y, z)) in imgs.into_iter().zip(tiles.iter()) {
            doc.set_attr(img, "src", Viewport::tile_path(*x, *y, *z));
            doc.set_attr(img, "id", format!("tile-{x}-{y}"));
        }
        if let Some(status) = rcb_html::query::element_by_id(doc, root, "status") {
            doc.clear_children(status);
            let t = doc.create_text(format!("viewport {} {} z{}", vp.x, vp.y, vp.z));
            doc.append_child(status, t).expect("status node attached");
        }
    })?;
    // The host browser fetches the new tiles (Ajax image loads).
    let refs = world.host.browser.supplementary_refs();
    let page = world.host.browser.url.clone().expect("maps page is loaded");
    let now = world.now;
    let (done, _, _, _) = {
        let host = &mut world.host;
        host.browser.fetch_objects(
            &page,
            &refs,
            &mut world.origins,
            &mut host.origin_pipe,
            &world.profile,
            now,
        )?
    };
    world.advance_to(done);
    Ok(())
}

/// True if the participant's current page shows the tile at the
/// north-west corner of `vp`.
fn participant_sees_viewport(world: &CoBrowsingWorld, idx: usize, vp: Viewport) -> bool {
    let Some(doc) = world.participants[idx].browser.doc.as_ref() else {
        return false;
    };
    let marker = format!("viewport {} {} z{}", vp.x, vp.y, vp.z);
    doc.text_content(doc.root()).contains(&marker)
}

fn participant_page_text(world: &CoBrowsingWorld, idx: usize) -> String {
    world.participants[idx]
        .browser
        .doc
        .as_ref()
        .map(|d| d.text_content(d.root()))
        .unwrap_or_default()
}

/// Runs one complete 20-task session (Table 2) with Bob hosting and Alice
/// participating. Think times are deterministic per `seed`.
pub fn run_session(seed: u64) -> Result<SessionResult> {
    let mut world = study_world(seed);
    let mut tasks: Vec<TaskResult> = Vec::new();
    let session_start = world.now;

    let task = |world: &mut CoBrowsingWorld,
                tasks: &mut Vec<TaskResult>,
                id: &'static str,
                description: &'static str,
                run: &mut dyn FnMut(&mut CoBrowsingWorld) -> Result<bool>|
     -> Result<()> {
        let start = world.now;
        world.think(4_000, 12_000); // read instructions, move mouse, type
        let ok = run(world)?;
        tasks.push(TaskResult {
            id,
            description,
            ok,
            duration: world.now.since(start),
        });
        Ok(())
    };

    // T1-B / T1-A: Bob starts the session; Alice joins via the agent URL.
    task(
        &mut world,
        &mut tasks,
        "T1-B",
        "Bob starts an RCB co-browsing session",
        &mut |w| Ok(w.host.agent.participants().is_empty()),
    )?;
    let alice = world.add_participant(BrowserKind::Firefox);
    task(
        &mut world,
        &mut tasks,
        "T1-A",
        "Alice joins with the agent URL",
        &mut |w| Ok(w.participants.len() == 1),
    )?;

    // T2-B / T2-A: Bob searches the Cartier address on the maps site.
    let cartier = MapsApp::geocode("653 5th Ave, New York");
    task(
        &mut world,
        &mut tasks,
        "T2-B",
        "Bob searches 653 5th Ave on Maps",
        &mut |w| {
            w.host_navigate(&format!(
                "http://{MAPS_HOST}/maps?q=653+5th+Ave%2C+New+York"
            ))?;
            Ok(true)
        },
    )?;
    task(
        &mut world,
        &mut tasks,
        "T2-A",
        "The map appears on Alice's browser",
        &mut |w| {
            w.poll_participant(alice)?;
            Ok(participant_sees_viewport(w, alice, cartier))
        },
    )?;

    // T3-B / T3-A: Bob zooms and pans; Alice's map follows.
    let panned = cartier.zoom_in().pan(1, 0);
    task(
        &mut world,
        &mut tasks,
        "T3-B",
        "Bob zooms in and drags the map",
        &mut |w| {
            host_maps_set_viewport(w, cartier.zoom_in())?;
            w.think(1_500, 4_000);
            host_maps_set_viewport(w, panned)?;
            Ok(true)
        },
    )?;
    task(
        &mut world,
        &mut tasks,
        "T3-A",
        "Alice's map updates automatically",
        &mut |w| {
            w.poll_participant(alice)?;
            Ok(participant_sees_viewport(w, alice, panned))
        },
    )?;

    // T4-B / T4-A: street view (a deeper zoom in this reproduction — the
    // paper notes Flash internals are NOT synchronized, only the page).
    let street = panned.zoom_in().zoom_in();
    task(
        &mut world,
        &mut tasks,
        "T4-B",
        "Bob opens the street-level view",
        &mut |w| {
            host_maps_set_viewport(w, street)?;
            Ok(true)
        },
    )?;
    task(
        &mut world,
        &mut tasks,
        "T4-A",
        "Street view appears on Alice's browser",
        &mut |w| {
            w.poll_participant(alice)?;
            Ok(participant_sees_viewport(w, alice, street))
        },
    )?;

    // T5-B / T5-A: agree on the meeting spot over the voice channel.
    task(
        &mut world,
        &mut tasks,
        "T5-B",
        "Bob points out the Cartier show-windows",
        &mut |w| {
            w.participant_action(alice, UserAction::MouseMove { x: 512, y: 384 });
            w.think(15_000, 40_000); // voice discussion
            Ok(true)
        },
    )?;
    task(
        &mut world,
        &mut tasks,
        "T5-A",
        "Alice agrees on the meeting spot",
        &mut |w| {
            w.poll_participant(alice)?;
            Ok(true)
        },
    )?;

    // T6-B / T6-A: Bob visits the shop homepage.
    task(
        &mut world,
        &mut tasks,
        "T6-B",
        "Bob visits the shop homepage",
        &mut |w| {
            w.host_navigate(&format!("http://{SHOP_HOST}/"))?;
            Ok(true)
        },
    )?;
    task(
        &mut world,
        &mut tasks,
        "T6-A",
        "Shop homepage shows on Alice's browser",
        &mut |w| {
            w.poll_participant(alice)?;
            Ok(participant_page_text(w, alice).contains("rcb-shop"))
        },
    )?;

    // T7-B / T7-A: Bob searches for a MacBook Air and opens a product.
    task(
        &mut world,
        &mut tasks,
        "T7-B",
        "Bob searches for a MacBook Air",
        &mut |w| {
            w.host_navigate(&format!("http://{SHOP_HOST}/search?q=macbook"))?;
            w.think(2_000, 6_000);
            w.host_navigate(&format!("http://{SHOP_HOST}/product/0"))?;
            Ok(true)
        },
    )?;
    task(
        &mut world,
        &mut tasks,
        "T7-A",
        "Pages update on Alice's browser",
        &mut |w| {
            w.poll_participant(alice)?;
            Ok(participant_page_text(w, alice).contains("MacBook"))
        },
    )?;

    // T8-B / T8-A: Alice drives — searches and picks a different laptop.
    task(
        &mut world,
        &mut tasks,
        "T8-B",
        "Bob asks Alice to choose a laptop",
        &mut |_| Ok(true),
    )?;
    task(
        &mut world,
        &mut tasks,
        "T8-A",
        "Alice searches and picks her laptop",
        &mut |w| {
            w.participant_action(
                alice,
                UserAction::Navigate {
                    url: format!("http://{SHOP_HOST}/search?q=macbook"),
                },
            );
            w.poll_participant(alice)?; // action rides this poll; host navigates
            w.sleep(SimDuration::from_secs(1));
            w.poll_participant(alice)?; // results sync back
            w.think(3_000, 9_000);
            w.participant_action(
                alice,
                UserAction::Navigate {
                    url: format!("http://{SHOP_HOST}/product/3"),
                },
            );
            w.poll_participant(alice)?;
            w.sleep(SimDuration::from_secs(1));
            w.poll_participant(alice)?;
            Ok(w.host
                .browser
                .url
                .as_ref()
                .is_some_and(|u| u.path == "/product/3")
                && participant_page_text(w, alice).contains("MacBook"))
        },
    )?;

    // T9-B / T9-A: Bob adds to cart and starts checkout; Alice co-fills
    // the shipping form from her browser.
    task(
        &mut world,
        &mut tasks,
        "T9-B",
        "Bob adds the laptop and starts checkout",
        &mut |w| {
            w.host_navigate(&format!("http://{SHOP_HOST}/cart/add?id=3"))?;
            w.host_navigate(&format!("http://{SHOP_HOST}/checkout"))?;
            Ok(w.host
                .browser
                .doc
                .as_ref()
                .is_some_and(|d| rcb_html::query::element_by_id(d, d.root(), "shipping").is_some()))
        },
    )?;
    task(
        &mut world,
        &mut tasks,
        "T9-A",
        "Alice fills the shipping address form",
        &mut |w| {
            w.poll_participant(alice)?; // checkout form syncs to Alice
            for (field, value) in [
                ("fullname", "Alice Cousin"),
                ("street", "653 5th Ave"),
                ("city", "New York"),
                ("zip", "10022"),
            ] {
                w.think(2_000, 5_000);
                w.participant_action(
                    alice,
                    UserAction::FormInput {
                        form: "shipping".into(),
                        field: field.into(),
                        value: value.into(),
                    },
                );
            }
            w.poll_participant(alice)?; // inputs merge into the host form
            let host_doc = w.host.browser.doc.as_ref().expect("host page loaded");
            let form = rcb_html::query::element_by_id(host_doc, host_doc.root(), "shipping")
                .expect("shipping form present");
            let fields = rcb_html::query::form_fields(host_doc, form);
            Ok(fields.contains(&("street".into(), "653 5th Ave".into()))
                && fields.contains(&("zip".into(), "10022".into())))
        },
    )?;

    // T10-B / T10-A: Bob completes checkout; Alice leaves.
    task(
        &mut world,
        &mut tasks,
        "T10-B",
        "Bob finishes the checkout",
        &mut |w| {
            w.host_submit_form("shipping")?;
            w.host_submit_form("confirm")?;
            Ok(w.host
                .browser
                .doc
                .as_ref()
                .is_some_and(|d| d.text_content(d.root()).contains("Order placed")))
        },
    )?;
    task(
        &mut world,
        &mut tasks,
        "T10-A",
        "Alice leaves the session",
        &mut |w| {
            w.poll_participant(alice)?;
            let saw_confirmation = participant_page_text(w, alice).contains("Order placed");
            w.remove_participant(alice);
            Ok(saw_confirmation && w.participants.is_empty())
        },
    )?;

    Ok(SessionResult {
        total: world.now.since(session_start),
        tasks,
    })
}

/// Runs the full study: `pairs` subject pairs, each completing two
/// sessions with swapped roles (the paper used 10 pairs → 20 sessions).
pub fn run_study(pairs: usize, seed: u64) -> Result<Vec<SessionResult>> {
    let mut out = Vec::with_capacity(pairs * 2);
    for pair in 0..pairs {
        for session in 0..2 {
            out.push(run_session(seed ^ ((pair as u64) << 8 | session as u64))?);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Likert questionnaire (Tables 3 and 4)
// ---------------------------------------------------------------------------

/// The five Likert answer categories.
pub const LIKERT_LEVELS: [&str; 5] = [
    "Strongly disagree",
    "Disagree",
    "Neither agree nor disagree",
    "Agree",
    "Strongly Agree",
];

/// One question group (positive + inverted negative), with the response
/// distribution published in Table 4 used to calibrate simulated subjects.
#[derive(Debug, Clone)]
pub struct LikertQuestion {
    /// Question id ("Q1" ... "Q8").
    pub id: &'static str,
    /// The positive phrasing (Table 3).
    pub positive: &'static str,
    /// Published response percentages (strongly-disagree → strongly-agree).
    pub paper_percent: [f64; 5],
}

/// The eight question groups of Table 3 with the Table-4 distributions.
pub fn questions() -> Vec<LikertQuestion> {
    vec![
        LikertQuestion {
            id: "Q1",
            positive: "It is helpful to use RCB to coordinate a meeting spot via Google Maps.",
            paper_percent: [0.0, 0.0, 7.5, 52.5, 40.0],
        },
        LikertQuestion {
            id: "Q2",
            positive: "It is helpful to use RCB to perform online co-shopping at Amazon.com.",
            paper_percent: [0.0, 0.0, 7.5, 52.5, 40.0],
        },
        LikertQuestion {
            id: "Q3",
            positive: "It is easy to use RCB to host the Google Maps scenario.",
            paper_percent: [5.0, 0.0, 5.0, 50.0, 40.0],
        },
        LikertQuestion {
            id: "Q4",
            positive: "It is easy to use RCB to host the online co-shopping scenario.",
            paper_percent: [0.0, 2.5, 7.5, 62.5, 27.5],
        },
        LikertQuestion {
            id: "Q5",
            positive: "It is easy to participate in the RCB Google Maps scenario.",
            paper_percent: [0.0, 2.5, 0.0, 62.5, 35.0],
        },
        LikertQuestion {
            id: "Q6",
            positive: "It is easy to participate in the RCB online co-shopping scenario.",
            paper_percent: [0.0, 5.0, 2.5, 57.5, 35.0],
        },
        LikertQuestion {
            id: "Q7",
            positive: "It would be helpful to use RCB on other co-browsing activities.",
            paper_percent: [0.0, 2.5, 5.0, 55.0, 37.5],
        },
        LikertQuestion {
            id: "Q8",
            positive: "I would like to use RCB in the future.",
            paper_percent: [0.0, 0.0, 15.0, 55.0, 30.0],
        },
    ]
}

/// Summary row of regenerated responses for one question.
#[derive(Debug, Clone)]
pub struct LikertSummary {
    /// Question id.
    pub id: &'static str,
    /// Observed percentages per category.
    pub percent: [f64; 5],
    /// Median category name.
    pub median: &'static str,
    /// Mode category name.
    pub mode: &'static str,
}

/// Regenerates the questionnaire: `subjects` simulated subjects answer
/// each group's positive question and its inverted negative twin; the
/// negative scores are mirrored about the neutral mark and merged, as the
/// paper's Table 4 does.
pub fn likert(subjects: usize, seed: u64) -> Vec<LikertSummary> {
    let mut rng = rcb_util::DetRng::new(seed);
    questions()
        .into_iter()
        .map(|q| {
            let mut counts = [0usize; 5];
            for _ in 0..subjects {
                // Positive question: sampled straight from the calibrated
                // distribution.
                let pos = rng.weighted_index(&q.paper_percent);
                counts[pos] += 1;
                // Negative twin: the subject answers the inverted
                // statement consistently (mirror category), with a small
                // chance of response-style noise toward neighbours.
                let mut neg = 4 - pos;
                if rng.chance(0.10) {
                    let drift: i64 = if rng.chance(0.5) { 1 } else { -1 };
                    neg = (neg as i64 + drift).clamp(0, 4) as usize;
                }
                // Merging inverts the negative back.
                counts[4 - neg] += 1;
            }
            let total = (subjects * 2) as f64;
            let mut percent = [0.0; 5];
            for (i, c) in counts.iter().enumerate() {
                percent[i] = *c as f64 / total * 100.0;
            }
            // Median by cumulative count; mode by max bucket.
            let mut cum = 0usize;
            let mut median_idx = 4;
            for (i, c) in counts.iter().enumerate() {
                cum += c;
                if cum * 2 >= subjects * 2 {
                    median_idx = i;
                    break;
                }
            }
            let mode_idx = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i)
                .unwrap_or(3);
            LikertSummary {
                id: q.id,
                percent,
                median: LIKERT_LEVELS[median_idx],
                mode: LIKERT_LEVELS[mode_idx],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_session_completes_all_twenty_tasks() {
        let result = run_session(1).unwrap();
        assert_eq!(result.tasks.len(), 20);
        for t in &result.tasks {
            assert!(t.ok, "task {} failed: {}", t.id, t.description);
        }
        assert!(result.all_ok());
    }

    #[test]
    fn task_ids_match_table2() {
        let result = run_session(2).unwrap();
        let ids: Vec<&str> = result.tasks.iter().map(|t| t.id).collect();
        assert_eq!(
            ids,
            vec![
                "T1-B", "T1-A", "T2-B", "T2-A", "T3-B", "T3-A", "T4-B", "T4-A", "T5-B", "T5-A",
                "T6-B", "T6-A", "T7-B", "T7-A", "T8-B", "T8-A", "T9-B", "T9-A", "T10-B", "T10-A"
            ]
        );
    }

    #[test]
    fn session_duration_is_study_scale() {
        // The paper: each pair averaged 10.8 minutes for two sessions, so
        // one session is ~5.4 minutes. Accept the right order of
        // magnitude: 2–12 minutes.
        let result = run_session(3).unwrap();
        let minutes = result.total.as_secs_f64() / 60.0;
        assert!(
            (2.0..12.0).contains(&minutes),
            "session took {minutes:.1} minutes"
        );
    }

    #[test]
    fn study_runs_multiple_pairs_deterministically() {
        let a = run_study(2, 9).unwrap();
        let b = run_study(2, 9).unwrap();
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.all_ok());
            assert_eq!(x.tasks.len(), y.tasks.len());
            // Think times and network timing are deterministic per seed;
            // only the real CPU costs (M5/M6, microseconds) may wiggle.
            let diff = x.total.as_micros().abs_diff(y.total.as_micros());
            assert!(diff < 50_000, "totals diverged by {diff} us");
        }
    }

    #[test]
    fn likert_distributions_match_paper_shape() {
        let summaries = likert(200, 7); // large N to tighten sampling noise
        assert_eq!(summaries.len(), 8);
        for (s, q) in summaries.iter().zip(questions()) {
            // Median and mode land on "Agree" for every question (Table 4).
            assert_eq!(s.mode, "Agree", "{}", s.id);
            assert_eq!(s.median, "Agree", "{}", s.id);
            // Percentages within sampling distance of the published ones.
            for i in 0..5 {
                assert!(
                    (s.percent[i] - q.paper_percent[i]).abs() < 8.0,
                    "{} category {i}: {} vs paper {}",
                    s.id,
                    s.percent[i],
                    q.paper_percent[i]
                );
            }
        }
    }

    #[test]
    fn likert_is_deterministic() {
        let a = likert(20, 5);
        let b = likert(20, 5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.percent, y.percent);
        }
    }
}
