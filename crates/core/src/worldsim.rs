//! The deterministic world sim: the real RCB stack over the seeded
//! in-process fabric.
//!
//! This module closes the loop the transport seam opened: the very same
//! agent pipeline the real-socket deployment serves ([`crate::tcp`]'s
//! `SharedHost` handler — snapshots, shards, prefab wire images, parked
//! long-polls) runs here against N simulated participants, with **zero
//! sockets, zero threads, and zero wall-clock sleeps**. Time is the
//! world's virtual clock, the network is [`rcb_sim::SimNet`] (seeded
//! latency/jitter/loss, partition/heal), and the server is the pump-mode
//! [`rcb_http::SimDriver`]. Two runs of the same [`WorldScenario`]
//! replay byte-identical traces and identical stats — which is what
//! makes protocol bugs (duplicate merges, lost wakes, reconnect storms)
//! reproducible from a single seed instead of a flaky CI run.
//!
//! The pieces:
//!
//! * [`WorldHost`] — `SharedHost` + [`SimDriver`] bound to a named
//!   fabric host: the production handler, pumped instead of threaded;
//! * [`WorldParticipant`] — a nonblocking participant state machine
//!   around the *real* [`AjaxSnippet`] and the *real* client framing
//!   ([`rcb_http::client::try_parse_response`]): join, poll, fetch
//!   objects, reconnect after partitions;
//! * [`ScriptEvent`] / [`WorldScenario`] — a closure-free, replayable
//!   scenario script (joins, actions, host mutations, partitions) plus
//!   the discrete-event runner that alternates "pump everything to
//!   quiescence" with "advance the clock to the next event";
//! * [`WorldReport`] — the run's outcome: host stats, convergence state,
//!   per-participant counters, and the fabric trace (the replay
//!   fingerprint).
//!
//! Client-side delivery is **at-most-once**: a poll lost to a partition
//! reset is not retransmitted (its piggybacked actions are gone, exactly
//! like a browser tab that lost its XHR), so any duplicate merge observed
//! on the host is the server's fault — which is precisely what the
//! partition/heal convergence test pins down via exact `dom_version`
//! accounting.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;

use rcb_browser::{Browser, BrowserKind, UserAction};
use rcb_crypto::SessionKey;
use rcb_http::client::try_parse_response;
use rcb_http::server::{OverloadConfig, ServerConfig, ServerStats};
use rcb_http::{Request, Response, SimDriver, Status};
use rcb_sim::{LinkModel, NetProfile, SimConn, World};
use rcb_util::{DetRng, RcbError, Result, SimDuration, SimTime};

use crate::agent::AgentConfig;
use crate::router::{session_prefix, RouterConfig, RouterStats, SessionFactory, SessionRouter};
use crate::snippet::{AjaxSnippet, SnippetOutcome};
use crate::tcp::{SharedHost, TcpHostStats};

/// How long a participant waits before retrying a connection after a
/// reset or a refused connect (partitions refuse until healed).
const RECONNECT_DELAY: SimDuration = SimDuration::from_secs(1);

/// The agent served over the fabric: the production `SharedHost` handler
/// pumped by a [`SimDriver`] instead of threaded engines.
pub struct WorldHost {
    shared: std::sync::Arc<SharedHost>,
    driver: SimDriver,
}

impl WorldHost {
    /// Binds the agent at fabric host `name`, with the host browser
    /// showing the given document. The driver runs on the world's clock
    /// and park hub, so parked long-polls wake on snapshot publication
    /// and time out on virtual deadlines.
    pub fn start(
        world: &World,
        name: &str,
        page_url: &str,
        page_html: &str,
        key: SessionKey,
    ) -> Result<WorldHost> {
        let mut browser = Browser::new(BrowserKind::Firefox);
        browser.url = Some(rcb_url::Url::parse(page_url)?);
        browser.doc = Some(rcb_html::parse_document(page_html));
        browser.mutate_dom(|_| {}).expect("document just loaded");
        Self::start_from_browser(world, name, browser, key)
    }

    /// Binds the agent around an already prepared host browser (e.g. one
    /// that navigated a simulated origin and filled its cache, so
    /// participants get `/cache/..` object URLs to fetch).
    pub fn start_from_browser(
        world: &World,
        name: &str,
        browser: Browser,
        key: SessionKey,
    ) -> Result<WorldHost> {
        Self::start_from_browser_with_overload(
            world,
            name,
            browser,
            key,
            OverloadConfig::from_env(),
        )
    }

    /// [`WorldHost::start_from_browser`] with explicit overload limits —
    /// how chaos scenarios tighten admission marks, park caps, and guard
    /// deadlines far below the production defaults.
    pub fn start_from_browser_with_overload(
        world: &World,
        name: &str,
        browser: Browser,
        key: SessionKey,
        overload: OverloadConfig,
    ) -> Result<WorldHost> {
        let config = ServerConfig::builder()
            .clock(world.clock())
            .overload(overload)
            .build();
        let shared = SharedHost::build(
            browser,
            key,
            AgentConfig::default(),
            std::sync::Arc::clone(&config.park_hub),
            config.clock.clone(),
        )?;
        let driver = SimDriver::new(world.bind(name)?, shared.make_handler(), &config);
        Ok(WorldHost { shared, driver })
    }

    /// One driver sweep; returns whether anything was served.
    pub fn pump(&mut self) -> bool {
        self.driver.pump()
    }

    /// Soonest parked long-poll deadline (folded into the runner's
    /// next-event computation).
    pub fn next_park_deadline(&self) -> Option<SimTime> {
        self.driver.next_park_deadline()
    }

    /// Soonest connection-guard deadline (header-read or idle). The
    /// scenario runner does *not* fold this in — guards fire during
    /// pumps the script already schedules — but chaos tests that drive
    /// raw connections advance to it explicitly.
    pub fn next_guard_deadline(&self) -> Option<SimTime> {
        self.driver.next_guard_deadline()
    }

    /// Engine-level overload counters (sheds, guard trips, oversize
    /// rejections) from the pump driver — the same [`ServerStats`] shape
    /// the threaded backends report.
    pub fn server_stats(&self) -> ServerStats {
        self.driver.server_stats()
    }

    /// Concurrent-path counters — the same [`TcpHostStats`] the socket
    /// deployment reports.
    pub fn stats(&self) -> TcpHostStats {
        self.shared.stats_snapshot()
    }

    /// Requests the driver has answered (parked polls on resolution).
    pub fn requests_served(&self) -> u64 {
        self.driver.requests_served()
    }

    /// The live host DOM version.
    pub fn dom_version(&self) -> u64 {
        self.shared.dom_version()
    }

    /// The published snapshot's document timestamp.
    pub fn published_doc_time(&self) -> u64 {
        self.shared.published_doc_time()
    }

    /// Participants the agent has seen.
    pub fn participant_count(&self) -> usize {
        self.shared.participant_count()
    }

    /// Mutates the live host page (snapshot regenerated + published, and
    /// the park hub signalled, before this returns).
    pub fn mutate_page(&self, f: impl FnOnce(&mut rcb_html::Document)) -> Result<()> {
        self.shared.mutate_page(f)
    }

    /// Current host form field values (merged co-fill data).
    pub fn form_fields(&self, form_id: &str) -> Vec<(String, String)> {
        self.shared.form_fields(form_id)
    }
}

/// Many isolated sessions served over the fabric by one pump driver: a
/// [`SessionRouter`]'s handler bound to a named world host — the
/// deterministic twin of [`crate::router::RouterHost`]. Participants
/// join specific sessions with [`WorldParticipant::new_in_session`];
/// everything stays on the world's virtual clock and seeded fabric, so
/// multi-tenant scenarios (one session storming, another quiet) replay
/// byte-identically from a seed.
pub struct WorldRouterHost {
    router: std::sync::Arc<SessionRouter>,
    driver: SimDriver,
}

impl WorldRouterHost {
    /// Binds a router at fabric host `name`. The serving driver runs on
    /// the world's clock; the router's park hub is the driver's hub, so
    /// each session's parked long-polls wake on that session's channel.
    pub fn start(
        world: &World,
        name: &str,
        factory: SessionFactory,
        agent_config: AgentConfig,
        router_config: RouterConfig,
    ) -> Result<WorldRouterHost> {
        let config = ServerConfig::builder().clock(world.clock()).build();
        let router = SessionRouter::new(
            factory,
            agent_config,
            router_config,
            std::sync::Arc::clone(&config.park_hub),
            config.clock.clone(),
        );
        let driver = SimDriver::new(world.bind(name)?, router.make_handler(), &config);
        Ok(WorldRouterHost { router, driver })
    }

    /// The session layer (create/look up sessions, eviction, stats).
    pub fn router(&self) -> &std::sync::Arc<SessionRouter> {
        &self.router
    }

    /// One driver sweep; returns whether anything was served.
    pub fn pump(&mut self) -> bool {
        self.driver.pump()
    }

    /// Soonest parked long-poll deadline across every session.
    pub fn next_park_deadline(&self) -> Option<SimTime> {
        self.driver.next_park_deadline()
    }

    /// Two-tier router statistics (aggregate + outlier sessions).
    pub fn stats(&self) -> RouterStats {
        self.router.stats()
    }

    /// Engine-level counters from the pump driver.
    pub fn server_stats(&self) -> ServerStats {
        self.driver.server_stats()
    }

    /// Requests the driver has answered (parked polls on resolution).
    pub fn requests_served(&self) -> u64 {
        self.driver.requests_served()
    }
}

/// What a participant's in-flight request is waiting for.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Await {
    /// Idle — nothing on the wire.
    None,
    /// The initial `GET /` join.
    Join,
    /// A `POST /poll` (possibly parked server-side).
    Poll,
    /// A `GET /cache/..` object fetch for the given agent URL.
    Object(String),
}

/// A simulated participant: the real [`AjaxSnippet`] and client framing
/// driven as a nonblocking state machine the scenario loop pumps.
pub struct WorldParticipant {
    /// Fabric host name (`p{pid}`).
    name: String,
    /// Fabric host name of the agent.
    agent_host: String,
    /// Session path prefix (`""` for the classic single-session host,
    /// `/s/{sid}` when joined through a [`WorldRouterHost`]).
    prefix: String,
    link: LinkModel,
    conn: Option<SimConn>,
    /// Bytes read off the conn, not yet framed into a response.
    buf: Vec<u8>,
    awaiting: Await,
    /// Agent object URLs still to fetch after an update.
    obj_queue: VecDeque<String>,
    /// When idle or disconnected: the next time this participant acts.
    next_wake: Option<SimTime>,
    joined: bool,
    /// The participant's browser model.
    pub browser: Browser,
    /// Snippet state (poll building, content application, M6 samples).
    pub snippet: AjaxSnippet,
    /// Polls answered (a parked poll counts when its reply arrives).
    pub polls_completed: u64,
    /// Objects fetched into the browser cache.
    pub objects_fetched: u64,
    /// Connections lost (reset, refused, or server-closed) and retried.
    pub resets: u64,
    /// `503` shed replies absorbed (each schedules a jittered backoff
    /// retry instead of surfacing as an error).
    pub sheds: u64,
    /// Virtual-time round-trip of every completed poll, in microseconds
    /// (send to reply; a parked long-poll's wait counts). Deterministic,
    /// so fairness assertions can gate percentiles of it exactly.
    pub poll_latencies: Vec<u64>,
    /// When the in-flight poll was sent (feeds `poll_latencies`).
    poll_sent_at: Option<SimTime>,
    /// Seeded jitter for shed backoff (per participant, so a cohort shed
    /// together fans back out).
    retry: DetRng,
    /// Consecutive sheds since the last successful reply — the exponent
    /// of the backoff.
    consecutive_sheds: u32,
}

impl WorldParticipant {
    /// Creates a participant that will join `agent_host` over `link` the
    /// next time it is pumped.
    pub fn new(
        pid: u64,
        key: SessionKey,
        agent_host: &str,
        link: LinkModel,
        poll_interval: SimDuration,
    ) -> WorldParticipant {
        WorldParticipant {
            name: format!("p{pid}"),
            agent_host: agent_host.to_string(),
            prefix: String::new(),
            link,
            conn: None,
            buf: Vec::new(),
            awaiting: Await::None,
            obj_queue: VecDeque::new(),
            next_wake: None,
            joined: false,
            browser: Browser::new(BrowserKind::Firefox),
            snippet: AjaxSnippet::new(pid, key, poll_interval),
            polls_completed: 0,
            objects_fetched: 0,
            resets: 0,
            sheds: 0,
            retry: DetRng::new(0x5ced_ba11 ^ pid),
            consecutive_sheds: 0,
            poll_latencies: Vec::new(),
            poll_sent_at: None,
        }
    }

    /// [`WorldParticipant::new`] scoped to one routed session: the join
    /// GET and every poll/object target live under `/s/{sid}` (and are
    /// therefore HMAC-bound to that session).
    pub fn new_in_session(
        pid: u64,
        key: SessionKey,
        agent_host: &str,
        link: LinkModel,
        poll_interval: SimDuration,
        sid: &str,
    ) -> WorldParticipant {
        let mut p = WorldParticipant::new(pid, key, agent_host, link, poll_interval);
        p.prefix = session_prefix(sid);
        p.snippet.base_path = p.prefix.clone();
        p
    }

    /// Queues an action to ride the next poll (sent on the next pump).
    pub fn act(&mut self, action: UserAction) {
        self.snippet.capture_action(action);
    }

    /// When this participant next acts on its own (reconnect backoff or
    /// the poll-interval timer); `None` while a response is in flight.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.next_wake
    }

    /// One nonblocking service pass: (re)connect if due, drain arrived
    /// bytes, handle complete responses, send the next request. Returns
    /// whether anything happened.
    pub fn pump(&mut self, world: &World) -> Result<bool> {
        let now = world.now();
        if self.conn.is_none() {
            if self.next_wake.is_none_or(|t| t <= now) {
                match world.connect(&self.name, &self.agent_host, self.link) {
                    Ok(conn) => {
                        self.conn = Some(conn);
                        self.next_wake = None;
                        if self.joined {
                            self.send_poll(now);
                        } else {
                            let target = format!("{}/", self.prefix);
                            self.send(now, &Request::get(target), Await::Join);
                        }
                        return Ok(true);
                    }
                    Err(_) => {
                        // Refused (partitioned): back off and retry.
                        self.next_wake = Some(now + RECONNECT_DELAY);
                    }
                }
            }
            return Ok(false);
        }
        let mut progress = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let conn = self.conn.as_mut().expect("checked above");
            match conn.try_read(&mut chunk) {
                Ok(0) => {
                    // Server closed; reconnect like a browser would.
                    self.on_disconnect(now);
                    return Ok(true);
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    progress = true;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Reset (partition): the in-flight request is lost.
                    self.on_disconnect(now);
                    return Ok(true);
                }
            }
        }
        while let Some((resp, consumed)) = try_parse_response(&self.buf)? {
            self.buf.drain(..consumed);
            progress = true;
            self.handle_response(resp, now)?;
            if self.conn.is_none() {
                return Ok(true);
            }
        }
        // Idle with a due timer or actions to deliver: poll now (or
        // retry a shed join — the only way `joined` can still be false
        // on a live connection).
        if self.awaiting == Await::None
            && (self.next_wake.is_some_and(|t| t <= now)
                || (self.joined && self.snippet.pending_actions() > 0))
        {
            self.next_wake = None;
            if self.joined {
                self.send_poll(now);
            } else {
                let target = format!("{}/", self.prefix);
                self.send(now, &Request::get(target), Await::Join);
            }
            progress = true;
        }
        Ok(progress)
    }

    fn handle_response(&mut self, resp: Response, now: SimTime) -> Result<()> {
        // A shed (`503 + Retry-After`) is absorbed before request-type
        // dispatch: whatever was in flight, back off (server floor plus
        // seeded jitter, exponential in consecutive sheds) and let the
        // wake timer reissue it — a shed join re-joins, a shed poll
        // re-polls, a shed object fetch is re-queued.
        if resp.status == Status::SERVICE_UNAVAILABLE {
            let was = std::mem::replace(&mut self.awaiting, Await::None);
            if let Await::Object(url) = was {
                self.obj_queue.push_front(url);
            }
            self.poll_sent_at = None;
            self.sheds += 1;
            let delay = self.shed_delay(resp.retry_after());
            self.consecutive_sheds = self.consecutive_sheds.saturating_add(1);
            self.next_wake = Some(now + delay);
            return Ok(());
        }
        self.consecutive_sheds = 0;
        match std::mem::replace(&mut self.awaiting, Await::None) {
            Await::Join => {
                if !resp.status.is_success() {
                    return Err(RcbError::Protocol(format!(
                        "join failed with status {}",
                        resp.status.0
                    )));
                }
                self.browser.doc = Some(rcb_html::parse_document(&resp.body_str()));
                self.joined = true;
                self.send_poll(now);
                Ok(())
            }
            Await::Poll => {
                let outcome = self.snippet.process_response(&resp, &mut self.browser)?;
                if let Some(sent) = self.poll_sent_at.take() {
                    self.poll_latencies.push((now - sent).as_micros());
                }
                self.polls_completed += 1;
                if let SnippetOutcome::Updated { object_urls, .. } = outcome {
                    for url in object_urls {
                        if url.starts_with('/') && !self.browser.cache.contains(&url) {
                            self.obj_queue.push_back(url);
                        }
                    }
                }
                self.continue_round(now);
                Ok(())
            }
            Await::Object(url) => {
                if resp.status.is_success() {
                    let ct = resp.content_type().unwrap_or_default();
                    self.browser
                        .cache
                        .store(&url, &ct, resp.body, SimTime::ZERO);
                    self.objects_fetched += 1;
                }
                self.continue_round(now);
                Ok(())
            }
            Await::None => Err(RcbError::Protocol(
                "response arrived with no request outstanding".into(),
            )),
        }
    }

    /// After a poll or object reply: fetch the next queued object, or
    /// schedule/send the next poll (immediately under long-poll or with
    /// actions pending, after `poll_interval` otherwise).
    fn continue_round(&mut self, now: SimTime) {
        if let Some(url) = self.obj_queue.pop_front() {
            let req = Request::get(url.clone());
            self.send(now, &req, Await::Object(url));
        } else if self.snippet.long_poll.is_some() || self.snippet.pending_actions() > 0 {
            self.send_poll(now);
        } else {
            self.next_wake = Some(now + self.snippet.poll_interval);
        }
    }

    fn send_poll(&mut self, now: SimTime) {
        let req = self.snippet.build_poll();
        self.poll_sent_at = Some(now);
        self.send(now, &req, Await::Poll);
    }

    /// Writes one request; a failed write (reset under our feet) tears
    /// the connection down for the reconnect path.
    fn send(&mut self, now: SimTime, req: &Request, awaiting: Await) {
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        match conn.write_all(&rcb_http::serialize::serialize_request(req)) {
            Ok(()) => self.awaiting = awaiting,
            Err(_) => self.on_disconnect(now),
        }
    }

    /// Backoff before retrying after a shed: the server's `Retry-After`
    /// is a floor with additive jitter; without one, exponential from
    /// 100 ms (capped at 6.4 s), half-jittered. All virtual time — no
    /// thread ever sleeps.
    fn shed_delay(&mut self, retry_after: Option<u64>) -> SimDuration {
        let base_ms = 100u64 << self.consecutive_sheds.min(6);
        match retry_after {
            Some(secs) => {
                SimDuration::from_millis(secs * 1000 + self.retry.next_below(base_ms + 1))
            }
            None => SimDuration::from_millis(base_ms / 2 + self.retry.next_below(base_ms / 2 + 1)),
        }
    }

    fn on_disconnect(&mut self, now: SimTime) {
        self.conn = None;
        self.awaiting = Await::None;
        self.poll_sent_at = None;
        self.buf.clear();
        self.obj_queue.clear();
        self.resets += 1;
        self.next_wake = Some(now + RECONNECT_DELAY);
    }
}

/// One scripted occurrence in a [`WorldScenario`] — data, not closures,
/// so a scenario can be run twice for replay comparison.
#[derive(Debug, Clone)]
pub enum ScriptEvent {
    /// A participant joins the session.
    Join {
        /// Participant id (also names the fabric host `p{pid}`).
        pid: u64,
    },
    /// The participant switches its polls to parked long-polls.
    EnableLongPoll {
        /// Participant id.
        pid: u64,
        /// Requested park duration (capped by the agent).
        wait: SimDuration,
    },
    /// The participant starts advertising delta capability (`d=1` on
    /// every later poll): a woken park may answer with a
    /// `deltaContent` (or batch) reply instead of the full XML.
    EnableDelta {
        /// Participant id.
        pid: u64,
    },
    /// The participant performs a user action (rides its next poll).
    Act {
        /// Participant id.
        pid: u64,
        /// The action.
        action: UserAction,
    },
    /// The host appends a `<div>` with this text to its page body.
    HostAppend {
        /// Text content of the appended element.
        text: String,
    },
    /// Cuts the listed participants off from the host.
    Partition {
        /// Participant ids to isolate.
        pids: Vec<u64>,
    },
    /// Heals the listed participants' links to the host.
    Heal {
        /// Participant ids to reconnect.
        pids: Vec<u64>,
    },
}

/// Per-participant outcome of a run (equality-comparable for replay
/// tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParticipantReport {
    /// Content timestamp the participant's snippet acknowledges.
    pub doc_time: u64,
    /// Polls answered.
    pub polls_completed: u64,
    /// Content updates applied.
    pub updates_applied: u64,
    /// Of those, updates that arrived as delta-encoded wake payloads.
    pub deltas_applied: u64,
    /// Objects fetched.
    pub objects_fetched: u64,
    /// Connections lost and retried.
    pub resets: u64,
    /// `503` shed replies absorbed and retried with backoff.
    pub sheds: u64,
}

/// Everything a finished [`WorldScenario`] run reports. `PartialEq` so
/// a replay test is one assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldReport {
    /// Virtual time when the run went quiescent.
    pub end: SimTime,
    /// Host-side request counters.
    pub stats: TcpHostStats,
    /// Engine-level overload counters (sheds, guard trips, oversize
    /// rejections) from the pump driver.
    pub server: ServerStats,
    /// Requests the driver answered.
    pub requests_served: u64,
    /// Final host DOM version (exact merge accounting).
    pub host_dom_version: u64,
    /// Final published document timestamp.
    pub host_doc_time: u64,
    /// Per-participant outcomes, keyed by pid.
    pub participants: BTreeMap<u64, ParticipantReport>,
    /// The fabric + scenario trace — the replay fingerprint: two
    /// same-seed runs must produce this byte-identically.
    pub trace: Vec<String>,
}

/// A seeded, scripted co-browsing scenario: the entry point of the
/// deterministic world sim.
///
/// ```no_run
/// use rcb_core::worldsim::{ScriptEvent, WorldScenario};
/// use rcb_util::SimDuration;
///
/// let mut sc = WorldScenario::new(42, "http://demo.local/", "<html>...</html>");
/// sc.at(SimDuration::ZERO, ScriptEvent::Join { pid: 1 });
/// sc.at(
///     SimDuration::from_secs(2),
///     ScriptEvent::HostAppend { text: "breaking news".into() },
/// );
/// let report = sc.run().unwrap();
/// assert_eq!(report, sc.run().unwrap(), "same seed, same world");
/// ```
#[derive(Debug, Clone)]
pub struct WorldScenario {
    /// Seed for every random draw (fabric jitter/loss, session key).
    pub seed: u64,
    /// URL the host browser shows.
    pub page_url: String,
    /// Document the host browser shows.
    pub page_html: String,
    /// When set, the host browser first *navigates* this URL against the
    /// simulated origin registry (filling its cache, so the generated
    /// content carries `/cache/..` object URLs participants fetch back
    /// through the agent) instead of parsing `page_html` directly.
    pub origin_url: Option<String>,
    /// Network environment; `participant_link()` shapes every
    /// participant↔host connection.
    pub profile: NetProfile,
    /// Snippet poll interval (the paper used 1 s).
    pub poll_interval: SimDuration,
    /// Virtual-time horizon: no event past it is processed.
    pub horizon: SimDuration,
    /// `None`: advance exactly event-to-event (finest replay traces).
    /// `Some(q)`: advance in fixed quanta of `q`, coalescing fabric
    /// events per tick — O(horizon/q) sweeps regardless of event count,
    /// which is what makes thousand-participant scenarios run in
    /// wall-clock seconds. Both modes are fully deterministic.
    pub tick: Option<SimDuration>,
    /// Overload limits for the host's serving driver; `None` uses the
    /// environment defaults. Chaos scenarios set tight marks here
    /// (e.g. `queue_high_water` far below the storm size) to force
    /// deterministic shedding.
    pub overload: Option<OverloadConfig>,
    /// The scripted events (sorted by time at run start; same-time
    /// events keep insertion order).
    pub script: Vec<(SimTime, ScriptEvent)>,
}

impl WorldScenario {
    /// A scenario with the environment defaults: WAN profile, 1 s polls,
    /// 30 s horizon, exact event stepping, empty script.
    pub fn new(seed: u64, page_url: &str, page_html: &str) -> WorldScenario {
        WorldScenario {
            seed,
            page_url: page_url.to_string(),
            page_html: page_html.to_string(),
            origin_url: None,
            profile: NetProfile::wan(),
            poll_interval: SimDuration::from_secs(1),
            horizon: SimDuration::from_secs(30),
            tick: None,
            overload: None,
            script: Vec::new(),
        }
    }

    /// Sets explicit overload limits for the host's serving driver.
    pub fn with_overload(&mut self, overload: OverloadConfig) -> &mut WorldScenario {
        self.overload = Some(overload);
        self
    }

    /// Schedules `event` at virtual offset `t`.
    pub fn at(&mut self, t: SimDuration, event: ScriptEvent) -> &mut WorldScenario {
        self.script.push((SimTime::ZERO + t, event));
        self
    }

    /// Runs the scenario to quiescence (or the horizon) and reports.
    /// `&self`: the same scenario value can run twice for a replay
    /// comparison.
    pub fn run(&self) -> Result<WorldReport> {
        let world = World::new(self.seed);
        let key =
            SessionKey::generate_deterministic(&mut DetRng::new(self.seed ^ 0x5eed_5e55_1040_e100));
        let overload = self
            .overload
            .clone()
            .unwrap_or_else(OverloadConfig::from_env);
        let browser = match &self.origin_url {
            Some(url) => {
                // A host that really navigated: its cache holds the
                // page's supplementary objects, so generated content
                // rewrites their URLs to agent `/cache/..` paths.
                let mut origins = rcb_origin::OriginRegistry::with_alexa20();
                let mut pipe = rcb_sim::link::Pipe::new(self.profile.host_origin);
                let mut browser = Browser::new(BrowserKind::Firefox);
                browser.navigate(
                    &rcb_url::Url::parse(url)?,
                    &mut origins,
                    &mut pipe,
                    &self.profile,
                    SimTime::ZERO,
                )?;
                browser
            }
            None => {
                let mut browser = Browser::new(BrowserKind::Firefox);
                browser.url = Some(rcb_url::Url::parse(&self.page_url)?);
                browser.doc = Some(rcb_html::parse_document(&self.page_html));
                browser.mutate_dom(|_| {}).expect("document just loaded");
                browser
            }
        };
        let mut host = WorldHost::start_from_browser_with_overload(
            &world,
            "host",
            browser,
            key.clone(),
            overload,
        )?;
        let mut participants: BTreeMap<u64, WorldParticipant> = BTreeMap::new();
        let mut script = self.script.clone();
        script.sort_by_key(|&(t, _)| t); // stable: same-time order kept
        let horizon = SimTime::ZERO + self.horizon;
        let mut cursor = 0usize;
        loop {
            // 1. Fire everything the script schedules at or before now.
            while cursor < script.len() && script[cursor].0 <= world.now() {
                let event = script[cursor].1.clone();
                cursor += 1;
                apply_event(&world, &mut host, &mut participants, &key, self, event)?;
            }
            // 2. Pump host and participants to quiescence.
            loop {
                let mut progress = false;
                while host.pump() {
                    progress = true;
                }
                for p in participants.values_mut() {
                    progress |= p.pump(&world)?;
                }
                if !progress {
                    break;
                }
            }
            // 3. Advance to the next thing that can happen.
            let next = match self.tick {
                Some(q) => {
                    // Quantized stepping: stop once nothing is pending.
                    let pending = cursor < script.len()
                        || world.next_event_time().is_some()
                        || host.next_park_deadline().is_some()
                        || participants.values().any(|p| p.next_wake().is_some());
                    pending.then(|| world.now() + q)
                }
                None => {
                    let mut next = script.get(cursor).map(|&(t, _)| t);
                    let mut fold = |t: Option<SimTime>| {
                        next = match (next, t) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                    };
                    fold(world.next_event_time());
                    fold(host.next_park_deadline());
                    for p in participants.values() {
                        fold(p.next_wake());
                    }
                    next
                }
            };
            match next {
                Some(t) if t <= horizon => {
                    // Guard against a same-instant target: always move.
                    let target = t.max(world.now() + SimDuration::from_micros(1));
                    world.advance_to(target);
                }
                _ => break,
            }
        }
        Ok(WorldReport {
            end: world.now(),
            stats: host.stats(),
            server: host.server_stats(),
            requests_served: host.requests_served(),
            host_dom_version: host.dom_version(),
            host_doc_time: host.published_doc_time(),
            participants: participants
                .iter()
                .map(|(&pid, p)| {
                    (
                        pid,
                        ParticipantReport {
                            doc_time: p.snippet.doc_time,
                            polls_completed: p.polls_completed,
                            updates_applied: p.snippet.updates_applied,
                            deltas_applied: p.snippet.deltas_applied,
                            objects_fetched: p.objects_fetched,
                            resets: p.resets,
                            sheds: p.sheds,
                        },
                    )
                })
                .collect(),
            trace: world.trace(),
        })
    }
}

fn apply_event(
    world: &World,
    host: &mut WorldHost,
    participants: &mut BTreeMap<u64, WorldParticipant>,
    key: &SessionKey,
    scenario: &WorldScenario,
    event: ScriptEvent,
) -> Result<()> {
    match event {
        ScriptEvent::Join { pid } => {
            world.note(&format!("script join p{pid}"));
            participants.insert(
                pid,
                WorldParticipant::new(
                    pid,
                    key.clone(),
                    "host",
                    scenario.profile.participant_link(),
                    scenario.poll_interval,
                ),
            );
        }
        ScriptEvent::EnableLongPoll { pid, wait } => {
            if let Some(p) = participants.get_mut(&pid) {
                p.snippet.long_poll = Some(wait);
            }
        }
        ScriptEvent::EnableDelta { pid } => {
            if let Some(p) = participants.get_mut(&pid) {
                p.snippet.delta = true;
            }
        }
        ScriptEvent::Act { pid, action } => {
            world.note(&format!("script act p{pid}"));
            if let Some(p) = participants.get_mut(&pid) {
                p.act(action);
            }
        }
        ScriptEvent::HostAppend { text } => {
            world.note(&format!("script host-append {text:?}"));
            host.mutate_page(|doc| {
                let body = doc.body().expect("host page has a body");
                let div = doc.create_element("div");
                let t = doc.create_text(text);
                doc.append_child(div, t).expect("fresh div");
                doc.append_child(body, div).expect("host body");
            })?;
        }
        ScriptEvent::Partition { pids } => {
            for pid in pids {
                world.partition(&format!("p{pid}"), "host");
            }
        }
        ScriptEvent::Heal { pids } => {
            for pid in pids {
                world.heal(&format!("p{pid}"), "host");
            }
        }
    }
    Ok(())
}
