//! Concurrent real-TCP stress tests for the snapshot-based agent.
//!
//! The tentpole property under test: with N participants polling in
//! parallel threads while the host page mutates, every participant
//! converges to the final content, polls overlap inside the agent
//! (nothing serializes the read path behind a global lock or behind
//! content generation), content is generated once per DOM version rather
//! than once per poll, and agent memory stays bounded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rcb_core::agent::{AgentConfig, LIVE_GENERATIONS};
use rcb_core::tcp::{TcpHost, TcpParticipant};
use rcb_crypto::SessionKey;
use rcb_http::server::ServerConfig;
use rcb_util::DetRng;

const PAGE: &str = "<html><head><title>stress</title></head>\
    <body><h1 id=\"headline\">round zero</h1></body></html>";

const PARTICIPANTS: u64 = 8;
const MUTATIONS: usize = 20;
const FINAL_MARKER: &str = "final-round-marker";

#[test]
fn eight_participants_poll_in_parallel_and_converge() {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(90));
    let mut browser = rcb_browser::Browser::new(rcb_browser::BrowserKind::Firefox);
    browser.url = Some(rcb_url::Url::parse("http://stress.local/").unwrap());
    browser.doc = Some(rcb_html::parse_document(PAGE));
    browser.mutate_dom(|_| {}).unwrap();
    let mut host = TcpHost::start_from_browser(
        "127.0.0.1:0",
        browser,
        key.clone(),
        AgentConfig::default(),
        ServerConfig::builder().workers(8).build(),
    )
    .unwrap();
    let addr = host.addr().to_string();
    let mutations_done = Arc::new(AtomicBool::new(false));

    let threads: Vec<_> = (1..=PARTICIPANTS)
        .map(|pid| {
            let addr = addr.clone();
            let key = key.clone();
            let done = Arc::clone(&mutations_done);
            std::thread::spawn(move || -> (u64, bool) {
                let mut p = TcpParticipant::join(&addr, key, pid).unwrap();
                // Hammer phase: uninterrupted polls racing the mutator, so
                // poll handlers overlap inside the agent.
                for _ in 0..200 {
                    p.poll().unwrap();
                }
                // Convergence phase: keep polling until the final marker
                // lands (bounded, so a regression fails rather than hangs).
                for _ in 0..2_000 {
                    p.poll().unwrap();
                    let doc = p.browser.doc.as_ref().unwrap();
                    if done.load(Ordering::Relaxed)
                        && doc.text_content(doc.root()).contains(FINAL_MARKER)
                    {
                        return (p.snippet.doc_time, true);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                (p.snippet.doc_time, false)
            })
        })
        .collect();

    // The host page mutates while all eight hammer away.
    for i in 0..MUTATIONS {
        let marker = if i + 1 == MUTATIONS {
            FINAL_MARKER.to_string()
        } else {
            format!("round-{i}")
        };
        host.mutate_page(move |doc| {
            let body = doc.body().unwrap();
            let div = doc.create_element("div");
            let t = doc.create_text(marker.clone());
            doc.append_child(div, t).unwrap();
            doc.append_child(body, div).unwrap();
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    mutations_done.store(true, Ordering::Relaxed);

    let results: Vec<(u64, bool)> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    // Every participant converged to the final content...
    assert!(
        results.iter().all(|(_, converged)| *converged),
        "participants failed to converge: {results:?}"
    );
    // ...and acknowledges the same (final) published timestamp.
    let final_time = host.published_doc_time();
    for (doc_time, _) in &results {
        assert_eq!(*doc_time, final_time, "stale participant");
    }
    assert_eq!(host.participant_count(), PARTICIPANTS as usize);

    let stats = host.stats();
    // Polls overlapped inside the agent: the read path is concurrent, not
    // serialized behind one lock.
    assert!(
        stats.max_concurrent_polls >= 2,
        "polls never overlapped (max concurrency {})",
        stats.max_concurrent_polls
    );
    // Content was generated once per DOM version — never once per poll,
    // and never while a reader waited: generation count tracks mutations,
    // not the thousands of polls served.
    let polls_served = stats.polls_with_content + stats.polls_empty;
    host.with_agent_stats(|s| {
        let generations = s.generations.get();
        assert!(
            generations <= MUTATIONS as u64 + 1,
            "{generations} generations for {MUTATIONS} mutations"
        );
        assert!(
            polls_served > generations * 10,
            "polls ({polls_served}) should dwarf generations ({generations})"
        );
    });
    // Memory bound held under churn.
    let (content_len, ts_len) = host.agent_cache_lens();
    assert!(content_len <= LIVE_GENERATIONS);
    assert!(ts_len <= LIVE_GENERATIONS);

    host.shutdown();
}

/// Percentile over a sample of microsecond latencies.
fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    samples.sort_unstable();
    rcb_util::percentile_nearest_rank(samples, p).expect("non-empty sample set")
}

/// A slow snapshot regeneration must not block concurrent polls: with
/// generation pipelined (DOM clone under the host mutex, steps 2–5 plus
/// prefab assembly outside it), a poll that takes the host mutex to merge
/// its piggybacked actions waits at most for a clone, never for the full
/// URL-rewrite/escape/XML-assembly pass.
///
/// The page is shaped adversarially for the old design: few DOM nodes
/// (cloning is cheap) carrying hundreds of kilobytes of text (escaping and
/// assembly are slow). Before the pipelining change, every merge-carrying
/// poll issued during a regeneration serialized behind the whole
/// generation and p99 tracked the generation cost; now it must stay within
/// a small bound of the quiescent p99.
#[test]
fn slow_regeneration_does_not_block_concurrent_polls() {
    // ~80 divs × 8 KB of passthrough text: ≈640 KB to escape per
    // generation, while the clone copies only ~160 nodes.
    let filler = "lorem ipsum dolor sit amet consectetur adipiscing elit ".repeat(146);
    let mut page =
        String::from("<html><head><title>slow</title></head><body><div id=\"knob\">0</div>");
    for i in 0..80 {
        page.push_str(&format!("<div id=\"blk{i}\">{filler}</div>"));
    }
    page.push_str("</body></html>");

    let key = SessionKey::generate_deterministic(&mut DetRng::new(92));
    let host =
        TcpHost::start_with_key("127.0.0.1:0", "http://slow.local/", &page, key.clone()).unwrap();
    let addr = host.addr().to_string();

    // Raw signed polls with a far-future timestamp (so every reply is the
    // tiny empty-content prefab — measured latency is queueing, not
    // content transfer) carrying a mouse-move action (so every poll takes
    // the host mutex on the merge path, the path a regeneration could
    // block).
    let mut conn = rcb_http::client::HttpConnection::connect(&addr).unwrap();
    let poll_us = |conn: &mut rcb_http::client::HttpConnection| -> u64 {
        let body = b"t=99999999999999999\nmouse|3|4".to_vec();
        let mut req = rcb_http::Request::post("/poll?p=1", body);
        rcb_core::auth::sign_request(&key, &mut req);
        let t0 = Instant::now();
        let resp = conn.round_trip(&req).expect("poll round trip");
        assert!(resp.status.is_success());
        assert!(resp.body.is_empty(), "expected empty-content reply");
        t0.elapsed().as_micros() as u64
    };

    // Quiescent baseline.
    for _ in 0..20 {
        poll_us(&mut conn);
    }
    let mut quiescent: Vec<u64> = (0..200).map(|_| poll_us(&mut conn)).collect();
    let quiescent_p99 = percentile_us(&mut quiescent, 99.0);

    // Regeneration storm: back-to-back page mutations, each forcing a
    // full generation of the heavy page, running for as long as the
    // measured polls take (so every sample overlaps the storm no matter
    // how the scheduler interleaves the two threads).
    let host = Arc::new(host);
    let stop = Arc::new(AtomicBool::new(false));
    let mutator = {
        let host = Arc::clone(&host);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> (u32, Duration) {
            let t0 = Instant::now();
            let mut n = 0u32;
            while !stop.load(Ordering::Relaxed) || n < 2 {
                host.mutate_page(move |doc| {
                    let root = doc.root();
                    if let Some(k) = rcb_html::query::element_by_id(doc, root, "knob") {
                        doc.set_attr(k, "data-v", n.to_string());
                    }
                })
                .expect("mutate");
                n += 1;
            }
            (n, t0.elapsed())
        })
    };
    let mut during: Vec<u64> = (0..60).map(|_| poll_us(&mut conn)).collect();
    stop.store(true, Ordering::Relaxed);
    let (mutations, regen_total) = mutator.join().unwrap();
    let during_p99 = percentile_us(&mut during, 99.0);

    // The storm really was slow relative to a poll — otherwise this test
    // proves nothing.
    let avg_regen_us = regen_total.as_micros() as u64 / u64::from(mutations);
    assert!(
        avg_regen_us > 20_000,
        "regeneration too fast to be observable ({avg_regen_us} us)"
    );
    // Polls during regeneration stay within 2× the quiescent p99 (plus a
    // scheduler-noise floor far below the generation cost). Like scale1's
    // pass criteria this is parallelism-aware: on a single core the poll
    // thread is starved of CPU by the generation burst itself regardless
    // of locking, so only the convoy signature (a poll serializing behind
    // multiple whole generations while the mutator re-wins the mutex) is
    // rejected there.
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let bound = (2 * quiescent_p99).max(20_000);
    if cores >= 2 {
        assert!(
            during_p99 <= bound,
            "poll p99 during regeneration {during_p99} us exceeds bound {bound} us \
             (quiescent p99 {quiescent_p99} us, avg regeneration {avg_regen_us} us)"
        );
    } else {
        assert!(
            during_p99 <= 2 * avg_regen_us + bound,
            "poll p99 during regeneration {during_p99} us shows a lock convoy \
             (avg regeneration {avg_regen_us} us, quiescent p99 {quiescent_p99} us)"
        );
    }
    Arc::try_unwrap(host)
        .map(|mut h| h.shutdown())
        .unwrap_or(());
}

#[test]
fn concurrent_cofill_from_many_participants_all_merge() {
    // Multiple participants co-fill distinct fields concurrently; every
    // write lands on the host DOM (the write path is serialized by the
    // host mutex, but never lost).
    let page = "<html><head><title>forms</title></head><body><form id=\"f\" action=\"/s\">\
        <input type=\"text\" name=\"a\" value=\"\">\
        <input type=\"text\" name=\"b\" value=\"\">\
        <input type=\"text\" name=\"c\" value=\"\">\
        <input type=\"text\" name=\"d\" value=\"\"></form></body></html>";
    let key = SessionKey::generate_deterministic(&mut DetRng::new(91));
    let mut host =
        TcpHost::start_with_key("127.0.0.1:0", "http://forms.local/", page, key.clone()).unwrap();
    let addr = host.addr().to_string();
    let fields = ["a", "b", "c", "d"];
    let threads: Vec<_> = fields
        .iter()
        .enumerate()
        .map(|(i, field)| {
            let addr = addr.clone();
            let key = key.clone();
            let field = field.to_string();
            std::thread::spawn(move || {
                let mut p = TcpParticipant::join(&addr, key, i as u64 + 1).unwrap();
                p.poll().unwrap();
                p.act(rcb_browser::UserAction::FormInput {
                    form: "f".into(),
                    field: field.clone(),
                    value: format!("from-{field}"),
                });
                p.poll().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let merged = host.form_fields("f");
    for field in fields {
        assert!(
            merged.contains(&(field.to_string(), format!("from-{field}"))),
            "field {field} lost; merged state: {merged:?}"
        );
    }
    host.shutdown();
}
