//! Session-router edge cases over real sockets: unknown and malformed
//! session ids, the session cap, idle eviction under parked long-polls,
//! and byte-identity of every edge response across all three serving
//! backends.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rcb_core::router::{fixed_page_factory, RouterConfig, RouterHost};
use rcb_core::snippet::SnippetOutcome;
use rcb_core::tcp::TcpParticipant;
use rcb_core::AgentConfig;
use rcb_http::client::try_parse_response;
use rcb_http::serialize::serialize_request;
use rcb_http::server::{ServerBackend, ServerConfig, EPOLL_SUPPORTED};
use rcb_http::{Request, Status};
use rcb_util::SimDuration;

const PAGE_URL: &str = "http://host.example/session";
const PAGE: &str = "<html><head><title>edge</title></head>\
     <body><h1 id=\"headline\">routed</h1></body></html>";

fn backends() -> Vec<ServerBackend> {
    let mut backends = vec![ServerBackend::Workers];
    if EPOLL_SUPPORTED {
        backends.push(ServerBackend::Epoll);
        backends.push(ServerBackend::EpollSharded(2));
    }
    backends
}

fn start_router(backend: ServerBackend, router_config: RouterConfig, sids: &[&str]) -> RouterHost {
    let sids: HashSet<String> = sids.iter().map(|s| s.to_string()).collect();
    RouterHost::start(
        "127.0.0.1:0",
        fixed_page_factory(
            PAGE_URL.to_string(),
            PAGE.to_string(),
            sids,
            "edge-secret".to_string(),
        ),
        AgentConfig::default(),
        router_config,
        ServerConfig::builder().backend(backend).workers(2).build(),
    )
    .unwrap()
}

/// One request on a fresh connection; returns the raw response bytes
/// (exactly as framed on the wire) plus the parsed response.
fn raw_get(addr: &str, path: &str) -> (Vec<u8>, rcb_http::Response) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&serialize_request(&Request::get(path)))
        .unwrap();
    let mut buf = Vec::new();
    loop {
        if let Some((resp, consumed)) = try_parse_response(&buf).unwrap() {
            return (buf[..consumed].to_vec(), resp);
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed before a full response");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn unknown_and_malformed_sids_get_the_prefab_404() {
    let mut host = start_router(ServerBackend::Workers, RouterConfig::default(), &["a"]);
    let addr = host.addr().to_string();

    for path in ["/s/nope/", "/s/nope/poll?p=1", "/s/", "/s/a"] {
        let (_, resp) = raw_get(&addr, path);
        assert_eq!(resp.status, Status::NOT_FOUND, "path {path}");
        assert_eq!(resp.body_str(), "unknown session", "path {path}");
    }
    assert_eq!(host.stats().unknown_session_404s, 4);
    assert_eq!(host.stats().sessions_live, 0, "no session was created");
    host.shutdown();
}

#[test]
fn session_cap_sheds_with_retry_after() {
    let mut host = start_router(
        ServerBackend::Workers,
        RouterConfig {
            max_sessions: 1,
            ..RouterConfig::default()
        },
        &["a", "b"],
    );
    let addr = host.addr().to_string();

    let (_, ok) = raw_get(&addr, "/s/a/");
    assert!(ok.status.is_success());

    let (_, shed) = raw_get(&addr, "/s/b/");
    assert_eq!(shed.status, Status::SERVICE_UNAVAILABLE);
    assert!(
        shed.retry_after().is_some(),
        "cap shed must tell clients when to come back"
    );

    // The capped sid was not half-created: the slot still belongs to the
    // one live session, and the counter points at the cap.
    let stats = host.stats();
    assert_eq!(stats.sessions_live, 1);
    assert_eq!(stats.cap_sheds, 1);
    assert!(host.router().session("b").is_none());
    host.shutdown();
}

#[test]
fn evicting_an_idle_session_completes_its_parked_polls() {
    for backend in backends() {
        let mut host = start_router(
            backend,
            RouterConfig {
                // Everything is instantly "idle": eviction is driven
                // explicitly by the evict_idle() calls below.
                idle_evict: Duration::ZERO,
                ..RouterConfig::default()
            },
            &["a"],
        );
        let addr = host.addr().to_string();
        let handle = host.router().create_session("a").unwrap();
        let key = handle.key().clone();

        let mut p =
            TcpParticipant::join_session(&addr, "a", key, 1, &AgentConfig::default()).unwrap();
        // First poll drains the initial content so the next one parks.
        assert!(matches!(p.poll().unwrap(), SnippetOutcome::Updated { .. }));
        p.enable_long_poll(SimDuration::from_secs(5));
        let parked = std::thread::spawn(move || p.poll());

        // Wait until the engine holds the park, then evict the session.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.stats().polls_parked == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "{backend:?}: poll never parked"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(host.router().evict_idle(), 1, "{backend:?}");

        // The parked poll resolves immediately with the timeout (empty)
        // reply — no dangling connection, no slot held.
        let outcome = parked.join().expect("parked poll thread").unwrap();
        assert!(
            matches!(outcome, SnippetOutcome::NoNewContent),
            "{backend:?}: evicted park must complete with the empty reply"
        );
        assert_eq!(handle.stats().polls_park_timeouts, 1, "{backend:?}");
        assert!(host.router().session("a").is_none(), "{backend:?}");
        assert_eq!(host.router().session_count(), 0, "{backend:?}");

        // The sid is re-creatable afterwards (the factory still knows
        // it), and the next sweep both prunes the retired hub channel
        // and evicts the recreated session — the process keeps serving
        // with nothing leaked.
        let mut again = TcpParticipant::join_session(
            &addr,
            "a",
            handle.key().clone(),
            2,
            &AgentConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            again.poll().unwrap(),
            SnippetOutcome::Updated { .. }
        ));
        assert_eq!(host.router().evict_idle(), 1, "{backend:?}");
        host.shutdown();
    }
}

/// The edge responses — unknown sid, malformed sid, session-cap shed —
/// must be byte-identical across the workers, epoll, and sharded-epoll
/// engines (same prefab images, same shed draw sequence).
#[test]
fn edge_responses_are_byte_identical_across_backends() {
    let mut captures: Vec<(ServerBackend, Vec<Vec<u8>>)> = Vec::new();
    for backend in backends() {
        let mut host = start_router(
            backend,
            RouterConfig {
                max_sessions: 1,
                ..RouterConfig::default()
            },
            &["a", "b"],
        );
        let addr = host.addr().to_string();
        // Occupy the single session slot (response carries wall-clock
        // timestamps, so it is exercised but not compared).
        let (_, ok) = raw_get(&addr, "/s/a/");
        assert!(ok.status.is_success(), "{backend:?}");

        let mut wires = Vec::new();
        for path in ["/s/nope/", "/s/", "/s/a", "/s/b/"] {
            wires.push(raw_get(&addr, path).0);
        }
        captures.push((backend, wires));
        host.shutdown();
    }
    let (first_backend, reference) = &captures[0];
    for (backend, wires) in &captures[1..] {
        assert_eq!(
            wires, reference,
            "{backend:?} edge responses differ from {first_backend:?}"
        );
    }
}
