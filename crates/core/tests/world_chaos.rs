//! Overload chaos in the deterministic world sim.
//!
//! Three adversarial scenarios — a slow-writer (slowloris) cohort, a
//! post-heal thundering herd against a tight admission mark, and an
//! oversize-request storm — each run twice from the same seed and
//! asserted byte-identical: the guards and shed paths are part of the
//! replay fingerprint, not best-effort wall-clock behavior.

use std::io::Write;
use std::time::Duration;

use rcb_browser::{Browser, BrowserKind};
use rcb_core::worldsim::{ScriptEvent, WorldHost, WorldScenario};
use rcb_crypto::SessionKey;
use rcb_http::client::try_parse_response;
use rcb_http::serialize::serialize_request;
use rcb_http::server::{OverloadConfig, ServerStats};
use rcb_http::Request;
use rcb_sim::{LinkModel, LinkSpec, SimConn, World};
use rcb_util::{DetRng, SimDuration};

const PAGE: &str = "<html><head><title>chaos</title></head>\
    <body><h1 id=\"headline\">steady state</h1></body></html>";

fn link() -> LinkModel {
    LinkModel::from_spec(LinkSpec::symmetric(
        100_000_000,
        SimDuration::from_millis(1),
    ))
}

fn start_host(world: &World, seed: u64, overload: OverloadConfig) -> WorldHost {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(seed));
    let mut browser = Browser::new(BrowserKind::Firefox);
    browser.url = Some(rcb_url::Url::parse("http://demo.local/").unwrap());
    browser.doc = Some(rcb_html::parse_document(PAGE));
    browser.mutate_dom(|_| {}).unwrap();
    WorldHost::start_from_browser_with_overload(world, "host", browser, key, overload).unwrap()
}

/// Pump host and fabric to quiescence (no park deadlines in play here).
fn settle(world: &World, host: &mut WorldHost) {
    loop {
        while host.pump() {}
        match world.next_event_time() {
            Some(t) if t > world.now() => world.advance_to(t),
            Some(_) => break, // due now: one more pump round below
            None => break,
        }
    }
    while host.pump() {}
}

fn read_status(conn: &mut SimConn) -> Option<u16> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match conn.try_read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    try_parse_response(&buf)
        .ok()
        .flatten()
        .map(|(resp, _)| resp.status.0)
}

/// One slow-writer run: three connections dribble partial request heads
/// and go silent, one healthy client completes its request. The
/// slowloris guard must cut exactly the cohort, on the virtual clock.
fn slow_writer_run(seed: u64) -> (ServerStats, Option<u16>, Vec<String>) {
    let world = World::new(seed);
    let overload = OverloadConfig {
        header_read_timeout: Duration::from_secs(2),
        ..OverloadConfig::default()
    };
    let mut host = start_host(&world, seed, overload);
    let mut slow: Vec<SimConn> = (0..3)
        .map(|i| world.connect(&format!("slow{i}"), "host", link()).unwrap())
        .collect();
    for conn in &mut slow {
        conn.write_all(b"GET / HTTP/1.1\r\nHost: demo").unwrap();
    }
    let mut healthy = world.connect("ok", "host", link()).unwrap();
    healthy
        .write_all(&serialize_request(&Request::get("/")))
        .unwrap();
    settle(&world, &mut host);
    // One more dribbled byte a second in: the slowloris clock must keep
    // counting from the first partial byte, not reset per byte.
    world.advance_to(world.now() + SimDuration::from_secs(1));
    for conn in &mut slow {
        let _ = conn.write_all(b"x");
    }
    settle(&world, &mut host);
    // Silence past the guard deadline cuts the cohort.
    let deadline = host
        .next_guard_deadline()
        .expect("partial heads have a guard deadline");
    world.advance_to(deadline);
    settle(&world, &mut host);
    (
        host.server_stats(),
        read_status(&mut healthy),
        world.trace(),
    )
}

#[test]
fn slow_writer_cohort_is_cut_by_the_header_guard() {
    let (stats, healthy_status, _trace) = slow_writer_run(301);
    assert_eq!(stats.header_timeouts, 3, "exactly the dribbling cohort");
    assert_eq!(stats.idle_timeouts, 0);
    assert_eq!(stats.connections_accepted, 4);
    assert_eq!(healthy_status, Some(200), "healthy client unaffected");
}

#[test]
fn slow_writer_run_replays_byte_identically() {
    assert_eq!(slow_writer_run(302), slow_writer_run(302));
}

/// One oversize-storm run: clients hurl a huge request head and a huge
/// declared body alongside one healthy request; the host answers with
/// the prefab `431`/`413` and closes, never reaching the handler.
fn oversize_run(seed: u64) -> (ServerStats, Vec<Option<u16>>, Vec<String>) {
    let world = World::new(seed);
    let overload = OverloadConfig {
        max_header_bytes: 256,
        max_body_bytes: 256,
        ..OverloadConfig::default()
    };
    let mut host = start_host(&world, seed, overload);
    let mut conns = Vec::new();
    for i in 0..2 {
        let mut conn = world
            .connect(&format!("bighead{i}"), "host", link())
            .unwrap();
        let head = format!(
            "GET / HTTP/1.1\r\nHost: demo\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(512)
        );
        conn.write_all(head.as_bytes()).unwrap();
        conns.push(conn);
    }
    for i in 0..2 {
        let mut conn = world
            .connect(&format!("bigbody{i}"), "host", link())
            .unwrap();
        conn.write_all(b"POST /poll HTTP/1.1\r\nHost: demo\r\nContent-Length: 100000\r\n\r\n")
            .unwrap();
        conns.push(conn);
    }
    let mut healthy = world.connect("ok", "host", link()).unwrap();
    healthy
        .write_all(&serialize_request(&Request::get("/")))
        .unwrap();
    conns.push(healthy);
    settle(&world, &mut host);
    let statuses = conns.iter_mut().map(read_status).collect();
    (host.server_stats(), statuses, world.trace())
}

#[test]
fn oversize_storm_is_refused_with_prefab_rejections() {
    let (stats, statuses, _trace) = oversize_run(303);
    assert_eq!(stats.oversize_head, 2);
    assert_eq!(stats.oversize_body, 2);
    assert_eq!(
        statuses,
        vec![Some(431), Some(431), Some(413), Some(413), Some(200)]
    );
}

#[test]
fn oversize_run_replays_byte_identically() {
    assert_eq!(oversize_run(304), oversize_run(304));
}

/// The post-heal thundering herd: eight participants join in the same
/// quantized tick against an admission mark of two, six are partitioned
/// and healed together, and a host mutation lands after the storm. The
/// shed + seeded-backoff loop must both shed (the mark is real) and
/// converge every participant to the final content (the backoff works).
fn herd_scenario() -> WorldScenario {
    let mut sc = WorldScenario::new(305, "http://demo.local/", PAGE);
    sc.tick = Some(SimDuration::from_millis(100));
    sc.horizon = SimDuration::from_secs(25);
    sc.with_overload(OverloadConfig {
        queue_high_water: 2,
        retry_after_base_secs: 1,
        retry_after_jitter_secs: 2,
        ..OverloadConfig::default()
    });
    for pid in 1..=8 {
        sc.at(SimDuration::ZERO, ScriptEvent::Join { pid });
    }
    sc.at(
        SimDuration::from_secs(4),
        ScriptEvent::Partition {
            pids: (3..=8).collect(),
        },
    );
    sc.at(
        SimDuration::from_secs(7),
        ScriptEvent::Heal {
            pids: (3..=8).collect(),
        },
    );
    sc.at(
        SimDuration::from_secs(10),
        ScriptEvent::HostAppend {
            text: "after the storm".into(),
        },
    );
    sc
}

#[test]
fn thundering_herd_sheds_then_converges() {
    let report = herd_scenario().run().unwrap();
    assert!(
        report.server.requests_shed > 0,
        "the admission mark must actually shed: {:?}",
        report.server
    );
    let shed_total: u64 = report.participants.values().map(|p| p.sheds).sum();
    assert!(shed_total > 0, "participants must have absorbed 503s");
    for (pid, p) in &report.participants {
        assert_eq!(
            p.doc_time, report.host_doc_time,
            "p{pid} must converge to the post-storm content: {p:?}"
        );
    }
}

#[test]
fn thundering_herd_replays_byte_identically() {
    let sc = herd_scenario();
    assert_eq!(sc.run().unwrap(), sc.run().unwrap());
}
