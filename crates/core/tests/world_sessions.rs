//! Multi-session world sim: two routed sessions over one pump driver.
//!
//! The session router's promise is isolation — one tenant's storm is not
//! another tenant's outage. This suite pins that down deterministically:
//! a `storm` session with six fast-polling, constantly-acting
//! participants shares the serving driver with a `quiet` session holding
//! one plain poller and one parked long-poller, and
//!
//! * the quiet session's poll round-trips stay bounded (p99 over virtual
//!   time — exact, not statistical);
//! * content never leaks across sessions (the quiet documents converge
//!   to the quiet mutations and contain nothing of the storm's co-fill
//!   traffic, and vice versa);
//! * parked long-polls wake on their own session's publications only;
//! * the whole run replays byte-identically from the same seed, storm
//!   and all.

use std::collections::HashSet;

use rcb_browser::UserAction;
use rcb_core::router::{fixed_page_factory, RouterConfig};
use rcb_core::worldsim::{WorldParticipant, WorldRouterHost};
use rcb_core::AgentConfig;
use rcb_sim::{NetProfile, World};
use rcb_util::{SimDuration, SimTime};

const PAGE_URL: &str = "http://host.example/session";
const PAGE_HTML: &str = "<html><head><title>routed</title></head>\
     <body><h1>Shared doc</h1>\
     <form id=\"f\"><input name=\"q\" value=\"\"/></form>\
     <p id=\"status\">ready</p></body></html>";

/// Virtual-time horizon of a run.
const HORIZON_MS: u64 = 10_000;
/// Fixed stepping quantum (coalesces fabric events per tick, like the
/// scenario runner's quantized mode).
const TICK_MS: u64 = 100;

/// Everything a run reports — `PartialEq`, so the replay test is one
/// assertion over the full outcome including the fabric trace.
#[derive(Debug, PartialEq)]
struct SessionsReport {
    trace: Vec<String>,
    /// Quiet plain-poller round trips, virtual micros, in completion
    /// order.
    quiet_latencies: Vec<u64>,
    /// (polls_completed, updates_applied) for the quiet long-poller.
    quiet_parked: (u64, u64),
    /// Storm polls completed, summed.
    storm_polls: u64,
    /// Requests the router dispatched into session handlers.
    requests_routed: u64,
    /// Final quiet and storm participant documents.
    quiet_doc: String,
    storm_doc: String,
    /// The session surfaced as the parked-polls outlier.
    max_parked_sid: Option<String>,
}

fn run_once(seed: u64) -> SessionsReport {
    let world = World::new(seed);
    let sids: HashSet<String> = ["quiet", "storm"].iter().map(|s| s.to_string()).collect();
    let factory = fixed_page_factory(
        PAGE_URL.to_string(),
        PAGE_HTML.to_string(),
        sids,
        "world-sessions-secret".to_string(),
    );
    let mut host = WorldRouterHost::start(
        &world,
        "host",
        factory,
        AgentConfig::default(),
        RouterConfig {
            session_inflight: 2,
            session_waiters: 8,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let quiet = host.router().create_session("quiet").unwrap();
    let storm = host.router().create_session("storm").unwrap();

    let profile = NetProfile::wan();
    let mut participants: Vec<WorldParticipant> = Vec::new();
    // Quiet session: p1 is the latency probe (plain 1 s polls), p2 parks
    // long-polls and must wake only on quiet publications.
    participants.push(WorldParticipant::new_in_session(
        1,
        quiet.key().clone(),
        "host",
        profile.participant_link(),
        SimDuration::from_secs(1),
        "quiet",
    ));
    let mut parked = WorldParticipant::new_in_session(
        2,
        quiet.key().clone(),
        "host",
        profile.participant_link(),
        SimDuration::from_secs(1),
        "quiet",
    );
    parked.snippet.long_poll = Some(SimDuration::from_secs(20));
    participants.push(parked);
    // Storm session: six participants polling every 100 ms and pushing
    // co-fill actions every 500 ms.
    for pid in 11..=16 {
        participants.push(WorldParticipant::new_in_session(
            pid,
            storm.key().clone(),
            "host",
            profile.participant_link(),
            SimDuration::from_millis(100),
            "storm",
        ));
    }

    let horizon = SimTime::ZERO + SimDuration::from_millis(HORIZON_MS);
    loop {
        let now_ms = (world.now() - SimTime::ZERO).as_micros() / 1000;
        if now_ms > 0 && now_ms.is_multiple_of(500) {
            for (i, p) in participants.iter_mut().enumerate().skip(2) {
                p.act(UserAction::FormInput {
                    form: "f".into(),
                    field: "q".into(),
                    value: format!("storm-{now_ms}-{i}"),
                });
            }
        }
        if now_ms == 3_000 || now_ms == 6_000 {
            let n = now_ms / 3_000;
            quiet
                .mutate_page(|doc| {
                    let body = doc.body().expect("quiet page has a body");
                    let div = doc.create_element("div");
                    let t = doc.create_text(format!("quiet-update-{n}"));
                    doc.append_child(div, t).expect("fresh div");
                    doc.append_child(body, div).expect("quiet body");
                })
                .unwrap();
        }
        loop {
            let mut progress = false;
            while host.pump() {
                progress = true;
            }
            for p in participants.iter_mut() {
                progress |= p.pump(&world).unwrap();
            }
            if !progress {
                break;
            }
        }
        let next = world.now() + SimDuration::from_millis(TICK_MS);
        if next > horizon {
            break;
        }
        world.advance_to(next);
    }

    let stats = host.stats();
    SessionsReport {
        trace: world.trace(),
        quiet_latencies: participants[0].poll_latencies.clone(),
        quiet_parked: (
            participants[1].polls_completed,
            participants[1].snippet.updates_applied,
        ),
        storm_polls: participants[2..].iter().map(|p| p.polls_completed).sum(),
        requests_routed: stats.requests_routed,
        quiet_doc: doc_of(&participants[0]),
        storm_doc: doc_of(&participants[2]),
        max_parked_sid: stats.max_parked_polls.map(|o| o.sid),
    }
}

fn doc_of(p: &WorldParticipant) -> String {
    p.browser
        .doc
        .as_ref()
        .map(rcb_html::serialize::serialize_document)
        .unwrap_or_default()
}

/// Nearest-rank p99 over a latency sample.
fn p99(mut v: Vec<u64>) -> u64 {
    assert!(!v.is_empty(), "latency probe completed no polls");
    v.sort_unstable();
    let idx = ((v.len() as f64 * 0.99).ceil() as usize).clamp(1, v.len()) - 1;
    v[idx]
}

#[test]
fn storm_session_does_not_starve_quiet_session() {
    let report = run_once(0xc0b_0a5e);

    // The storm really stormed: far more polls than the quiet session
    // ever issues, all dispatched through the shared driver.
    assert!(
        report.storm_polls > 100,
        "storm too small to prove anything: {} polls",
        report.storm_polls
    );
    assert!(report.requests_routed > report.storm_polls);

    // Quiet plain polls stay bounded: link RTT plus transfer, nowhere
    // near the storm's service volume. (Virtual time — exact replay, so
    // this is a hard gate, not a flaky percentile.)
    let p99 = p99(report.quiet_latencies.clone());
    assert!(
        p99 <= 500_000,
        "quiet session p99 poll round-trip {p99} µs exceeds 500 ms"
    );

    // Session isolation: the quiet documents converged to the quiet
    // mutations and carry none of the storm's co-fill values — and the
    // storm document never saw a quiet update.
    assert!(report.quiet_doc.contains("quiet-update-1"));
    assert!(report.quiet_doc.contains("quiet-update-2"));
    assert!(!report.quiet_doc.contains("storm-"));
    assert!(report.storm_doc.contains("storm-"));
    assert!(!report.storm_doc.contains("quiet-update"));

    // The long-poller woke on its own session's publications only: one
    // initial full-content poll plus one wake per quiet mutation. Had
    // storm publications woken it, polls_completed would track the
    // storm's publication rate instead.
    let (polls, updates) = report.quiet_parked;
    assert_eq!(updates, 3, "initial content + two quiet mutations");
    assert!(
        polls <= 4,
        "parked poller completed {polls} polls — woken by foreign publications"
    );

    // The two-tier stats surface the quiet session as the parked-polls
    // outlier (the storm parks nothing).
    assert_eq!(report.max_parked_sid.as_deref(), Some("quiet"));
}

/// The router sheds idle sessions from its own dispatch path: no test or
/// operator ever calls `evict_idle` here — session `idle` goes quiet,
/// session `busy` keeps polling, and the busy traffic alone crosses the
/// sweep interval and evicts the idle tenant (virtual clock, so the
/// idle horizon is exact).
#[test]
fn idle_sessions_are_swept_from_the_dispatch_path() {
    let world = World::new(11);
    let sids: HashSet<String> = ["idle", "busy"].iter().map(|s| s.to_string()).collect();
    let factory = fixed_page_factory(
        PAGE_URL.to_string(),
        PAGE_HTML.to_string(),
        sids,
        "world-sessions-secret".to_string(),
    );
    let mut host = WorldRouterHost::start(
        &world,
        "host",
        factory,
        AgentConfig::default(),
        RouterConfig {
            idle_evict: std::time::Duration::from_secs(2),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    host.router().create_session("idle").unwrap();
    let busy = host.router().create_session("busy").unwrap();
    assert_eq!(host.router().session_count(), 2);

    let profile = NetProfile::wan();
    let mut poller = WorldParticipant::new_in_session(
        1,
        busy.key().clone(),
        "host",
        profile.participant_link(),
        SimDuration::from_millis(500),
        "busy",
    );
    let horizon = SimTime::ZERO + SimDuration::from_millis(6_000);
    loop {
        loop {
            let mut progress = false;
            while host.pump() {
                progress = true;
            }
            progress |= poller.pump(&world).unwrap();
            if !progress {
                break;
            }
        }
        let next = world.now() + SimDuration::from_millis(TICK_MS);
        if next > horizon {
            break;
        }
        world.advance_to(next);
    }

    assert!(
        host.router().session("idle").is_none(),
        "idle session must be swept without an explicit evict_idle call"
    );
    assert!(
        host.router().session("busy").is_some(),
        "active session must survive the sweep"
    );
    let stats = host.stats();
    assert_eq!(stats.sessions_evicted, 1);
    assert!(poller.polls_completed > 0, "busy traffic actually flowed");
}

#[test]
fn same_seed_replays_byte_identical() {
    let a = run_once(7);
    let b = run_once(7);
    assert_eq!(a, b, "same seed must replay the multi-session run exactly");
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the trace actually carries the fabric's seeded
    // randomness (otherwise the replay test proves nothing).
    let a = run_once(1);
    let b = run_once(2);
    assert_ne!(a.trace, b.trace);
}
