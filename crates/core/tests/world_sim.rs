//! World-sim integration: the real RCB stack (SharedHost handler +
//! AjaxSnippet) over the seeded in-process fabric, with zero sockets and
//! zero wall-clock sleeps.
//!
//! The headline properties:
//!
//! * **deterministic replay** — the same `WorldScenario` run twice
//!   produces a byte-identical trace and identical stats/reports
//!   (proptested over seeds);
//! * **partition/heal convergence** — a cohort partitioned mid-session
//!   reconnects after heal and converges to the host's final document,
//!   with exact `dom_version` accounting proving no duplicate merges;
//! * **scale** — a thousand simulated participants (joins, polls,
//!   long-polls, object fetches) complete in wall-clock seconds.

use proptest::prelude::*;
use rcb_browser::UserAction;
use rcb_core::worldsim::{ScriptEvent, WorldScenario};
use rcb_util::SimDuration;

const PAGE_URL: &str = "http://host.example/session";
const PAGE_HTML: &str = "<html><head><title>world sim</title></head>\
     <body><h1>Shared doc</h1>\
     <form id=\"f\"><input name=\"q\" value=\"\"/></form>\
     <p id=\"status\">ready</p></body></html>";

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn millis(ms: u64) -> SimDuration {
    SimDuration::from_millis(ms)
}

/// A small but busy scenario: three participants, co-fill actions, host
/// mutations — enough traffic that nondeterminism anywhere in the stack
/// would diverge the trace.
fn small_scenario(seed: u64) -> WorldScenario {
    let mut sc = WorldScenario::new(seed, PAGE_URL, PAGE_HTML);
    sc.horizon = secs(10);
    sc.at(SimDuration::ZERO, ScriptEvent::Join { pid: 1 });
    sc.at(millis(200), ScriptEvent::Join { pid: 2 });
    sc.at(millis(400), ScriptEvent::Join { pid: 3 });
    sc.at(
        millis(800),
        ScriptEvent::Act {
            pid: 1,
            action: UserAction::FormInput {
                form: "f".into(),
                field: "q".into(),
                value: "collaborative".into(),
            },
        },
    );
    sc.at(
        secs(2),
        ScriptEvent::HostAppend {
            text: "first update".into(),
        },
    );
    sc.at(
        secs(3),
        ScriptEvent::Act {
            pid: 2,
            action: UserAction::Click {
                target: "#status".into(),
            },
        },
    );
    sc.at(
        secs(4),
        ScriptEvent::HostAppend {
            text: "second update".into(),
        },
    );
    sc
}

#[test]
fn same_seed_replays_identically() {
    let sc = small_scenario(42);
    let a = sc.run().unwrap();
    let b = sc.run().unwrap();
    assert!(!a.trace.is_empty(), "trace should record fabric activity");
    assert_eq!(a, b, "same seed must replay the exact same world");

    // Sanity that the scenario actually exercised the stack.
    assert_eq!(a.participants.len(), 3);
    assert!(a.stats.polls_with_content >= 3, "initial syncs at least");
    assert!(a.host_dom_version > 0, "acts and appends merged");
    for (pid, p) in &a.participants {
        assert!(p.polls_completed > 0, "p{pid} polled");
        assert_eq!(p.doc_time, a.host_doc_time, "p{pid} converged");
    }
}

#[test]
fn different_seed_diverges() {
    let a = small_scenario(7).run().unwrap();
    let b = small_scenario(8).run().unwrap();
    // Different jitter draws shuffle arrival timestamps: the replay
    // fingerprints must differ even though the script is identical.
    assert_ne!(a.trace, b.trace, "seeds must actually matter");
}

proptest! {
    #[test]
    fn replay_is_deterministic_across_seeds(seed in 0u64..10_000) {
        let mut sc = WorldScenario::new(seed, PAGE_URL, PAGE_HTML);
        sc.horizon = secs(4);
        sc.at(SimDuration::ZERO, ScriptEvent::Join { pid: 1 });
        sc.at(millis(300), ScriptEvent::Join { pid: 2 });
        sc.at(
            millis(700),
            ScriptEvent::Act {
                pid: 1,
                action: UserAction::FormInput {
                    form: "f".into(),
                    field: "q".into(),
                    value: format!("seed {seed}"),
                },
            },
        );
        sc.at(secs(2), ScriptEvent::HostAppend { text: "tick".into() });
        let a = sc.run().unwrap();
        let b = sc.run().unwrap();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn partition_heal_converges_without_duplicate_merges() {
    // Identical scripts except one run partitions p2/p3 mid-session.
    // Every action is flushed while its sender is healthy, so the merge
    // count — and therefore the final host dom_version — must be EQUAL
    // in both runs: any excess in the partitioned run would be the
    // server merging a resent action twice.
    let build = |partitioned: bool| {
        let mut sc = WorldScenario::new(2009, PAGE_URL, PAGE_HTML);
        sc.horizon = secs(15);
        sc.at(SimDuration::ZERO, ScriptEvent::Join { pid: 1 });
        sc.at(millis(100), ScriptEvent::Join { pid: 2 });
        sc.at(millis(200), ScriptEvent::Join { pid: 3 });
        sc.at(
            millis(600),
            ScriptEvent::Act {
                pid: 2,
                action: UserAction::FormInput {
                    form: "f".into(),
                    field: "q".into(),
                    value: "from p2".into(),
                },
            },
        );
        sc.at(
            millis(900),
            ScriptEvent::Act {
                pid: 3,
                action: UserAction::Click {
                    target: "#status".into(),
                },
            },
        );
        if partitioned {
            sc.at(secs(3), ScriptEvent::Partition { pids: vec![2, 3] });
        }
        // Content changes the partitioned cohort misses live.
        sc.at(
            secs(4),
            ScriptEvent::HostAppend {
                text: "while away".into(),
            },
        );
        sc.at(
            secs(5),
            ScriptEvent::Act {
                pid: 1,
                action: UserAction::FormInput {
                    form: "f".into(),
                    field: "q".into(),
                    value: "from p1".into(),
                },
            },
        );
        if partitioned {
            sc.at(secs(7), ScriptEvent::Heal { pids: vec![2, 3] });
        }
        sc.at(
            secs(9),
            ScriptEvent::HostAppend {
                text: "after heal".into(),
            },
        );
        sc
    };

    let baseline = build(false).run().unwrap();
    let faulted = build(true).run().unwrap();

    assert_eq!(
        faulted.host_dom_version, baseline.host_dom_version,
        "partition must not change the number of merges (duplicate or lost)"
    );
    assert_eq!(faulted.host_doc_time, baseline.host_doc_time);

    // The cohort saw resets; the unpartitioned participant saw none.
    assert!(faulted.participants[&2].resets > 0, "p2 was cut off");
    assert!(faulted.participants[&3].resets > 0, "p3 was cut off");
    assert_eq!(faulted.participants[&1].resets, 0, "p1 stayed connected");
    assert_eq!(baseline.participants[&2].resets, 0);

    // Everyone — including the healed cohort — converged to the host's
    // final published document.
    for (pid, p) in &faulted.participants {
        assert_eq!(
            p.doc_time, faulted.host_doc_time,
            "p{pid} must converge after heal"
        );
    }
}

#[test]
fn long_polls_park_wake_and_time_out_on_virtual_time() {
    let mut sc = WorldScenario::new(77, PAGE_URL, PAGE_HTML);
    sc.horizon = secs(12);
    sc.at(SimDuration::ZERO, ScriptEvent::Join { pid: 1 });
    sc.at(millis(100), ScriptEvent::Join { pid: 2 });
    // p1 switches to parked long-polls; p2 stays on interval polling.
    sc.at(
        secs(1),
        ScriptEvent::EnableLongPoll {
            pid: 1,
            wait: secs(2),
        },
    );
    sc.at(
        secs(4),
        ScriptEvent::HostAppend {
            text: "wake the parked".into(),
        },
    );
    let report = sc.run().unwrap();

    assert!(report.stats.polls_parked > 0, "long-polls must park");
    assert!(
        report.stats.polls_woken > 0,
        "the host append must wake a parked poll"
    );
    assert!(
        report.stats.polls_park_timeouts > 0,
        "quiet periods must time the parks out on the virtual clock"
    );
    // Every parked poll resolves exactly once — except at most one
    // still parked when the horizon cuts the run off.
    let resolved = report.stats.polls_woken + report.stats.polls_park_timeouts;
    assert!(
        report.stats.polls_parked - resolved <= 1,
        "parked {} vs resolved {resolved}",
        report.stats.polls_parked
    );
    for (pid, p) in &report.participants {
        assert_eq!(p.doc_time, report.host_doc_time, "p{pid} converged");
    }
}

/// Mixed cohort over one session: p1 negotiates delta (before its very
/// first poll — that initial sync must still be full XML), p2 is a
/// legacy long-poller, p3 a plain interval poller. One host append
/// wakes both parks: p1's completes with the delta prefab, p2's with
/// the full XML, and everyone converges to the same document.
#[test]
fn delta_wakes_ship_deltas_while_legacy_cohort_stays_on_full_xml() {
    let mut sc = WorldScenario::new(909, PAGE_URL, PAGE_HTML);
    sc.horizon = secs(8);
    sc.at(SimDuration::ZERO, ScriptEvent::Join { pid: 1 });
    sc.at(SimDuration::ZERO, ScriptEvent::EnableDelta { pid: 1 });
    sc.at(
        SimDuration::ZERO,
        ScriptEvent::EnableLongPoll {
            pid: 1,
            wait: secs(2),
        },
    );
    sc.at(millis(100), ScriptEvent::Join { pid: 2 });
    sc.at(
        millis(100),
        ScriptEvent::EnableLongPoll {
            pid: 2,
            wait: secs(2),
        },
    );
    sc.at(millis(200), ScriptEvent::Join { pid: 3 });
    sc.at(
        secs(4),
        ScriptEvent::HostAppend {
            text: "delta cargo".into(),
        },
    );
    let report = sc.run().unwrap();

    let p1 = &report.participants[&1];
    let p2 = &report.participants[&2];
    let p3 = &report.participants[&3];
    assert!(
        p1.updates_applied >= 2,
        "p1: initial full sync plus the woken delta"
    );
    assert_eq!(
        p1.deltas_applied, 1,
        "exactly the one wake arrived delta-encoded — never the first poll"
    );
    assert_eq!(p2.deltas_applied, 0, "legacy poller never sees a delta");
    assert_eq!(p3.deltas_applied, 0);
    assert_eq!(report.stats.polls_woken_delta, 1);
    assert_eq!(report.stats.delta_fallbacks, 0, "the base was in the ring");
    assert!(
        report.stats.polls_woken >= 2,
        "both parks woke on the append"
    );
    for (pid, p) in &report.participants {
        assert_eq!(p.doc_time, report.host_doc_time, "p{pid} converged");
    }
    assert_eq!(report, sc.run().unwrap(), "delta scenario replays exactly");
}

/// The negotiated fallback edge: the acked generation ages out of the
/// delta ring while the poll is parked. Four same-instant appends all
/// fire before the fabric moves, so the host publishes ring-size + 1
/// generations mid-park; the wake must fall back to the full XML (and
/// still converge) rather than ship a delta from an evicted base.
#[test]
fn generation_burst_mid_park_falls_back_to_full_xml() {
    let mut sc = WorldScenario::new(910, PAGE_URL, PAGE_HTML);
    sc.horizon = secs(8);
    sc.at(SimDuration::ZERO, ScriptEvent::Join { pid: 1 });
    sc.at(SimDuration::ZERO, ScriptEvent::EnableDelta { pid: 1 });
    sc.at(
        SimDuration::ZERO,
        ScriptEvent::EnableLongPoll {
            pid: 1,
            wait: secs(2),
        },
    );
    for i in 0..4u32 {
        sc.at(
            secs(4),
            ScriptEvent::HostAppend {
                text: format!("burst-{i}"),
            },
        );
    }
    let report = sc.run().unwrap();

    let p1 = &report.participants[&1];
    assert_eq!(report.stats.delta_fallbacks, 1, "ring miss must be counted");
    assert_eq!(report.stats.polls_woken_delta, 0);
    assert_eq!(p1.deltas_applied, 0, "no delta from an evicted base");
    assert!(
        p1.updates_applied >= 2,
        "initial sync plus the full-XML fallback wake"
    );
    assert_eq!(
        p1.doc_time, report.host_doc_time,
        "fallback converged to the burst's final document"
    );
    assert_eq!(
        report,
        sc.run().unwrap(),
        "fallback scenario replays exactly"
    );
}

#[test]
fn tick_mode_matches_reality_at_small_scale() {
    // Quantized stepping is the scale mode; make sure it still drives a
    // full small session (polls, merges, convergence) and replays.
    let mut sc = small_scenario(42);
    sc.tick = Some(millis(50));
    let a = sc.run().unwrap();
    let b = sc.run().unwrap();
    assert_eq!(a, b, "tick mode replays too");
    assert!(a.stats.polls_empty > 0, "steady-state interval polling ran");
    for (pid, p) in &a.participants {
        assert!(p.polls_completed > 3, "p{pid} kept polling under ticks");
        assert_eq!(p.doc_time, a.host_doc_time, "p{pid} converged");
    }
}

#[test]
fn thousand_participant_smoke_is_fast_and_deterministic() {
    // The acceptance scenario: 1,000 participants join a host that
    // really navigated an origin page (so updates carry /cache/..
    // object URLs to fetch back), a tenth of them on parked long-polls,
    // co-browsing through a couple of host mutations — all in one
    // process, zero sockets, quantized 50 ms stepping.
    let build = || {
        let mut sc = WorldScenario::new(1_000_009, PAGE_URL, PAGE_HTML);
        sc.origin_url = Some("http://apple.com/".into());
        // LAN links: the origin page's objects are tens of KB each, and
        // over the WAN profile's bandwidth they would eat the whole
        // horizon in transfer time before steady-state polling starts.
        sc.profile = rcb_sim::NetProfile::lan();
        sc.horizon = secs(6);
        sc.tick = Some(millis(50));
        for pid in 0..1_000u64 {
            // Joins staggered over the first two virtual seconds.
            sc.at(millis(pid * 2), ScriptEvent::Join { pid });
            if pid % 10 == 0 {
                sc.at(
                    millis(pid * 2 + 500),
                    ScriptEvent::EnableLongPoll { pid, wait: secs(2) },
                );
            }
        }
        sc.at(
            millis(2_500),
            ScriptEvent::Act {
                pid: 17,
                action: UserAction::Click {
                    target: "#status".into(),
                },
            },
        );
        sc.at(
            secs(3),
            ScriptEvent::HostAppend {
                text: "breaking".into(),
            },
        );
        sc.at(
            secs(4),
            ScriptEvent::HostAppend {
                text: "more".into(),
            },
        );
        sc
    };

    let started = std::time::Instant::now();
    let a = build().run().unwrap();
    let single = started.elapsed();
    let b = build().run().unwrap();
    let elapsed = started.elapsed();

    assert_eq!(a, b, "thousand-participant world must replay identically");

    assert_eq!(a.participants.len(), 1_000);
    assert_eq!(a.stats.auth_failures, 0);
    assert!(a.stats.polls_parked > 0, "long-poll subset parked");
    assert!(a.stats.polls_woken > 0, "appends woke parked polls");
    assert!(
        a.stats.object_requests >= 1_000,
        "participants fetched origin objects through the agent \
         (got {})",
        a.stats.object_requests
    );
    let total_polls = a.stats.polls_with_content + a.stats.polls_empty;
    assert!(
        total_polls > 3_000,
        "sustained polling traffic (got {total_polls})"
    );
    for (pid, p) in &a.participants {
        assert_eq!(p.doc_time, a.host_doc_time, "p{pid} converged");
    }

    // Wall-clock budget: "seconds, not minutes". Debug builds get a
    // wider envelope than the optimized CI sim leg.
    let budget = if cfg!(debug_assertions) { 120 } else { 20 };
    assert!(
        elapsed.as_secs() < budget,
        "two smoke runs took {elapsed:?} (single run {single:?}), budget {budget}s"
    );
}
