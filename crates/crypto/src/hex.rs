//! Hex encoding/decoding for digests and keys.

use rcb_util::{RcbError, Result};

/// Lower-case hex encoding.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a hex string (case-insensitive, even length).
pub fn from_hex(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(RcbError::parse("hex", "odd length"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let h = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| RcbError::parse("hex", format!("bad digit {:?}", pair[0] as char)))?;
        let l = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| RcbError::parse("hex", format!("bad digit {:?}", pair[1] as char)))?;
        out.push((h * 16 + l) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00u8, 0x01, 0xab, 0xff];
        assert_eq!(to_hex(&data), "0001abff");
        assert_eq!(from_hex("0001abff").unwrap(), data);
        assert_eq!(from_hex("0001ABFF").unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn empty_ok() {
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert_eq!(to_hex(&[]), "");
    }
}
