//! HMAC-SHA256 (RFC 2104) and constant-time verification.
//!
//! RCB-Agent verifies an HMAC appended as a request-URI parameter
//! (paper §3.4): the agent recomputes the MAC over the received request
//! (with the HMAC parameter removed) and compares. Comparison here is
//! constant-time to avoid the obvious timing side channel.

use crate::hex::to_hex;
use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = Sha256::digest(key);
        key_block[..32].copy_from_slice(&d);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Hex-encoded HMAC, the form embedded into request-URIs.
pub fn hmac_sha256_hex(key: &[u8], message: &[u8]) -> String {
    to_hex(&hmac_sha256(key, message))
}

/// Constant-time equality of two byte strings.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Verifies a hex-encoded MAC against the expected value for `message`.
pub fn verify_hmac_hex(key: &[u8], message: &[u8], mac_hex: &str) -> bool {
    let expected = hmac_sha256_hex(key, message);
    ct_eq(expected.as_bytes(), mac_hex.to_ascii_lowercase().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hmac_sha256_hex(&key, b"Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hmac_sha256_hex(b"Jefe", b"what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hmac_sha256_hex(&key, &data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hmac_sha256_hex(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            ),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let key = b"session-secret";
        let msg = b"POST /poll?t=123";
        let mac = hmac_sha256_hex(key, msg);
        assert!(verify_hmac_hex(key, msg, &mac));
        assert!(verify_hmac_hex(key, msg, &mac.to_ascii_uppercase()));
        assert!(!verify_hmac_hex(key, b"POST /poll?t=124", &mac));
        assert!(!verify_hmac_hex(b"other-key", msg, &mac));
        assert!(!verify_hmac_hex(key, msg, "deadbeef"));
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
