//! Session-specific one-time secret keys.
//!
//! On the host browser "a session-specific one-time secret key is randomly
//! generated and used by RCB-Agent. The co-browsing host shares the secret
//! key with a participant using some out-of-band mechanisms" (§3.4). The
//! out-of-band channel means the key must survive being read over the phone
//! — hence the hex display form.

use rcb_util::DetRng;

use crate::hex::{from_hex, to_hex};

/// A 128-bit session secret key.
#[derive(Clone, PartialEq, Eq)]
pub struct SessionKey {
    bytes: [u8; 16],
}

impl SessionKey {
    /// Generates a key from OS entropy — the real-deployment path.
    ///
    /// Reads `/dev/urandom` directly (std exposes no other CSPRNG, and
    /// the workspace carries no external crates). On platforms without
    /// it, falls back to hashing a counter through `RandomState`, whose
    /// per-thread seed is OS-drawn — weaker (all keys on a thread derive
    /// from one 128-bit seed via SipHash), but only reachable off-unix.
    pub fn generate() -> Self {
        let mut bytes = [0u8; 16];
        if Self::fill_from_urandom(&mut bytes).is_err() {
            use std::collections::hash_map::RandomState;
            use std::hash::BuildHasher;
            for (i, chunk) in bytes.chunks_mut(8).enumerate() {
                chunk.copy_from_slice(&RandomState::new().hash_one(i as u64).to_le_bytes());
            }
        }
        SessionKey { bytes }
    }

    fn fill_from_urandom(bytes: &mut [u8]) -> std::io::Result<()> {
        use std::io::Read;
        std::fs::File::open("/dev/urandom")?.read_exact(bytes)
    }

    /// Generates a key deterministically — the simulation/experiment path.
    pub fn generate_deterministic(rng: &mut DetRng) -> Self {
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        SessionKey { bytes }
    }

    /// Builds a key from raw bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        SessionKey { bytes }
    }

    /// Parses the hex display form (what a participant types into the
    /// password field on the initial HTML page).
    pub fn from_hex(s: &str) -> rcb_util::Result<Self> {
        let v = from_hex(s.trim())?;
        if v.len() != 16 {
            return Err(rcb_util::RcbError::InvalidInput(format!(
                "session key must be 16 bytes, got {}",
                v.len()
            )));
        }
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&v);
        Ok(SessionKey { bytes })
    }

    /// Raw key material for MAC computation.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The out-of-band shareable form.
    pub fn to_hex(&self) -> String {
        to_hex(&self.bytes)
    }
}

impl std::fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through debug logs.
        write!(f, "SessionKey(****)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let mut rng = DetRng::new(1);
        let k = SessionKey::generate_deterministic(&mut rng);
        let parsed = SessionKey::from_hex(&k.to_hex()).unwrap();
        assert_eq!(k, parsed);
    }

    #[test]
    fn deterministic_generation_is_stable() {
        let a = SessionKey::generate_deterministic(&mut DetRng::new(42));
        let b = SessionKey::generate_deterministic(&mut DetRng::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn entropy_generation_differs() {
        assert_ne!(SessionKey::generate(), SessionKey::generate());
    }

    #[test]
    fn rejects_wrong_length() {
        assert!(SessionKey::from_hex("abcd").is_err());
        assert!(SessionKey::from_hex("not hex at all!!").is_err());
    }

    #[test]
    fn debug_hides_material() {
        let k = SessionKey::from_bytes([7u8; 16]);
        assert_eq!(format!("{k:?}"), "SessionKey(****)");
    }

    #[test]
    fn tolerates_surrounding_whitespace() {
        let k = SessionKey::from_bytes([1u8; 16]);
        let typed = format!("  {}\n", k.to_hex());
        assert_eq!(SessionKey::from_hex(&typed).unwrap(), k);
    }
}
