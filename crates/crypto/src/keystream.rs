//! SHA-256 counter-mode keystream cipher.
//!
//! The paper notes that "any important information in a request can also be
//! efficiently encrypted using a JavaScript implementation" (§3.4). This
//! module provides the equivalent primitive: a keystream generated as
//! `SHA256(key || nonce || counter)` blocks, XORed with the plaintext.
//! Encryption and decryption are the same operation.

use crate::sha256::Sha256;

/// Applies the keystream derived from `(key, nonce)` to `data` in place.
pub fn apply_keystream(key: &[u8], nonce: u64, data: &mut [u8]) {
    let mut counter: u64 = 0;
    let mut offset = 0;
    while offset < data.len() {
        let mut h = Sha256::new();
        h.update(key);
        h.update(&nonce.to_be_bytes());
        h.update(&counter.to_be_bytes());
        let block = h.finalize();
        let n = (data.len() - offset).min(32);
        for i in 0..n {
            data[offset + i] ^= block[i];
        }
        offset += n;
        counter += 1;
    }
}

/// Encrypts a byte string, returning a new vector.
pub fn encrypt(key: &[u8], nonce: u64, plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    apply_keystream(key, nonce, &mut out);
    out
}

/// Decrypts a byte string, returning a new vector.
pub fn decrypt(key: &[u8], nonce: u64, ciphertext: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let key = b"k";
        let pt = b"shipping address: 123 Main St".to_vec();
        let ct = encrypt(key, 7, &pt);
        assert_ne!(ct, pt);
        assert_eq!(decrypt(key, 7, &ct), pt);
    }

    #[test]
    fn nonce_separates_streams() {
        let key = b"key";
        let pt = vec![0u8; 64];
        assert_ne!(encrypt(key, 1, &pt), encrypt(key, 2, &pt));
    }

    #[test]
    fn key_separates_streams() {
        let pt = vec![0u8; 64];
        assert_ne!(encrypt(b"a", 1, &pt), encrypt(b"b", 1, &pt));
    }

    #[test]
    fn wrong_nonce_fails_to_decrypt() {
        let ct = encrypt(b"k", 1, b"secret");
        assert_ne!(decrypt(b"k", 2, &ct), b"secret".to_vec());
    }

    #[test]
    fn multi_block_lengths() {
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            let pt = vec![0xA5u8; len];
            let ct = encrypt(b"k", 9, &pt);
            assert_eq!(decrypt(b"k", 9, &ct), pt, "len={len}");
        }
    }
}
