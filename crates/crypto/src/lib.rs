//! Cryptographic substrate for RCB request authentication.
//!
//! The paper (§3.4) authenticates every Ajax-Snippet request with an HMAC
//! computed over the request under a session-specific one-time secret key
//! shared out of band, and notes that small request payloads "can also be
//! efficiently encrypted using a JavaScript implementation". The paper does
//! not fix a hash; this reproduction uses SHA-256, implemented from scratch
//! (FIPS 180-4) so the workspace carries no external crypto dependency.
//!
//! Provided primitives:
//!
//! * [`sha256`] — the compression function and streaming hasher;
//! * [`hmac`] — HMAC-SHA256 (RFC 2104) plus constant-time verification;
//! * [`keystream`] — a SHA-256-in-counter-mode stream cipher for the
//!   "encrypt important information in a request" path;
//! * [`keys`] — session key generation/encoding.

pub mod hex;
pub mod hmac;
pub mod keys;
pub mod keystream;
pub mod sha256;

pub use hmac::{hmac_sha256, verify_hmac_hex};
pub use keys::SessionKey;
pub use sha256::Sha256;
