//! HMAC-SHA256 sign/verify tests: RFC 4231 conformance vectors plus the
//! binding properties the request-authentication scheme (§3.4) relies on.

use rcb_crypto::hmac::{hmac_sha256, hmac_sha256_hex};
use rcb_crypto::{verify_hmac_hex, SessionKey};
use rcb_util::DetRng;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn rfc4231_test_case_1() {
    let key = [0x0bu8; 20];
    let mac = hmac_sha256(&key, b"Hi There");
    assert_eq!(
        hex(&mac),
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    );
}

#[test]
fn rfc4231_test_case_2() {
    let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
    assert_eq!(
        hex(&mac),
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    );
}

#[test]
fn rfc4231_test_case_3() {
    let key = [0xaau8; 20];
    let data = [0xddu8; 50];
    let mac = hmac_sha256(&key, &data);
    assert_eq!(
        hex(&mac),
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    );
}

#[test]
fn rfc4231_test_case_6_long_key() {
    // Keys longer than the block size must be hashed first.
    let key = [0xaau8; 131];
    let mac = hmac_sha256(
        &key,
        b"Test Using Larger Than Block-Size Key - Hash Key First",
    );
    assert_eq!(
        hex(&mac),
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    );
}

#[test]
fn sign_then_verify_accepts() {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(7));
    for msg in [b"".as_slice(), b"poll?pid=1&ts=0", &[0u8; 300]] {
        let mac = hmac_sha256_hex(key.as_bytes(), msg);
        assert!(verify_hmac_hex(key.as_bytes(), msg, &mac));
    }
}

#[test]
fn verify_rejects_tampered_message() {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(7));
    let mac = hmac_sha256_hex(key.as_bytes(), b"pid=1&action=click");
    assert!(!verify_hmac_hex(
        key.as_bytes(),
        b"pid=2&action=click",
        &mac
    ));
    assert!(!verify_hmac_hex(
        key.as_bytes(),
        b"pid=1&action=click ",
        &mac
    ));
}

#[test]
fn verify_rejects_wrong_key() {
    let key_a = SessionKey::generate_deterministic(&mut DetRng::new(1));
    let key_b = SessionKey::generate_deterministic(&mut DetRng::new(2));
    let mac = hmac_sha256_hex(key_a.as_bytes(), b"message");
    assert!(!verify_hmac_hex(key_b.as_bytes(), b"message", &mac));
}

#[test]
fn verify_rejects_malformed_or_truncated_mac() {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(7));
    let mac = hmac_sha256_hex(key.as_bytes(), b"message");
    assert!(!verify_hmac_hex(key.as_bytes(), b"message", &mac[..32]));
    assert!(!verify_hmac_hex(key.as_bytes(), b"message", ""));
    assert!(!verify_hmac_hex(
        key.as_bytes(),
        b"message",
        "zz not hex zz"
    ));
    // Single-bit flip in the first nibble.
    let flipped = format!(
        "{}{}",
        if mac.starts_with('0') { "1" } else { "0" },
        &mac[1..]
    );
    assert!(!verify_hmac_hex(key.as_bytes(), b"message", &flipped));
}

#[test]
fn distinct_messages_get_distinct_macs() {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(3));
    let macs: Vec<String> = (0u32..50)
        .map(|i| hmac_sha256_hex(key.as_bytes(), &i.to_le_bytes()))
        .collect();
    let unique: std::collections::HashSet<&String> = macs.iter().collect();
    assert_eq!(unique.len(), macs.len());
}
