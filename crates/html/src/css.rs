//! CSS selector matching.
//!
//! The agent's rewriting passes and the scenario scripts keep needing
//! "find the elements that look like X" queries; bare tag/id lookups
//! (see [`crate::query`]) cover the protocol hot paths, and this module
//! adds the selector language for everything else: simple selectors
//! (`div`, `#id`, `.class`, `[attr]`, `[attr=value]`, `*`), compounds
//! (`a.nav[href]`), descendant combinators (`ul li a`), child combinators
//! (`ul > li`), and comma-separated groups.

use rcb_util::{RcbError, Result};

use crate::dom::{Document, NodeData, NodeId};

/// One test inside a compound selector.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SimpleSelector {
    /// Matches any element.
    Universal,
    /// Tag name (lower-cased).
    Tag(String),
    /// `#id`.
    Id(String),
    /// `.class` (matches any whitespace-separated class token).
    Class(String),
    /// `[attr]` — attribute present.
    HasAttr(String),
    /// `[attr=value]` — attribute equals value exactly.
    AttrEq(String, String),
}

/// A compound selector: all simple selectors must match one element.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Compound {
    parts: Vec<SimpleSelector>,
}

/// How a compound relates to the one to its right.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Combinator {
    /// Whitespace: ancestor.
    Descendant,
    /// `>`: parent.
    Child,
}

/// One complex selector: compounds joined by combinators, matched
/// right-to-left.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Complex {
    /// `(combinator-to-the-right-of-this-compound, compound)` — the last
    /// entry is the subject (rightmost) compound.
    compounds: Vec<(Combinator, Compound)>,
}

/// A parsed selector list (`a, b c, d > e`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    complexes: Vec<Complex>,
}

impl Selector {
    /// Parses a selector list.
    pub fn parse(input: &str) -> Result<Selector> {
        let mut complexes = Vec::new();
        for group in input.split(',') {
            let group = group.trim();
            if group.is_empty() {
                return Err(RcbError::parse("css", "empty selector in group"));
            }
            complexes.push(parse_complex(group)?);
        }
        if complexes.is_empty() {
            return Err(RcbError::parse("css", "empty selector list"));
        }
        Ok(Selector { complexes })
    }

    /// Whether `node` matches this selector within `doc`.
    pub fn matches(&self, doc: &Document, node: NodeId) -> bool {
        self.complexes.iter().any(|c| matches_complex(doc, node, c))
    }

    /// All descendants of `scope` matching the selector, document order.
    pub fn select(&self, doc: &Document, scope: NodeId) -> Vec<NodeId> {
        doc.descendants(scope)
            .into_iter()
            .filter(|&n| matches!(doc.data(n), NodeData::Element { .. }))
            .filter(|&n| self.matches(doc, n))
            .collect()
    }

    /// First match under `scope`, if any.
    pub fn select_first(&self, doc: &Document, scope: NodeId) -> Option<NodeId> {
        self.select(doc, scope).into_iter().next()
    }
}

/// Convenience: parse + select in one call.
pub fn select(doc: &Document, scope: NodeId, selector: &str) -> Result<Vec<NodeId>> {
    Ok(Selector::parse(selector)?.select(doc, scope))
}

fn parse_complex(input: &str) -> Result<Complex> {
    // Tokenize on whitespace and '>'.
    let mut compounds: Vec<(Combinator, Compound)> = Vec::new();
    let mut pending = Combinator::Descendant;
    let mut expecting_compound = true;
    for token in tokenize_complex(input) {
        match token.as_str() {
            ">" => {
                if expecting_compound {
                    return Err(RcbError::parse("css", "combinator without left side"));
                }
                pending = Combinator::Child;
                expecting_compound = true;
            }
            t => {
                compounds.push((pending, parse_compound(t)?));
                pending = Combinator::Descendant;
                expecting_compound = false;
            }
        }
    }
    if compounds.is_empty() || expecting_compound && !compounds.is_empty() {
        if compounds.is_empty() {
            return Err(RcbError::parse("css", "empty complex selector"));
        }
        return Err(RcbError::parse("css", "dangling combinator"));
    }
    Ok(Complex { compounds })
}

fn tokenize_complex(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_brackets = false;
    for c in input.chars() {
        match c {
            '[' => {
                in_brackets = true;
                cur.push(c);
            }
            ']' => {
                in_brackets = false;
                cur.push(c);
            }
            '>' if !in_brackets => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                out.push(">".to_string());
                cur.clear();
            }
            c if c.is_whitespace() && !in_brackets => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            c => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_compound(input: &str) -> Result<Compound> {
    let mut parts = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let err = |detail: String| RcbError::parse("css", detail);
    while i < bytes.len() {
        match bytes[i] {
            b'*' => {
                parts.push(SimpleSelector::Universal);
                i += 1;
            }
            b'#' => {
                let (name, next) = take_ident(input, i + 1);
                if name.is_empty() {
                    return Err(err(format!("empty id in {input:?}")));
                }
                parts.push(SimpleSelector::Id(name));
                i = next;
            }
            b'.' => {
                let (name, next) = take_ident(input, i + 1);
                if name.is_empty() {
                    return Err(err(format!("empty class in {input:?}")));
                }
                parts.push(SimpleSelector::Class(name));
                i = next;
            }
            b'[' => {
                let close = input[i..]
                    .find(']')
                    .ok_or_else(|| err(format!("unterminated attribute in {input:?}")))?
                    + i;
                let body = &input[i + 1..close];
                match body.split_once('=') {
                    Some((k, v)) => {
                        let v = v.trim().trim_matches('"').trim_matches('\'');
                        parts.push(SimpleSelector::AttrEq(
                            k.trim().to_ascii_lowercase(),
                            v.to_string(),
                        ));
                    }
                    None => {
                        if body.trim().is_empty() {
                            return Err(err("empty attribute selector".to_string()));
                        }
                        parts.push(SimpleSelector::HasAttr(body.trim().to_ascii_lowercase()));
                    }
                }
                i = close + 1;
            }
            _ => {
                let (name, next) = take_ident(input, i);
                if name.is_empty() {
                    return Err(err(format!("unexpected {:?} in selector", &input[i..])));
                }
                parts.push(SimpleSelector::Tag(name.to_ascii_lowercase()));
                i = next;
            }
        }
    }
    if parts.is_empty() {
        return Err(err("empty compound selector".to_string()));
    }
    Ok(Compound { parts })
}

fn take_ident(input: &str, start: usize) -> (String, usize) {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'-' | b'_')) {
        i += 1;
    }
    (input[start..i].to_string(), i)
}

fn matches_compound(doc: &Document, node: NodeId, compound: &Compound) -> bool {
    let NodeData::Element { tag, attrs } = doc.data(node) else {
        return false;
    };
    compound.parts.iter().all(|part| match part {
        SimpleSelector::Universal => true,
        SimpleSelector::Tag(t) => t == tag,
        SimpleSelector::Id(id) => attrs.iter().any(|(k, v)| k == "id" && v == id),
        SimpleSelector::Class(c) => attrs
            .iter()
            .any(|(k, v)| k == "class" && v.split_ascii_whitespace().any(|tok| tok == c)),
        SimpleSelector::HasAttr(a) => attrs.iter().any(|(k, _)| k == a),
        SimpleSelector::AttrEq(a, val) => attrs.iter().any(|(k, v)| k == a && v == val),
    })
}

fn matches_complex(doc: &Document, node: NodeId, complex: &Complex) -> bool {
    // Right-to-left: the subject must match the last compound, then walk
    // ancestors satisfying the remaining compounds. Each entry's
    // combinator relates it to the compound on its *left*, so the
    // combinator to apply while stepping left comes from the entry just
    // matched.
    let (subject_comb, subject) = complex.compounds.last().expect("non-empty by parse");
    if !matches_compound(doc, node, subject) {
        return false;
    }
    fn walk(
        doc: &Document,
        below: NodeId,
        compounds: &[(Combinator, Compound)],
        comb_to_right: Combinator,
    ) -> bool {
        let Some(((comb_left, compound), rest)) = compounds.split_last() else {
            return true;
        };
        match comb_to_right {
            Combinator::Child => {
                let Some(parent) = doc.parent(below) else {
                    return false;
                };
                matches_compound(doc, parent, compound) && walk(doc, parent, rest, *comb_left)
            }
            Combinator::Descendant => {
                let mut cur = doc.parent(below);
                while let Some(p) = cur {
                    if matches_compound(doc, p, compound) && walk(doc, p, rest, *comb_left) {
                        return true;
                    }
                    cur = doc.parent(p);
                }
                false
            }
        }
    }
    let rest = &complex.compounds[..complex.compounds.len() - 1];
    walk(doc, node, rest, *subject_comb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn doc() -> Document {
        parse_document(
            "<html><body>\
             <ul class=\"nav main\" id=\"menu\">\
               <li class=\"item\"><a href=\"/a\" class=\"link hot\">A</a></li>\
               <li class=\"item sel\"><a href=\"/b\">B</a></li>\
             </ul>\
             <div id=\"content\">\
               <p>text <a name=\"anchor\">C</a></p>\
               <form action=\"/s\"><input type=\"text\" name=\"q\"></form>\
             </div>\
             </body></html>",
        )
    }

    fn texts(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| doc.text_content(n)).collect()
    }

    #[test]
    fn tag_id_class_universal() {
        let d = doc();
        let r = d.root();
        assert_eq!(select(&d, r, "li").unwrap().len(), 2);
        assert_eq!(select(&d, r, "#menu").unwrap().len(), 1);
        assert_eq!(select(&d, r, ".item").unwrap().len(), 2);
        assert_eq!(select(&d, r, ".sel").unwrap().len(), 1);
        assert_eq!(select(&d, r, ".nav").unwrap().len(), 1, "class token match");
        let all = select(&d, r, "*").unwrap();
        assert!(all.len() > 8);
    }

    #[test]
    fn attribute_selectors() {
        let d = doc();
        let r = d.root();
        assert_eq!(select(&d, r, "a[href]").unwrap().len(), 2);
        assert_eq!(select(&d, r, "a[name]").unwrap().len(), 1);
        assert_eq!(select(&d, r, "[type=text]").unwrap().len(), 1);
        assert_eq!(select(&d, r, "a[href=\"/b\"]").unwrap().len(), 1);
        assert_eq!(select(&d, r, "a[href='/zz']").unwrap().len(), 0);
    }

    #[test]
    fn compound_selectors() {
        let d = doc();
        let r = d.root();
        assert_eq!(select(&d, r, "li.sel").unwrap().len(), 1);
        assert_eq!(select(&d, r, "a.link.hot[href]").unwrap().len(), 1);
        assert_eq!(select(&d, r, "ul#menu.nav").unwrap().len(), 1);
        assert_eq!(select(&d, r, "div.item").unwrap().len(), 0);
    }

    #[test]
    fn descendant_and_child_combinators() {
        let d = doc();
        let r = d.root();
        let descendant = select(&d, r, "ul a").unwrap();
        assert_eq!(texts(&d, &descendant), vec!["A", "B"]);
        let child = select(&d, r, "ul > li").unwrap();
        assert_eq!(child.len(), 2);
        // "ul > a" must not match: anchors are grandchildren.
        assert_eq!(select(&d, r, "ul > a").unwrap().len(), 0);
        let deep = select(&d, r, "#content p > a").unwrap();
        assert_eq!(texts(&d, &deep), vec!["C"]);
        assert_eq!(
            select(&d, r, "body #menu .item a[href='/a']")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn selector_groups() {
        let d = doc();
        let r = d.root();
        let both = select(&d, r, "#menu, #content").unwrap();
        assert_eq!(both.len(), 2);
        let mixed = select(&d, r, "input, a.hot").unwrap();
        assert_eq!(mixed.len(), 2);
    }

    #[test]
    fn matches_api() {
        let d = doc();
        let r = d.root();
        let sel = Selector::parse("li.sel").unwrap();
        let li = select(&d, r, ".sel").unwrap()[0];
        assert!(sel.matches(&d, li));
        let other = select(&d, r, ".item").unwrap()[0];
        assert!(!sel.matches(&d, other));
        assert_eq!(sel.select_first(&d, r), Some(li));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "", " , ", "#", ".", "ul >", "> li", "a[", "a[]", "a[ ]", "!!",
        ] {
            assert!(Selector::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn text_nodes_never_match() {
        let d = doc();
        let sel = Selector::parse("*").unwrap();
        for n in d.descendants(d.root()) {
            if matches!(d.data(n), NodeData::Text(_)) {
                assert!(!sel.matches(&d, n));
            }
        }
    }
}
