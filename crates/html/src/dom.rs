//! Arena-backed DOM.
//!
//! Nodes live in a flat `Vec` owned by the [`Document`]; relationships are
//! indices ([`NodeId`]). Detached nodes stay in the arena until the
//! document is dropped — fine for this workload, where documents are
//! rebuilt per navigation (matching how the agent regenerates content per
//! page, §4.1.2).

use rcb_util::{RcbError, Result};

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// The payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// The document node (arena root).
    Document,
    /// `<!DOCTYPE ...>` — stored verbatim after the keyword.
    Doctype(String),
    /// An element: lower-cased tag plus attributes in source order.
    Element {
        /// Lower-cased tag name.
        tag: String,
        /// Attribute name-value pairs (names lower-cased).
        attrs: Vec<(String, String)>,
    },
    /// A text node (entity-decoded).
    Text(String),
    /// A comment node.
    Comment(String),
}

#[derive(Debug, Clone)]
struct Node {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    data: NodeData,
}

/// An HTML document backed by a node arena.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates a document containing only the document node.
    pub fn new() -> Document {
        Document {
            nodes: vec![Node {
                parent: None,
                children: Vec::new(),
                data: NodeData::Document,
            }],
        }
    }

    /// The document node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes in the arena (including detached ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    // ---- Node constructors -------------------------------------------------

    /// Creates a detached element.
    pub fn create_element(&mut self, tag: &str) -> NodeId {
        self.push(NodeData::Element {
            tag: tag.to_ascii_lowercase(),
            attrs: Vec::new(),
        })
    }

    /// Creates a detached element with attributes.
    pub fn create_element_with_attrs(&mut self, tag: &str, attrs: Vec<(String, String)>) -> NodeId {
        self.push(NodeData::Element {
            tag: tag.to_ascii_lowercase(),
            attrs,
        })
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.push(NodeData::Text(text.into()))
    }

    /// Creates a detached comment node.
    pub fn create_comment(&mut self, text: impl Into<String>) -> NodeId {
        self.push(NodeData::Comment(text.into()))
    }

    /// Creates a detached doctype node.
    pub fn create_doctype(&mut self, text: impl Into<String>) -> NodeId {
        self.push(NodeData::Doctype(text.into()))
    }

    fn push(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            parent: None,
            children: Vec::new(),
            data,
        });
        id
    }

    // ---- Accessors ---------------------------------------------------------

    /// The node's payload.
    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0].data
    }

    /// The node's parent, if attached.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// The node's children, in order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0].children
    }

    /// The element's tag, if `id` is an element.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.0].data {
            NodeData::Element { tag, .. } => Some(tag.as_str()),
            _ => None,
        }
    }

    /// Whether `id` is an element with the given (case-insensitive) tag.
    pub fn is_element(&self, id: NodeId, tag: &str) -> bool {
        self.tag(id).is_some_and(|t| t.eq_ignore_ascii_case(tag))
    }

    /// The element's attributes, if `id` is an element.
    pub fn attrs(&self, id: NodeId) -> &[(String, String)] {
        match &self.nodes[id.0].data {
            NodeData::Element { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Attribute value by (case-insensitive) name.
    pub fn get_attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attrs(id)
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Text of a text node.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.0].data {
            NodeData::Text(t) => Some(t.as_str()),
            _ => None,
        }
    }

    // ---- Mutation ----------------------------------------------------------

    /// Sets (or adds) an attribute.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: impl Into<String>) {
        let name_lower = name.to_ascii_lowercase();
        if let NodeData::Element { attrs, .. } = &mut self.nodes[id.0].data {
            if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == name_lower) {
                slot.1 = value.into();
            } else {
                attrs.push((name_lower, value.into()));
            }
        }
    }

    /// Removes an attribute if present.
    pub fn remove_attr(&mut self, id: NodeId, name: &str) {
        let name_lower = name.to_ascii_lowercase();
        if let NodeData::Element { attrs, .. } = &mut self.nodes[id.0].data {
            attrs.retain(|(n, _)| *n != name_lower);
        }
    }

    /// Replaces a text node's contents.
    pub fn set_text(&mut self, id: NodeId, text: impl Into<String>) -> Result<()> {
        match &mut self.nodes[id.0].data {
            NodeData::Text(t) => {
                *t = text.into();
                Ok(())
            }
            _ => Err(RcbError::InvalidInput("set_text on a non-text node".into())),
        }
    }

    /// Appends `child` as the last child of `parent`, detaching it from any
    /// previous parent first. Errors on cycles.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        if parent == child || self.is_ancestor(child, parent) {
            return Err(RcbError::InvalidInput(
                "append_child would create a cycle".into(),
            ));
        }
        self.detach(child);
        self.nodes[child.0].parent = Some(parent);
        self.nodes[parent.0].children.push(child);
        Ok(())
    }

    /// Inserts `child` before `reference` under `parent`.
    pub fn insert_before(
        &mut self,
        parent: NodeId,
        child: NodeId,
        reference: NodeId,
    ) -> Result<()> {
        if parent == child || self.is_ancestor(child, parent) {
            return Err(RcbError::InvalidInput(
                "insert_before would create a cycle".into(),
            ));
        }
        let idx = self.nodes[parent.0]
            .children
            .iter()
            .position(|&c| c == reference)
            .ok_or_else(|| RcbError::InvalidInput("reference is not a child of parent".into()))?;
        self.detach(child);
        self.nodes[child.0].parent = Some(parent);
        self.nodes[parent.0].children.insert(idx, child);
        Ok(())
    }

    /// Detaches a node from its parent (no-op when already detached).
    pub fn detach(&mut self, id: NodeId) {
        if let Some(p) = self.nodes[id.0].parent.take() {
            self.nodes[p.0].children.retain(|&c| c != id);
        }
    }

    /// Removes all children of `id` (they remain in the arena, detached).
    pub fn clear_children(&mut self, id: NodeId) {
        let children = std::mem::take(&mut self.nodes[id.0].children);
        for c in children {
            self.nodes[c.0].parent = None;
        }
    }

    fn is_ancestor(&self, candidate: NodeId, of: NodeId) -> bool {
        let mut cur = self.nodes[of.0].parent;
        while let Some(p) = cur {
            if p == candidate {
                return true;
            }
            cur = self.nodes[p.0].parent;
        }
        false
    }

    // ---- Cloning -----------------------------------------------------------

    /// Deep-clones the subtree rooted at `id`, returning the detached clone
    /// root. This is the agent's "clone a documentElement node" primitive
    /// (Fig. 3, step 1): mutations to the clone never touch the original.
    pub fn deep_clone(&mut self, id: NodeId) -> NodeId {
        let data = self.nodes[id.0].data.clone();
        let children: Vec<NodeId> = self.nodes[id.0].children.clone();
        let clone = self.push(data);
        for child in children {
            let cc = self.deep_clone(child);
            self.nodes[cc.0].parent = Some(clone);
            self.nodes[clone.0].children.push(cc);
        }
        clone
    }

    /// Deep-clones a subtree from `src` into `self`, returning the new root.
    pub fn import_subtree(&mut self, src: &Document, id: NodeId) -> NodeId {
        let clone = self.push(src.nodes[id.0].data.clone());
        for &child in &src.nodes[id.0].children {
            let cc = self.import_subtree(src, child);
            self.nodes[cc.0].parent = Some(clone);
            self.nodes[clone.0].children.push(cc);
        }
        clone
    }

    // ---- Document structure ------------------------------------------------

    /// The `<html>` element, if present.
    pub fn document_element(&self) -> Option<NodeId> {
        self.children(self.root())
            .iter()
            .copied()
            .find(|&c| self.is_element(c, "html"))
    }

    /// The `<head>` element, if present.
    pub fn head(&self) -> Option<NodeId> {
        let html = self.document_element()?;
        self.children(html)
            .iter()
            .copied()
            .find(|&c| self.is_element(c, "head"))
    }

    /// The `<body>` element, if present.
    pub fn body(&self) -> Option<NodeId> {
        let html = self.document_element()?;
        self.children(html)
            .iter()
            .copied()
            .find(|&c| self.is_element(c, "body"))
    }

    /// The `<frameset>` element, if this is a frame page.
    pub fn frameset(&self) -> Option<NodeId> {
        let html = self.document_element()?;
        self.children(html)
            .iter()
            .copied()
            .find(|&c| self.is_element(c, "frameset"))
    }

    /// All descendants of `id` in document order (excluding `id`).
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n).iter().rev().copied());
        }
        out
    }

    /// Concatenated text of all descendant text nodes.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let NodeData::Text(t) = self.data(n) {
                out.push_str(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skeleton() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let html = doc.create_element("html");
        let head = doc.create_element("head");
        let body = doc.create_element("body");
        let root = doc.root();
        doc.append_child(root, html).unwrap();
        doc.append_child(html, head).unwrap();
        doc.append_child(html, body).unwrap();
        (doc, html, head, body)
    }

    #[test]
    fn structure_accessors() {
        let (doc, html, head, body) = skeleton();
        assert_eq!(doc.document_element(), Some(html));
        assert_eq!(doc.head(), Some(head));
        assert_eq!(doc.body(), Some(body));
        assert_eq!(doc.frameset(), None);
        assert_eq!(doc.parent(head), Some(html));
    }

    #[test]
    fn attrs_case_insensitive() {
        let mut doc = Document::new();
        let el = doc.create_element("IMG");
        assert_eq!(doc.tag(el), Some("img"));
        doc.set_attr(el, "SRC", "/a.png");
        assert_eq!(doc.get_attr(el, "src"), Some("/a.png"));
        doc.set_attr(el, "src", "/b.png");
        assert_eq!(doc.attrs(el).len(), 1);
        assert_eq!(doc.get_attr(el, "Src"), Some("/b.png"));
        doc.remove_attr(el, "SRC");
        assert_eq!(doc.get_attr(el, "src"), None);
    }

    #[test]
    fn append_detach_reparent() {
        let (mut doc, _, head, body) = skeleton();
        let div = doc.create_element("div");
        doc.append_child(body, div).unwrap();
        assert_eq!(doc.children(body), &[div]);
        // Re-appending moves, not duplicates.
        doc.append_child(head, div).unwrap();
        assert!(doc.children(body).is_empty());
        assert_eq!(doc.children(head), &[div]);
        doc.detach(div);
        assert_eq!(doc.parent(div), None);
        doc.detach(div); // idempotent
    }

    #[test]
    fn cycles_rejected() {
        let (mut doc, html, _, body) = skeleton();
        assert!(doc.append_child(body, html).is_err());
        assert!(doc.append_child(body, body).is_err());
    }

    #[test]
    fn insert_before_positions() {
        let (mut doc, _, _, body) = skeleton();
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        let c = doc.create_element("c");
        doc.append_child(body, a).unwrap();
        doc.append_child(body, c).unwrap();
        doc.insert_before(body, b, c).unwrap();
        assert_eq!(doc.children(body), &[a, b, c]);
        let stray = doc.create_element("x");
        assert!(doc.insert_before(body, stray, NodeId(0)).is_err());
    }

    #[test]
    fn deep_clone_is_independent() {
        let (mut doc, _, _, body) = skeleton();
        let div = doc.create_element("div");
        doc.set_attr(div, "id", "menu");
        let t = doc.create_text("hello");
        doc.append_child(div, t).unwrap();
        doc.append_child(body, div).unwrap();

        let clone = doc.deep_clone(div);
        assert_eq!(doc.parent(clone), None);
        assert_eq!(doc.get_attr(clone, "id"), Some("menu"));
        // Mutating the clone leaves the original untouched (Fig. 3 step 1).
        doc.set_attr(clone, "id", "changed");
        let clone_text = doc.children(clone)[0];
        doc.set_text(clone_text, "bye").unwrap();
        assert_eq!(doc.get_attr(div, "id"), Some("menu"));
        assert_eq!(doc.text_content(div), "hello");
        assert_eq!(doc.text_content(clone), "bye");
    }

    #[test]
    fn import_subtree_across_documents() {
        let (doc_a, _, _, body_a) = {
            let (mut d, h, hd, b) = skeleton();
            let p = d.create_element("p");
            let t = d.create_text("imported");
            d.append_child(p, t).unwrap();
            d.append_child(b, p).unwrap();
            (d, h, hd, b)
        };
        let mut doc_b = Document::new();
        let copied = doc_b.import_subtree(&doc_a, body_a);
        assert!(doc_b.is_element(copied, "body"));
        assert_eq!(doc_b.text_content(copied), "imported");
    }

    #[test]
    fn descendants_in_document_order() {
        let (mut doc, html, head, body) = skeleton();
        let d1 = doc.create_element("div");
        let d2 = doc.create_element("span");
        doc.append_child(body, d1).unwrap();
        doc.append_child(d1, d2).unwrap();
        assert_eq!(doc.descendants(html), vec![head, body, d1, d2]);
    }

    #[test]
    fn clear_children_detaches_all() {
        let (mut doc, _, _, body) = skeleton();
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        doc.append_child(body, a).unwrap();
        doc.append_child(body, b).unwrap();
        doc.clear_children(body);
        assert!(doc.children(body).is_empty());
        assert_eq!(doc.parent(a), None);
        assert_eq!(doc.parent(b), None);
    }

    #[test]
    fn set_text_rejects_non_text() {
        let mut doc = Document::new();
        let el = doc.create_element("p");
        assert!(doc.set_text(el, "x").is_err());
    }
}
