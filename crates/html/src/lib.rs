//! HTML/DOM substrate.
//!
//! RCB-Agent operates on the host browser's live DOM: it *clones the
//! documentElement node*, rewrites URLs and event attributes on the clone,
//! and extracts per-element attribute lists and innerHTML values (paper
//! §4.1.2). Ajax-Snippet does the inverse on the participant browser:
//! it sets head/body content from the received payloads, via innerHTML on
//! Firefox or DOM construction on IE (§4.2.2). None of that machinery
//! exists in Rust, so this crate builds it:
//!
//! * [`tokenizer`] — an HTML tokenizer (tags, attributes, entities,
//!   comments, doctype, raw-text elements);
//! * [`parser`] — a tolerant tree builder with the implicit `html`/`head`/
//!   `body` structure, frameset pages, void elements, and implicit end
//!   tags; plus a fragment parser used by `set_inner_html`;
//! * [`dom`] — an arena [`Document`] with typed nodes, deep clone, and
//!   mutation primitives;
//! * [`serialize`] — `innerHTML`/`outerHTML` serialization;
//! * [`query`] — traversal and lookup helpers;
//! * [`css`] — CSS selector matching (compounds, descendant/child
//!   combinators, groups) for scenario scripts and downstream users.
//!
//! The parser covers the HTML subset a 2009-era homepage exercises; it is
//! deliberately not a full HTML5 spec tree-builder (see DESIGN.md).

pub mod css;
pub mod dom;
pub mod parser;
pub mod query;
pub mod serialize;
pub mod tokenizer;

pub use dom::{Document, NodeData, NodeId};
pub use parser::{parse_document, parse_fragment_into};
pub use serialize::{inner_html, outer_html};
