//! Tolerant HTML tree builder.
//!
//! Two entry points:
//!
//! * [`parse_document`] — builds a full document with the implicit
//!   `html`/`head`/`body` (or `frameset`) structure browsers synthesize;
//! * [`parse_fragment_into`] — parses a fragment into detached nodes, the
//!   primitive behind `set_inner_html` (what Ajax-Snippet effectively does
//!   when it assigns innerHTML on the participant browser, §4.2.2).

use crate::dom::{Document, NodeId};
use crate::tokenizer::{tokenize, Token};

/// Elements that never have children (HTML void elements, plus `frame`).
pub fn is_void_element(tag: &str) -> bool {
    matches!(
        tag,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "frame"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Elements that belong to the document head.
fn is_head_content(tag: &str) -> bool {
    matches!(
        tag,
        "title" | "meta" | "link" | "style" | "script" | "base" | "noscript"
    )
}

/// Returns the set of open tags that a new `tag` implicitly closes.
fn implicitly_closes(tag: &str, open: &str) -> bool {
    match tag {
        "li" => open == "li",
        "p" => open == "p",
        "tr" => matches!(open, "tr" | "td" | "th"),
        "td" | "th" => matches!(open, "td" | "th"),
        "option" => open == "option",
        "dt" | "dd" => matches!(open, "dt" | "dd"),
        "thead" | "tbody" | "tfoot" => {
            matches!(open, "thead" | "tbody" | "tfoot" | "tr" | "td" | "th")
        }
        // Block-level content closes an open paragraph.
        "div" | "ul" | "ol" | "table" | "form" | "h1" | "h2" | "h3" | "h4" | "h5" | "h6"
        | "blockquote" | "pre" | "section" | "article" => open == "p",
        _ => false,
    }
}

/// Parses a complete HTML document.
pub fn parse_document(input: &str) -> Document {
    let mut doc = Document::new();
    let tokens = tokenize(input);
    let root = doc.root();

    // Pass 1: does the page use frames?
    let uses_frameset = tokens
        .iter()
        .any(|t| matches!(t, Token::StartTag { name, .. } if name == "frameset"));

    // Synthesized skeleton; real <html>/<head>/<body> tags merge into it.
    let html = doc.create_element("html");
    let head = doc.create_element("head");
    doc.append_child(root, html).expect("fresh tree is acyclic");
    doc.append_child(html, head).expect("fresh tree is acyclic");
    let body = if uses_frameset {
        None
    } else {
        let b = doc.create_element("body");
        doc.append_child(html, b).expect("fresh tree is acyclic");
        Some(b)
    };

    #[derive(PartialEq)]
    enum Mode {
        BeforeBody,
        InBody,
    }
    let mut mode = Mode::BeforeBody;
    // Stack of open elements *below* head/body level.
    let mut stack: Vec<NodeId> = Vec::new();

    let current_container = |stack: &[NodeId], mode: &Mode| -> NodeId {
        if let Some(&top) = stack.last() {
            top
        } else {
            match mode {
                Mode::BeforeBody => head,
                Mode::InBody => body.unwrap_or(html),
            }
        }
    };

    for token in tokens {
        match token {
            Token::Doctype(d) => {
                let dt = doc.create_doctype(d);
                // Doctype precedes <html> under the document node.
                doc.detach(dt);
                let _ = doc.insert_before(root, dt, html);
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                match name.as_str() {
                    "html" => {
                        for (n, v) in attrs {
                            doc.set_attr(html, &n, v);
                        }
                        continue;
                    }
                    "head" => continue,
                    "body" => {
                        if let Some(b) = body {
                            for (n, v) in attrs {
                                doc.set_attr(b, &n, v);
                            }
                        }
                        mode = Mode::InBody;
                        stack.clear();
                        continue;
                    }
                    "frameset" if stack.is_empty() => {
                        let fs = doc.create_element_with_attrs("frameset", attrs);
                        doc.append_child(html, fs).expect("frameset under html");
                        stack.push(fs);
                        mode = Mode::InBody;
                        continue;
                    }
                    _ => {}
                }
                // Head content stays in head until body content appears.
                if mode == Mode::BeforeBody && !is_head_content(&name) && stack.is_empty() {
                    mode = Mode::InBody;
                }
                // Implicit end tags.
                while let Some(&top) = stack.last() {
                    let top_tag = doc.tag(top).unwrap_or("").to_string();
                    if implicitly_closes(&name, &top_tag) {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let parent = current_container(&stack, &mode);
                let el = doc.create_element_with_attrs(&name, attrs);
                doc.append_child(parent, el)
                    .expect("parser tree is acyclic");
                if !self_closing && !is_void_element(&name) {
                    stack.push(el);
                }
            }
            Token::EndTag { name } => {
                match name.as_str() {
                    "html" | "head" => continue,
                    "body" => {
                        stack.clear();
                        continue;
                    }
                    _ => {}
                }
                // Pop to the matching open element, if present.
                if let Some(idx) = stack
                    .iter()
                    .rposition(|&n| doc.tag(n).is_some_and(|t| t == name))
                {
                    stack.truncate(idx);
                }
                // Unmatched end tags are ignored (browser-tolerant).
            }
            Token::Text(text) => {
                if stack.is_empty() && text.trim().is_empty() {
                    continue; // inter-element whitespace at top level
                }
                if mode == Mode::BeforeBody && stack.is_empty() {
                    mode = Mode::InBody;
                }
                let parent = current_container(&stack, &mode);
                let t = doc.create_text(text);
                doc.append_child(parent, t).expect("parser tree is acyclic");
            }
            Token::Comment(c) => {
                let parent = current_container(&stack, &mode);
                let n = doc.create_comment(c);
                doc.append_child(parent, n).expect("parser tree is acyclic");
            }
        }
    }
    doc
}

/// Parses an HTML fragment, appending the resulting top-level nodes as
/// children of `container` in `doc`. Returns the new child ids.
pub fn parse_fragment_into(doc: &mut Document, container: NodeId, input: &str) -> Vec<NodeId> {
    let tokens = tokenize(input);
    let mut stack: Vec<NodeId> = Vec::new();
    let mut created: Vec<NodeId> = Vec::new();
    for token in tokens {
        match token {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                while let Some(&top) = stack.last() {
                    let top_tag = doc.tag(top).unwrap_or("").to_string();
                    if implicitly_closes(&name, &top_tag) {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let parent = stack.last().copied().unwrap_or(container);
                let el = doc.create_element_with_attrs(&name, attrs);
                doc.append_child(parent, el)
                    .expect("fragment tree is acyclic");
                if parent == container {
                    created.push(el);
                }
                if !self_closing && !is_void_element(&name) {
                    stack.push(el);
                }
            }
            Token::EndTag { name } => {
                if let Some(idx) = stack
                    .iter()
                    .rposition(|&n| doc.tag(n).is_some_and(|t| t == name))
                {
                    stack.truncate(idx);
                }
            }
            Token::Text(text) => {
                let parent = stack.last().copied().unwrap_or(container);
                let t = doc.create_text(text);
                doc.append_child(parent, t)
                    .expect("fragment tree is acyclic");
                if parent == container {
                    created.push(t);
                }
            }
            Token::Comment(c) => {
                let parent = stack.last().copied().unwrap_or(container);
                let n = doc.create_comment(c);
                doc.append_child(parent, n)
                    .expect("fragment tree is acyclic");
                if parent == container {
                    created.push(n);
                }
            }
            Token::Doctype(_) => {} // doctypes are ignored inside fragments
        }
    }
    created
}

/// Replaces the children of `node` with the parse of `html` — the DOM
/// `innerHTML` setter.
pub fn set_inner_html(doc: &mut Document, node: NodeId, html: &str) -> Vec<NodeId> {
    doc.clear_children(node);
    parse_fragment_into(doc, node, html)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{inner_html, outer_html};

    #[test]
    fn implicit_structure_synthesized() {
        let doc = parse_document("<p>hello</p>");
        let body = doc.body().unwrap();
        assert_eq!(doc.children(body).len(), 1);
        assert!(doc.head().is_some());
        assert_eq!(doc.text_content(body), "hello");
    }

    #[test]
    fn explicit_structure_merges() {
        let doc = parse_document(
            "<!DOCTYPE html><html lang=\"en\"><head><title>T</title></head>\
             <body class=\"home\"><div>x</div></body></html>",
        );
        let html = doc.document_element().unwrap();
        assert_eq!(doc.get_attr(html, "lang"), Some("en"));
        let body = doc.body().unwrap();
        assert_eq!(doc.get_attr(body, "class"), Some("home"));
        let head = doc.head().unwrap();
        assert_eq!(doc.children(head).len(), 1);
        assert!(doc.is_element(doc.children(head)[0], "title"));
    }

    #[test]
    fn head_content_lands_in_head() {
        let doc = parse_document(
            "<title>T</title><meta charset=\"utf-8\"><link rel=\"stylesheet\" href=\"a.css\">\
             <style>b{}</style><script src=\"s.js\"></script><p>body starts</p>",
        );
        let head = doc.head().unwrap();
        let tags: Vec<&str> = doc
            .children(head)
            .iter()
            .filter_map(|&c| doc.tag(c))
            .collect();
        assert_eq!(tags, vec!["title", "meta", "link", "style", "script"]);
        assert_eq!(doc.text_content(doc.body().unwrap()), "body starts");
    }

    #[test]
    fn script_in_body_stays_in_body() {
        let doc = parse_document("<div>x</div><script>f()</script>");
        let body = doc.body().unwrap();
        let tags: Vec<&str> = doc
            .children(body)
            .iter()
            .filter_map(|&c| doc.tag(c))
            .collect();
        assert_eq!(tags, vec!["div", "script"]);
    }

    #[test]
    fn frameset_page_has_no_body() {
        let doc = parse_document(
            "<html><head><title>F</title></head>\
             <frameset cols=\"50%,50%\"><frame src=\"/a\"><frame src=\"/b\">\
             <noframes>need frames</noframes></frameset></html>",
        );
        assert!(doc.body().is_none());
        let fs = doc.frameset().unwrap();
        assert_eq!(doc.get_attr(fs, "cols"), Some("50%,50%"));
        let frames: Vec<&str> = doc
            .children(fs)
            .iter()
            .filter_map(|&c| doc.tag(c))
            .collect();
        assert_eq!(frames, vec!["frame", "frame", "noframes"]);
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse_document("<p><img src=\"a\"><br>text</p>");
        let body = doc.body().unwrap();
        let p = doc.children(body)[0];
        assert_eq!(doc.children(p).len(), 3);
        let img = doc.children(p)[0];
        assert!(doc.children(img).is_empty());
    }

    #[test]
    fn implicit_li_closing() {
        let doc = parse_document("<ul><li>a<li>b<li>c</ul>");
        let body = doc.body().unwrap();
        let ul = doc.children(body)[0];
        assert_eq!(doc.children(ul).len(), 3);
        for &li in doc.children(ul) {
            assert!(doc.is_element(li, "li"));
        }
    }

    #[test]
    fn implicit_p_closing_by_block() {
        let doc = parse_document("<p>one<div>two</div>");
        let body = doc.body().unwrap();
        let tags: Vec<&str> = doc
            .children(body)
            .iter()
            .filter_map(|&c| doc.tag(c))
            .collect();
        assert_eq!(tags, vec!["p", "div"]);
    }

    #[test]
    fn table_row_and_cell_closing() {
        let doc = parse_document("<table><tr><td>a<td>b<tr><td>c</table>");
        let body = doc.body().unwrap();
        let table = doc.children(body)[0];
        let rows: Vec<NodeId> = doc
            .children(table)
            .iter()
            .copied()
            .filter(|&c| doc.is_element(c, "tr"))
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(doc.children(rows[0]).len(), 2);
        assert_eq!(doc.children(rows[1]).len(), 1);
    }

    #[test]
    fn unmatched_end_tag_ignored() {
        let doc = parse_document("<div>a</span>b</div>");
        let body = doc.body().unwrap();
        let div = doc.children(body)[0];
        assert_eq!(doc.text_content(div), "ab");
    }

    #[test]
    fn fragment_parsing_appends() {
        let mut doc = Document::new();
        let container = doc.create_element("div");
        let created = parse_fragment_into(&mut doc, container, "<b>x</b>y<i>z</i>");
        assert_eq!(created.len(), 3);
        assert_eq!(inner_html(&doc, container), "<b>x</b>y<i>z</i>");
    }

    #[test]
    fn set_inner_html_replaces() {
        let mut doc = Document::new();
        let container = doc.create_element("div");
        parse_fragment_into(&mut doc, container, "<b>old</b>");
        set_inner_html(&mut doc, container, "<i>new</i>");
        assert_eq!(inner_html(&doc, container), "<i>new</i>");
    }

    #[test]
    fn doctype_precedes_html() {
        let doc = parse_document("<!DOCTYPE html><p>x</p>");
        let kinds: Vec<bool> = doc
            .children(doc.root())
            .iter()
            .map(|&c| matches!(doc.data(c), crate::dom::NodeData::Doctype(_)))
            .collect();
        assert_eq!(kinds, vec![true, false]);
        assert!(outer_html(&doc, doc.document_element().unwrap()).starts_with("<html"));
    }

    #[test]
    fn forms_with_event_attributes_survive() {
        let doc = parse_document(
            "<form action=\"/checkout\" method=\"post\" onsubmit=\"return validate()\">\
             <input type=\"text\" name=\"addr\"><input type=\"submit\"></form>",
        );
        let body = doc.body().unwrap();
        let form = doc.children(body)[0];
        assert_eq!(doc.get_attr(form, "onsubmit"), Some("return validate()"));
        assert_eq!(doc.children(form).len(), 2);
    }
}
