//! DOM traversal and lookup helpers.
//!
//! The agent's URL rewriting walks every element with a `src`/`href`-like
//! attribute; event rewriting walks forms and clickable elements; the
//! participant browser collects supplementary-object URLs the same way.

use crate::dom::{Document, NodeData, NodeId};

/// All descendant elements with the given (case-insensitive) tag.
pub fn elements_by_tag(doc: &Document, scope: NodeId, tag: &str) -> Vec<NodeId> {
    doc.descendants(scope)
        .into_iter()
        .filter(|&n| doc.is_element(n, tag))
        .collect()
}

/// First descendant element with a matching `id` attribute.
pub fn element_by_id(doc: &Document, scope: NodeId, id: &str) -> Option<NodeId> {
    doc.descendants(scope)
        .into_iter()
        .find(|&n| doc.get_attr(n, "id") == Some(id))
}

/// All descendant elements (skipping text/comment nodes).
pub fn all_elements(doc: &Document, scope: NodeId) -> Vec<NodeId> {
    doc.descendants(scope)
        .into_iter()
        .filter(|&n| matches!(doc.data(n), NodeData::Element { .. }))
        .collect()
}

/// The attribute that carries a URL for each element kind, per HTML 4.
/// Returns `None` for elements that do not reference external resources.
pub fn url_attribute(tag: &str) -> Option<&'static str> {
    match tag {
        "img" | "script" | "frame" | "iframe" | "embed" | "input" => Some("src"),
        "link" | "a" | "area" => Some("href"),
        "form" => Some("action"),
        "object" => Some("data"),
        "body" | "table" | "td" => Some("background"),
        _ => None,
    }
}

/// Elements that reference *supplementary objects* the participant browser
/// must download to render the page (images, stylesheets, scripts, frames)
/// — as opposed to navigation links.
pub fn is_supplementary_ref(doc: &Document, node: NodeId) -> bool {
    let Some(tag) = doc.tag(node) else {
        return false;
    };
    match tag {
        "img" | "script" | "frame" | "iframe" | "embed" | "object" => true,
        "input" => doc
            .get_attr(node, "type")
            .is_some_and(|t| t.eq_ignore_ascii_case("image")),
        "link" => doc.get_attr(node, "rel").is_some_and(|r| {
            r.to_ascii_lowercase().contains("stylesheet") || r.to_ascii_lowercase().contains("icon")
        }),
        _ => false,
    }
}

/// Collects `(node, attr_name, url_value)` for every element carrying a URL
/// attribute under `scope`.
pub fn collect_url_refs(doc: &Document, scope: NodeId) -> Vec<(NodeId, &'static str, String)> {
    let mut out = Vec::new();
    for n in all_elements(doc, scope) {
        let Some(tag) = doc.tag(n) else { continue };
        let Some(attr) = url_attribute(tag) else {
            continue;
        };
        if let Some(value) = doc.get_attr(n, attr) {
            if !value.is_empty() {
                out.push((n, attr, value.to_string()));
            }
        }
    }
    out
}

/// Collects the URLs of supplementary objects under `scope` (images, CSS,
/// scripts, frames), in document order, deduplicated.
pub fn collect_supplementary_urls(doc: &Document, scope: NodeId) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for n in all_elements(doc, scope) {
        if !is_supplementary_ref(doc, n) {
            continue;
        }
        let Some(tag) = doc.tag(n) else { continue };
        let Some(attr) = url_attribute(tag) else {
            continue;
        };
        if let Some(value) = doc.get_attr(n, attr) {
            if !value.is_empty() && seen.insert(value.to_string()) {
                out.push(value.to_string());
            }
        }
    }
    out
}

/// All form elements under `scope`.
pub fn forms(doc: &Document, scope: NodeId) -> Vec<NodeId> {
    elements_by_tag(doc, scope, "form")
}

/// The `(name, value)` pairs of a form's input/select/textarea controls.
pub fn form_fields(doc: &Document, form: NodeId) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for n in doc.descendants(form) {
        let Some(tag) = doc.tag(n) else { continue };
        if !matches!(tag, "input" | "select" | "textarea") {
            continue;
        }
        let Some(name) = doc.get_attr(n, "name") else {
            continue;
        };
        let value = match tag {
            "textarea" => doc.text_content(n),
            _ => doc.get_attr(n, "value").unwrap_or("").to_string(),
        };
        out.push((name.to_string(), value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn sample() -> Document {
        parse_document(
            "<html><head>\
             <link rel=\"stylesheet\" href=\"main.css\">\
             <link rel=\"alternate\" href=\"feed.xml\">\
             <script src=\"app.js\"></script></head><body background=\"bg.png\">\
             <img src=\"logo.png\"><img src=\"logo.png\">\
             <a href=\"/about\">about</a>\
             <form id=\"f\" action=\"/search\">\
             <input type=\"text\" name=\"q\" value=\"laptop\">\
             <input type=\"image\" src=\"go.png\" name=\"go\">\
             <textarea name=\"notes\">hello</textarea>\
             </form></body></html>",
        )
    }

    #[test]
    fn by_tag_and_id() {
        let doc = sample();
        let root = doc.root();
        assert_eq!(elements_by_tag(&doc, root, "img").len(), 2);
        assert_eq!(elements_by_tag(&doc, root, "IMG").len(), 2);
        assert!(element_by_id(&doc, root, "f").is_some());
        assert!(element_by_id(&doc, root, "nope").is_none());
    }

    #[test]
    fn url_refs_collected() {
        let doc = sample();
        let refs = collect_url_refs(&doc, doc.root());
        let urls: Vec<&str> = refs.iter().map(|(_, _, u)| u.as_str()).collect();
        assert!(urls.contains(&"main.css"));
        assert!(urls.contains(&"app.js"));
        assert!(urls.contains(&"logo.png"));
        assert!(urls.contains(&"/about"));
        assert!(urls.contains(&"/search"));
        assert!(urls.contains(&"bg.png"));
    }

    #[test]
    fn supplementary_urls_filtered_and_deduped() {
        let doc = sample();
        let urls = collect_supplementary_urls(&doc, doc.root());
        // Stylesheet yes; alternate-rel link no; nav anchor no; form action
        // no; image input yes; duplicate img deduped.
        assert_eq!(urls, vec!["main.css", "app.js", "logo.png", "go.png"]);
    }

    #[test]
    fn form_fields_extracted() {
        let doc = sample();
        let f = forms(&doc, doc.root())[0];
        assert_eq!(
            form_fields(&doc, f),
            vec![
                ("q".to_string(), "laptop".to_string()),
                ("go".to_string(), String::new()),
                ("notes".to_string(), "hello".to_string()),
            ]
        );
    }

    #[test]
    fn url_attribute_table() {
        assert_eq!(url_attribute("img"), Some("src"));
        assert_eq!(url_attribute("link"), Some("href"));
        assert_eq!(url_attribute("form"), Some("action"));
        assert_eq!(url_attribute("div"), None);
    }
}
