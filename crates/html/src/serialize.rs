//! `innerHTML` / `outerHTML` serialization.
//!
//! The agent extracts innerHTML values per top-level element (Fig. 4), and
//! the snippet assigns them back on the participant browser; serialization
//! must therefore round-trip through the parser. Rules follow the HTML
//! fragment serialization algorithm: text is escaped except inside raw-text
//! elements, attribute values are double-quoted and escaped, void elements
//! emit no end tag.

use crate::dom::{Document, NodeData, NodeId};
use crate::parser::is_void_element;
use crate::tokenizer::is_raw_text_element;

/// Serializes the children of `id` (the DOM `innerHTML` getter).
pub fn inner_html(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    for &child in doc.children(id) {
        write_node(doc, child, &mut out);
    }
    out
}

/// Serializes `id` itself including its tag (the DOM `outerHTML` getter).
pub fn outer_html(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &mut out);
    out
}

/// Serializes a whole document, including any doctype.
pub fn serialize_document(doc: &Document) -> String {
    let mut out = String::new();
    for &child in doc.children(doc.root()) {
        write_node(doc, child, &mut out);
    }
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match doc.data(id) {
        NodeData::Document => {
            for &child in doc.children(id) {
                write_node(doc, child, out);
            }
        }
        NodeData::Doctype(d) => {
            out.push_str("<!DOCTYPE ");
            out.push_str(d);
            out.push('>');
        }
        NodeData::Element { tag, attrs } => {
            out.push('<');
            out.push_str(tag);
            for (name, value) in attrs {
                out.push(' ');
                out.push_str(name);
                out.push_str("=\"");
                out.push_str(&escape_attr(value));
                out.push('"');
            }
            out.push('>');
            if is_void_element(tag) {
                return;
            }
            if is_raw_text_element(tag) {
                // Raw text is emitted verbatim.
                for &child in doc.children(id) {
                    if let NodeData::Text(t) = doc.data(child) {
                        out.push_str(t);
                    }
                }
            } else {
                for &child in doc.children(id) {
                    write_node(doc, child, out);
                }
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
        NodeData::Text(t) => out.push_str(&escape_text(t)),
        NodeData::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
    }
}

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Escapes an attribute value (`&`, `"`).
pub fn escape_attr(s: &str) -> String {
    s.replace('&', "&amp;").replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn inner_and_outer() {
        let doc = parse_document("<div id=\"a\"><b>x</b></div>");
        let body = doc.body().unwrap();
        let div = doc.children(body)[0];
        assert_eq!(inner_html(&doc, div), "<b>x</b>");
        assert_eq!(outer_html(&doc, div), "<div id=\"a\"><b>x</b></div>");
    }

    #[test]
    fn text_is_escaped() {
        let doc = parse_document("<p>1 &lt; 2 &amp; 3</p>");
        let body = doc.body().unwrap();
        assert_eq!(inner_html(&doc, body), "<p>1 &lt; 2 &amp; 3</p>");
    }

    #[test]
    fn attr_quotes_escaped() {
        let doc = parse_document("<p title='say &quot;hi&quot; &amp; bye'>x</p>");
        let body = doc.body().unwrap();
        assert_eq!(
            inner_html(&doc, body),
            "<p title=\"say &quot;hi&quot; &amp; bye\">x</p>"
        );
    }

    #[test]
    fn void_elements_have_no_end_tag() {
        let doc = parse_document("<p><img src=\"a.png\"><br></p>");
        let body = doc.body().unwrap();
        assert_eq!(inner_html(&doc, body), "<p><img src=\"a.png\"><br></p>");
    }

    #[test]
    fn script_round_trips_verbatim() {
        let src = "<script>if (a<b && c>d) { go(\"x\"); }</script>";
        let doc = parse_document(src);
        let head = doc.head().unwrap();
        assert_eq!(inner_html(&doc, head), src);
    }

    #[test]
    fn comments_round_trip() {
        let doc = parse_document("<div><!-- menu --></div>");
        let body = doc.body().unwrap();
        assert_eq!(inner_html(&doc, body), "<div><!-- menu --></div>");
    }

    #[test]
    fn document_serialization_includes_doctype() {
        let doc = parse_document("<!DOCTYPE html><p>x</p>");
        let s = serialize_document(&doc);
        assert!(s.starts_with("<!DOCTYPE html><html>"));
        assert!(s.contains("<p>x</p>"));
    }

    #[test]
    fn parse_serialize_fixpoint() {
        // After one parse→serialize pass the output must be a fixpoint.
        let inputs = [
            "<div class=\"a\"><ul><li>1</li><li>2</li></ul></div>",
            "<form action=\"/s\" onsubmit=\"return f()\"><input type=\"text\" name=\"q\"></form>",
            "<style>a { content: \"<p>\"; }</style><p>body</p>",
        ];
        for input in inputs {
            let once = serialize_document(&parse_document(input));
            let twice = serialize_document(&parse_document(&once));
            assert_eq!(once, twice, "not a fixpoint for {input:?}");
        }
    }
}
