//! HTML tokenizer.
//!
//! Produces a flat token stream: start tags with attributes, end tags,
//! text (entity-decoded), comments, and doctypes. Elements whose content
//! model is raw text (`script`, `style`) or escapable raw text (`title`,
//! `textarea`) are handled by scanning directly for the matching close tag,
//! as browsers do.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<tag attr="v" ...>`; `self_closing` records a trailing `/`.
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes (names lower-cased, values entity-decoded).
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    EndTag {
        /// Lower-cased tag name.
        name: String,
    },
    /// Character data between tags, entity-decoded.
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<!DOCTYPE ...>` (content after the keyword, trimmed).
    Doctype(String),
}

/// Elements whose content is raw text up to the matching close tag.
pub fn is_raw_text_element(tag: &str) -> bool {
    matches!(tag, "script" | "style")
}

/// Elements whose content is raw text with entities decoded.
pub fn is_escapable_raw_text_element(tag: &str) -> bool {
    matches!(tag, "title" | "textarea")
}

/// Tokenizes an HTML document or fragment.
pub fn tokenize(input: &str) -> Vec<Token> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if bytes[pos] == b'<' {
            if let Some((token, next)) = lex_markup(input, pos) {
                // Raw-text elements: swallow everything to the close tag.
                if let Token::StartTag {
                    name, self_closing, ..
                } = &token
                {
                    if !self_closing
                        && (is_raw_text_element(name) || is_escapable_raw_text_element(name))
                    {
                        let close = format!("</{name}");
                        let hay = &input[next..];
                        let (raw, after) = match find_ci(hay, &close) {
                            Some(idx) => {
                                // Skip past "</name" then to the closing '>'.
                                let rest = &hay[idx + close.len()..];
                                let gt = rest.find('>').map(|g| idx + close.len() + g + 1);
                                (&hay[..idx], gt.map(|g| next + g).unwrap_or(bytes.len()))
                            }
                            None => (hay, bytes.len()),
                        };
                        let name_cloned = name.clone();
                        tokens.push(token);
                        if !raw.is_empty() {
                            let text = if is_escapable_raw_text_element(&name_cloned) {
                                decode_entities(raw)
                            } else {
                                raw.to_string()
                            };
                            tokens.push(Token::Text(text));
                        }
                        tokens.push(Token::EndTag { name: name_cloned });
                        pos = after;
                        continue;
                    }
                }
                tokens.push(token);
                pos = next;
                continue;
            }
            // '<' that does not open markup: treat as text.
        }
        // Text run up to the next '<' that begins markup.
        let start = pos;
        pos += 1;
        while pos < bytes.len() {
            if bytes[pos] == b'<' && lex_markup(input, pos).is_some() {
                break;
            }
            pos += 1;
        }
        let raw = &input[start..pos];
        match tokens.last_mut() {
            Some(Token::Text(prev)) => prev.push_str(&decode_entities(raw)),
            _ => tokens.push(Token::Text(decode_entities(raw))),
        }
    }
    tokens
}

/// Attempts to lex markup starting at `pos` (which must point at `<`).
/// Returns the token and the index just past it.
fn lex_markup(input: &str, pos: usize) -> Option<(Token, usize)> {
    let rest = &input[pos..];
    let bytes = rest.as_bytes();
    debug_assert_eq!(bytes[0], b'<');
    if let Some(after) = rest.strip_prefix("<!--") {
        let i = after.find("-->")?;
        return Some((Token::Comment(after[..i].to_string()), pos + 4 + i + 3));
    }
    if bytes.get(1) == Some(&b'!') {
        // <!DOCTYPE ...> or other declarations; swallow to '>'.
        let end = rest.find('>')?;
        let body = &rest[2..end];
        let token = if body.to_ascii_lowercase().starts_with("doctype") {
            Token::Doctype(body[7..].trim().to_string())
        } else {
            Token::Comment(body.to_string())
        };
        return Some((token, pos + end + 1));
    }
    let (is_end, name_start) = if bytes.get(1) == Some(&b'/') {
        (true, 2)
    } else {
        (false, 1)
    };
    // Tag name must start with an ASCII letter.
    if !bytes.get(name_start)?.is_ascii_alphabetic() {
        return None;
    }
    let mut i = name_start;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-' || bytes[i] == b':')
    {
        i += 1;
    }
    let name = rest[name_start..i].to_ascii_lowercase();
    if is_end {
        // Skip to '>'.
        let end = rest[i..].find('>')? + i;
        return Some((Token::EndTag { name }, pos + end + 1));
    }
    // Attributes.
    let mut attrs: Vec<(String, String)> = Vec::new();
    let mut self_closing = false;
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        match bytes.get(i) {
            None => return None, // unterminated tag: not markup
            Some(b'>') => {
                i += 1;
                break;
            }
            Some(b'/') => {
                if bytes.get(i + 1) == Some(&b'>') {
                    self_closing = true;
                    i += 2;
                    break;
                }
                i += 1;
            }
            Some(_) => {
                // Attribute name.
                let astart = i;
                while i < bytes.len()
                    && !bytes[i].is_ascii_whitespace()
                    && !matches!(bytes[i], b'=' | b'>' | b'/')
                {
                    i += 1;
                }
                if i == astart {
                    i += 1;
                    continue;
                }
                let aname = rest[astart..i].to_ascii_lowercase();
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                let value = if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    match bytes.get(i) {
                        Some(&q) if q == b'"' || q == b'\'' => {
                            i += 1;
                            let vstart = i;
                            while i < bytes.len() && bytes[i] != q {
                                i += 1;
                            }
                            let v = rest[vstart..i.min(rest.len())].to_string();
                            if i < bytes.len() {
                                i += 1; // closing quote
                            }
                            decode_entities(&v)
                        }
                        _ => {
                            let vstart = i;
                            while i < bytes.len()
                                && !bytes[i].is_ascii_whitespace()
                                && bytes[i] != b'>'
                            {
                                i += 1;
                            }
                            decode_entities(&rest[vstart..i])
                        }
                    }
                } else {
                    String::new()
                };
                attrs.push((aname, value));
            }
        }
    }
    Some((
        Token::StartTag {
            name,
            attrs,
            self_closing,
        },
        pos + i,
    ))
}

/// Case-insensitive substring search.
fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() || h.len() < n.len() {
        return None;
    }
    (0..=h.len() - n.len()).find(|&i| {
        h[i..i + n.len()]
            .iter()
            .zip(n.iter())
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    })
}

/// Decodes HTML entities: the common named set plus numeric references.
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        // Entities are short; look for ';' within a window (clamped back
        // to a char boundary — multi-byte text may straddle the cutoff).
        let mut end = rest.len().min(12);
        while !rest.is_char_boundary(end) {
            end -= 1;
        }
        let window = &rest[1..end];
        let Some(semi) = window.find(';') else {
            out.push('&');
            rest = &rest[1..];
            continue;
        };
        let entity = &window[..semi];
        let decoded: Option<&str> = match entity {
            "amp" => Some("&"),
            "lt" => Some("<"),
            "gt" => Some(">"),
            "quot" => Some("\""),
            "apos" => Some("'"),
            "nbsp" => Some("\u{a0}"),
            "copy" => Some("\u{a9}"),
            "reg" => Some("\u{ae}"),
            "trade" => Some("\u{2122}"),
            "mdash" => Some("\u{2014}"),
            "ndash" => Some("\u{2013}"),
            "hellip" => Some("\u{2026}"),
            "laquo" => Some("\u{ab}"),
            "raquo" => Some("\u{bb}"),
            "middot" => Some("\u{b7}"),
            "bull" => Some("\u{2022}"),
            "eacute" => Some("\u{e9}"),
            _ => None,
        };
        if let Some(d) = decoded {
            out.push_str(d);
            rest = &rest[entity.len() + 2..];
            continue;
        }
        let numeric = if let Some(hex) = entity
            .strip_prefix("#x")
            .or_else(|| entity.strip_prefix("#X"))
        {
            u32::from_str_radix(hex, 16).ok().and_then(char::from_u32)
        } else if let Some(dec) = entity.strip_prefix('#') {
            dec.parse::<u32>().ok().and_then(char::from_u32)
        } else {
            None
        };
        match numeric {
            Some(c) => {
                out.push(c);
                rest = &rest[entity.len() + 2..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: attrs
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            self_closing: false,
        }
    }

    #[test]
    fn simple_tags_and_text() {
        let toks = tokenize("<p>hello</p>");
        assert_eq!(
            toks,
            vec![
                start("p", &[]),
                Token::Text("hello".into()),
                Token::EndTag { name: "p".into() }
            ]
        );
    }

    #[test]
    fn attributes_all_quote_styles() {
        let toks = tokenize(r#"<img src="a.png" alt='pic' width=50 ismap>"#);
        assert_eq!(
            toks,
            vec![start(
                "img",
                &[
                    ("src", "a.png"),
                    ("alt", "pic"),
                    ("width", "50"),
                    ("ismap", "")
                ]
            )]
        );
    }

    #[test]
    fn self_closing_flag() {
        let toks = tokenize("<br/><hr />");
        assert!(matches!(
            &toks[0],
            Token::StartTag { name, self_closing: true, .. } if name == "br"
        ));
        assert!(matches!(
            &toks[1],
            Token::StartTag { name, self_closing: true, .. } if name == "hr"
        ));
    }

    #[test]
    fn tag_names_lowercased() {
        let toks = tokenize("<DIV CLASS='x'></DIV>");
        assert_eq!(toks[0], start("div", &[("class", "x")]));
        assert_eq!(toks[1], Token::EndTag { name: "div".into() });
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- note --><p></p>");
        assert_eq!(toks[0], Token::Doctype("html".into()));
        assert_eq!(toks[1], Token::Comment(" note ".into()));
    }

    #[test]
    fn script_content_is_raw() {
        // A "</div>" inside a script string does *not* end the script; only
        // "</script" does, matching browser behaviour.
        let toks = tokenize("<script>if (a<b && c>d) { x(\"</div>\"); }</script>");
        assert_eq!(toks.len(), 3);
        assert_eq!(
            toks[1],
            Token::Text("if (a<b && c>d) { x(\"</div>\"); }".into())
        );
    }

    #[test]
    fn script_with_markup_like_body_survives() {
        let src = "<script>var s = '<p>not markup</p>';</script><p>after</p>";
        let toks = tokenize(src);
        assert_eq!(toks[1], Token::Text("var s = '<p>not markup</p>';".into()));
        assert_eq!(toks[3], start("p", &[]));
    }

    #[test]
    fn title_decodes_entities() {
        let toks = tokenize("<title>Tom &amp; Jerry</title>");
        assert_eq!(toks[1], Token::Text("Tom & Jerry".into()));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let toks = tokenize(r#"<a href="/x?a=1&amp;b=2">1 &lt; 2 &#65; &#x42;</a>"#);
        assert_eq!(toks[0], start("a", &[("href", "/x?a=1&b=2")]));
        assert_eq!(toks[1], Token::Text("1 < 2 A B".into()));
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("a < b");
        assert_eq!(toks, vec![Token::Text("a < b".into())]);
        let toks2 = tokenize("x<3 and <p>y</p>");
        assert_eq!(toks2[0], Token::Text("x<3 and ".into()));
    }

    #[test]
    fn unterminated_script_swallows_rest() {
        let toks = tokenize("<script>var x = 1;");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Token::Text("var x = 1;".into()));
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
    }

    #[test]
    fn mixed_case_close_for_raw_text() {
        let toks = tokenize("<STYLE>body{}</StYlE><p></p>");
        assert_eq!(toks[1], Token::Text("body{}".into()));
        assert_eq!(toks[3], start("p", &[]));
    }

    #[test]
    fn unknown_entity_passes_through() {
        assert_eq!(decode_entities("&bogus; &amp;"), "&bogus; &");
        assert_eq!(decode_entities("5 & 6"), "5 & 6");
    }
}
