//! The `multipart/x-rcb-batch` framing for batched delta replies.
//!
//! A woken long-poll whose delta references cache objects the participant
//! cannot yet hold answers with **one** multipart response instead of the
//! delta plus N follow-up `/cache/{key}` round trips. Part 1 is the delta
//! XML; every further part is one object, stamped (`X-RCB-Url`) with the
//! exact agent URL the participant caches it under. Parts are framed by a
//! per-part `Content-Length`, so binary object bytes can never collide
//! with the boundary — the boundary is a fixed token because
//! [`Response::content_type`](crate::Response::content_type) strips media
//! type parameters and both sides key on the bare type.
//!
//! The server-side assembler lives next to the snapshot delta ring in
//! `rcb-core`; this module owns the wire constants and the participant's
//! parser.

use rcb_util::{RcbError, Result};

/// The full `Content-Type` value of a batched delta reply.
pub const BATCH_CONTENT_TYPE: &str = "multipart/x-rcb-batch; boundary=rcb-batch";

/// The bare media type, as [`crate::Response::content_type`] reports it.
pub const BATCH_MEDIA_TYPE: &str = "multipart/x-rcb-batch";

/// The fixed multipart boundary token inside [`BATCH_CONTENT_TYPE`].
pub const BATCH_BOUNDARY: &str = "rcb-batch";

/// One decoded part of a batch reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPart {
    /// The part's `Content-Type`.
    pub content_type: String,
    /// The agent URL to cache the part under (`X-RCB-Url`); `None` on the
    /// leading delta-XML part.
    pub url: Option<String>,
    /// The part's body bytes.
    pub data: Vec<u8>,
}

/// Parses a [`BATCH_CONTENT_TYPE`] body into its parts.
///
/// Strict by construction: every part must open with the fixed boundary,
/// carry a `Content-Length`, and the body must end with the closing
/// boundary — a truncated or reordered body is an error, never a silent
/// partial result.
pub fn parse_batch_parts(body: &[u8]) -> Result<Vec<BatchPart>> {
    const OPEN: &[u8] = b"--rcb-batch\r\n";
    const CLOSE: &[u8] = b"--rcb-batch--";
    let mut parts = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &body[pos..];
        if rest.starts_with(CLOSE) {
            if parts.is_empty() {
                return Err(RcbError::parse("batch", "no parts before closing boundary"));
            }
            return Ok(parts);
        }
        if !rest.starts_with(OPEN) {
            return Err(RcbError::parse(
                "batch",
                format!("expected part boundary at offset {pos}"),
            ));
        }
        let head_start = pos + OPEN.len();
        let head_end = find_subslice(&body[head_start..], b"\r\n\r\n")
            .map(|i| head_start + i)
            .ok_or_else(|| RcbError::parse("batch", "part headers not terminated"))?;
        let mut content_type = None;
        let mut content_length = None;
        let mut url = None;
        let head = std::str::from_utf8(&body[head_start..head_end])
            .map_err(|_| RcbError::parse("batch", "part headers are not UTF-8"))?;
        for line in head.split("\r\n") {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| RcbError::parse("batch", format!("malformed header {line:?}")))?;
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-type" => content_type = Some(value.to_string()),
                "content-length" => {
                    content_length = Some(value.parse::<usize>().map_err(|_| {
                        RcbError::parse("batch", "Content-Length is not an integer")
                    })?);
                }
                "x-rcb-url" => url = Some(value.to_string()),
                _ => {}
            }
        }
        let content_type =
            content_type.ok_or_else(|| RcbError::parse("batch", "part missing Content-Type"))?;
        let len = content_length
            .ok_or_else(|| RcbError::parse("batch", "part missing Content-Length"))?;
        let data_start = head_end + 4;
        let data_end = data_start
            .checked_add(len)
            .filter(|&e| e + 2 <= body.len())
            .ok_or_else(|| RcbError::parse("batch", "part data truncated"))?;
        if &body[data_end..data_end + 2] != b"\r\n" {
            return Err(RcbError::parse("batch", "part data not CRLF-terminated"));
        }
        parts.push(BatchPart {
            content_type,
            url,
            data: body[data_start..data_end].to_vec(),
        });
        pos = data_end + 2;
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_body() -> Vec<u8> {
        let xml = b"<deltaContent>x</deltaContent>";
        let obj = b"GIF89a\x00\x01\xffbinary";
        let mut body = Vec::new();
        body.extend_from_slice(
            format!(
                "--rcb-batch\r\nContent-Type: application/xml; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
                xml.len()
            )
            .as_bytes(),
        );
        body.extend_from_slice(xml);
        body.extend_from_slice(b"\r\n");
        body.extend_from_slice(
            format!(
                "--rcb-batch\r\nContent-Type: image/gif\r\nContent-Length: {}\r\nX-RCB-Url: /cache/7?k=abc\r\n\r\n",
                obj.len()
            )
            .as_bytes(),
        );
        body.extend_from_slice(obj);
        body.extend_from_slice(b"\r\n--rcb-batch--\r\n");
        body
    }

    #[test]
    fn parses_delta_plus_object_parts() {
        let parts = parse_batch_parts(&sample_body()).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].content_type, "application/xml; charset=utf-8");
        assert_eq!(parts[0].url, None);
        assert_eq!(parts[0].data, b"<deltaContent>x</deltaContent>");
        assert_eq!(parts[1].url.as_deref(), Some("/cache/7?k=abc"));
        assert_eq!(parts[1].data, b"GIF89a\x00\x01\xffbinary");
    }

    #[test]
    fn binary_bytes_resembling_boundaries_survive() {
        // Content-Length framing means a part may contain the boundary.
        let obj = b"--rcb-batch--\r\ninside data";
        let mut body = Vec::new();
        body.extend_from_slice(
            format!(
                "--rcb-batch\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\nX-RCB-Url: /cache/1?k=z\r\n\r\n",
                obj.len()
            )
            .as_bytes(),
        );
        body.extend_from_slice(obj);
        body.extend_from_slice(b"\r\n--rcb-batch--\r\n");
        let parts = parse_batch_parts(&body).unwrap();
        assert_eq!(parts[0].data, obj);
    }

    #[test]
    fn rejects_truncated_and_malformed_bodies() {
        let good = sample_body();
        // Truncation anywhere inside the final part or boundary fails.
        assert!(parse_batch_parts(&good[..good.len() - 20]).is_err());
        assert!(parse_batch_parts(b"--rcb-batch\r\nContent-Type: a/b\r\n\r\n").is_err());
        assert!(parse_batch_parts(b"not a batch at all").is_err());
        assert!(
            parse_batch_parts(b"--rcb-batch--\r\n").is_err(),
            "empty batch"
        );
        // Missing Content-Length is an error, not a guess.
        assert!(parse_batch_parts(
            b"--rcb-batch\r\nContent-Type: a/b\r\n\r\ndata\r\n--rcb-batch--\r\n"
        )
        .is_err());
    }

    #[test]
    fn media_type_constants_agree() {
        assert!(BATCH_CONTENT_TYPE.starts_with(BATCH_MEDIA_TYPE));
        assert!(BATCH_CONTENT_TYPE.ends_with(BATCH_BOUNDARY));
    }
}
