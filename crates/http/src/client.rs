//! A blocking HTTP client.
//!
//! Plays the role of the participant browser's network layer in the
//! real-socket deployment: connect, send one request, read the
//! `Content-Length`-framed response. The framing logic is shared with the
//! nonblocking world-sim participants through [`try_parse_response`], and
//! [`HttpConnection`] holds a [`transport::Conn`], so the same persistent
//! keep-alive client runs over kernel sockets and fabric connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rcb_util::{RcbError, Result};

use crate::message::{Request, Response};
use crate::parse::parse_response;
use crate::serialize::serialize_request;
use crate::transport;

/// Sends a single request to `addr` (`host:port`) on a fresh connection.
pub fn send_request(addr: &str, req: &Request) -> Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(&serialize_request(req))?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Attempts to frame-and-parse one `Content-Length`-framed response from
/// the front of `buf`. Returns `Ok(None)` while the bytes are still
/// incomplete; on success also returns how many bytes the response
/// consumed, so a keep-alive reader can drain its buffer response by
/// response. The framing length comes from the same strict header parse
/// the full response parse uses: a malformed or conflicting
/// Content-Length is a hard error here, not a silent 0 — guessing 0 would
/// return a bodyless response and desync every subsequent round trip on
/// the stream.
pub fn try_parse_response(buf: &[u8]) -> Result<Option<(Response, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RcbError::parse("http", "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let _status_line = lines.next(); // validated by parse_response
    let headers = crate::parse::parse_header_lines(lines)?;
    let declared = headers.content_length()?.unwrap_or(0);
    let total = head_end + 4 + declared;
    if buf.len() < total {
        return Ok(None);
    }
    parse_response(&buf[..total]).map(|resp| Some((resp, total)))
}

/// Reads one `Content-Length`-framed response from an open stream (any
/// `Read` — a `TcpStream`, a [`transport::Conn`], a fabric conn).
pub fn read_response<R: Read>(stream: &mut R) -> Result<Response> {
    let mut buf: Vec<u8> = Vec::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some((resp, _consumed)) = try_parse_response(&buf)? {
            return Ok(resp);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(RcbError::Io("connection closed before response".into()));
                }
                return parse_response(&buf);
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e.into()),
        }
    }
}

/// A persistent connection that can issue multiple requests (the snippet's
/// polling loop reuses one connection when the agent allows keep-alive).
pub struct HttpConnection {
    stream: transport::Conn,
}

impl HttpConnection {
    /// Connects to `addr` over real TCP.
    pub fn connect(addr: &str) -> Result<HttpConnection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(HttpConnection {
            stream: stream.into(),
        })
    }

    /// Wraps an already-established seam connection (how world-sim
    /// participants in threaded mode reuse the production client).
    pub fn from_conn(mut stream: transport::Conn) -> Result<HttpConnection> {
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(HttpConnection { stream })
    }

    /// Sends `req` and reads the response.
    pub fn round_trip(&mut self, req: &Request) -> Result<Response> {
        self.stream.write_all(&serialize_request(req))?;
        self.stream.flush()?;
        read_response(&mut self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Status;
    use crate::server::{handler_fn, Handler, HttpServer};

    #[test]
    fn persistent_connection_round_trips() {
        let handler: Handler = handler_fn(|req| {
            crate::message::Response::with_body(Status::OK, "text/plain", req.body.clone())
        });
        let mut server = HttpServer::bind("127.0.0.1:0", handler).unwrap();
        let mut conn = HttpConnection::connect(&server.addr().to_string()).unwrap();
        for i in 0..3 {
            let body = format!("ping-{i}").into_bytes();
            let resp = conn
                .round_trip(&Request::post("/echo", body.clone()))
                .unwrap();
            assert_eq!(resp.body, body);
        }
        server.shutdown();
    }

    #[test]
    fn malformed_response_content_length_is_a_parse_error() {
        // A raw listener playing a broken origin: each canned response
        // has a Content-Length the client must reject outright (the old
        // code treated all of these as 0 and returned a bodyless
        // response, desyncing the stream).
        for raw in [
            &b"HTTP/1.1 200 OK\r\nContent-Length: nan\r\n\r\nhello"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: +5\r\n\r\nhello"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!"[..],
        ] {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let server = std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().unwrap();
                let mut discard = [0u8; 4096];
                let _ = stream.read(&mut discard);
                stream.write_all(raw).unwrap();
            });
            let err = send_request(&addr, &Request::get("/"));
            assert!(err.is_err(), "{:?}", String::from_utf8_lossy(raw));
            server.join().unwrap();
        }
    }
}
