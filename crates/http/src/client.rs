//! A blocking HTTP client.
//!
//! Plays the role of the participant browser's network layer in the
//! real-socket deployment: connect, send one request, read the
//! `Content-Length`-framed response.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rcb_util::{RcbError, Result};

use crate::message::{Request, Response};
use crate::parse::parse_response;
use crate::serialize::serialize_request;

/// Sends a single request to `addr` (`host:port`) on a fresh connection.
pub fn send_request(addr: &str, req: &Request) -> Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(&serialize_request(req))?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Reads one `Content-Length`-framed response from an open stream.
pub fn read_response(stream: &mut TcpStream) -> Result<Response> {
    let mut buf: Vec<u8> = Vec::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Try parsing what we have once the head looks complete.
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]);
            let declared = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse::<usize>().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= head_end + 4 + declared {
                return parse_response(&buf[..head_end + 4 + declared]);
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(RcbError::Io("connection closed before response".into()));
                }
                return parse_response(&buf);
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e.into()),
        }
    }
}

/// A persistent connection that can issue multiple requests (the snippet's
/// polling loop reuses one connection when the agent allows keep-alive).
pub struct HttpConnection {
    stream: TcpStream,
}

impl HttpConnection {
    /// Connects to `addr`.
    pub fn connect(addr: &str) -> Result<HttpConnection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(HttpConnection { stream })
    }

    /// Sends `req` and reads the response.
    pub fn round_trip(&mut self, req: &Request) -> Result<Response> {
        self.stream.write_all(&serialize_request(req))?;
        self.stream.flush()?;
        read_response(&mut self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Status;
    use crate::server::{Handler, HttpServer};
    use std::sync::Arc;

    #[test]
    fn persistent_connection_round_trips() {
        let handler: Handler = Arc::new(|req| {
            crate::message::Response::with_body(Status::OK, "text/plain", req.body.clone())
        });
        let mut server = HttpServer::bind("127.0.0.1:0", handler).unwrap();
        let mut conn = HttpConnection::connect(&server.addr().to_string()).unwrap();
        for i in 0..3 {
            let body = format!("ping-{i}").into_bytes();
            let resp = conn
                .round_trip(&Request::post("/echo", body.clone()))
                .unwrap();
            assert_eq!(resp.body, body);
        }
        server.shutdown();
    }
}
