//! A blocking HTTP client.
//!
//! Plays the role of the participant browser's network layer in the
//! real-socket deployment: connect, send one request, read the
//! `Content-Length`-framed response. The framing logic is shared with the
//! nonblocking world-sim participants through [`try_parse_response`], and
//! [`HttpConnection`] holds a [`transport::Conn`], so the same persistent
//! keep-alive client runs over kernel sockets and fabric connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rcb_util::{DetRng, RcbError, Result};

use crate::message::{Request, Response, Status};
use crate::parse::parse_response;
use crate::serialize::serialize_request;
use crate::transport;

/// How long a blocking read waits for response bytes before erroring,
/// when the caller doesn't say otherwise. The one knob behind every
/// client entry point (`send_request`, [`HttpConnection::connect`],
/// [`HttpConnection::from_conn`]).
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Everything a client entry point can be configured with, in one
/// struct: the read timeout and an optional shed-retry policy. This is
/// the single configuration surface — the `_with_timeout` entry-point
/// variants are thin wrappers kept only so existing call sites migrate
/// gradually.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// How long a blocking read waits for response bytes before erroring.
    pub read_timeout: Duration,
    /// When set, `503` sheds are retried with this policy's seeded
    /// jittered backoff ([`HttpConnection::round_trip_opts`] and
    /// [`send_request_opts`]); `None` returns sheds to the caller as-is.
    pub retry: Option<RetryPolicy>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            read_timeout: DEFAULT_READ_TIMEOUT,
            retry: None,
        }
    }
}

impl ClientOptions {
    /// The defaults with an explicit read timeout.
    pub fn with_read_timeout(read_timeout: Duration) -> ClientOptions {
        ClientOptions {
            read_timeout,
            ..ClientOptions::default()
        }
    }

    /// Adds a shed-retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> ClientOptions {
        self.retry = Some(policy);
        self
    }
}

/// Sends a single request to `addr` (`host:port`) on a fresh connection,
/// waiting up to [`DEFAULT_READ_TIMEOUT`] for the response.
pub fn send_request(addr: &str, req: &Request) -> Result<Response> {
    send_request_opts(addr, req, &mut ClientOptions::default())
}

/// [`send_request`] with explicit [`ClientOptions`] (`&mut` because a
/// configured retry policy draws from its seeded RNG).
pub fn send_request_opts(
    addr: &str,
    req: &Request,
    options: &mut ClientOptions,
) -> Result<Response> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(options.read_timeout))?;
    let mut conn = HttpConnection {
        stream: stream.into(),
    };
    conn.round_trip_opts(req, options)
}

/// Deprecated-style wrapper over [`send_request_opts`]; new call sites
/// should build a [`ClientOptions`].
pub fn send_request_with_timeout(
    addr: &str,
    req: &Request,
    read_timeout: Duration,
) -> Result<Response> {
    send_request_opts(
        addr,
        req,
        &mut ClientOptions::with_read_timeout(read_timeout),
    )
}

/// Attempts to frame-and-parse one `Content-Length`-framed response from
/// the front of `buf`. Returns `Ok(None)` while the bytes are still
/// incomplete; on success also returns how many bytes the response
/// consumed, so a keep-alive reader can drain its buffer response by
/// response. The framing length comes from the same strict header parse
/// the full response parse uses: a malformed or conflicting
/// Content-Length is a hard error here, not a silent 0 — guessing 0 would
/// return a bodyless response and desync every subsequent round trip on
/// the stream.
pub fn try_parse_response(buf: &[u8]) -> Result<Option<(Response, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RcbError::parse("http", "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let _status_line = lines.next(); // validated by parse_response
    let headers = crate::parse::parse_header_lines(lines)?;
    let declared = headers.content_length()?.unwrap_or(0);
    let total = head_end + 4 + declared;
    if buf.len() < total {
        return Ok(None);
    }
    parse_response(&buf[..total]).map(|resp| Some((resp, total)))
}

/// Reads one `Content-Length`-framed response from an open stream (any
/// `Read` — a `TcpStream`, a [`transport::Conn`], a fabric conn).
pub fn read_response<R: Read>(stream: &mut R) -> Result<Response> {
    let mut buf: Vec<u8> = Vec::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some((resp, _consumed)) = try_parse_response(&buf)? {
            return Ok(resp);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(RcbError::Io("connection closed before response".into()));
                }
                return parse_response(&buf);
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e.into()),
        }
    }
}

/// A persistent connection that can issue multiple requests (the snippet's
/// polling loop reuses one connection when the agent allows keep-alive).
pub struct HttpConnection {
    stream: transport::Conn,
}

impl HttpConnection {
    /// Connects to `addr` over real TCP with [`DEFAULT_READ_TIMEOUT`].
    pub fn connect(addr: &str) -> Result<HttpConnection> {
        HttpConnection::connect_opts(addr, &ClientOptions::default())
    }

    /// [`HttpConnection::connect`] with explicit [`ClientOptions`].
    pub fn connect_opts(addr: &str, options: &ClientOptions) -> Result<HttpConnection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(options.read_timeout))?;
        Ok(HttpConnection {
            stream: stream.into(),
        })
    }

    /// Deprecated-style wrapper over [`HttpConnection::connect_opts`];
    /// new call sites should build a [`ClientOptions`].
    pub fn connect_with_timeout(addr: &str, read_timeout: Duration) -> Result<HttpConnection> {
        HttpConnection::connect_opts(addr, &ClientOptions::with_read_timeout(read_timeout))
    }

    /// Wraps an already-established seam connection (how world-sim
    /// participants in threaded mode reuse the production client), with
    /// [`DEFAULT_READ_TIMEOUT`].
    pub fn from_conn(stream: transport::Conn) -> Result<HttpConnection> {
        HttpConnection::from_conn_opts(stream, &ClientOptions::default())
    }

    /// [`HttpConnection::from_conn`] with explicit [`ClientOptions`].
    pub fn from_conn_opts(
        mut stream: transport::Conn,
        options: &ClientOptions,
    ) -> Result<HttpConnection> {
        stream.set_read_timeout(Some(options.read_timeout))?;
        Ok(HttpConnection { stream })
    }

    /// Deprecated-style wrapper over [`HttpConnection::from_conn_opts`];
    /// new call sites should build a [`ClientOptions`].
    pub fn from_conn_with_timeout(
        stream: transport::Conn,
        read_timeout: Duration,
    ) -> Result<HttpConnection> {
        HttpConnection::from_conn_opts(stream, &ClientOptions::with_read_timeout(read_timeout))
    }

    /// Sends `req` and reads the response.
    pub fn round_trip(&mut self, req: &Request) -> Result<Response> {
        self.stream.write_all(&serialize_request(req))?;
        self.stream.flush()?;
        read_response(&mut self.stream)
    }

    /// [`HttpConnection::round_trip`] driven by [`ClientOptions`]: when
    /// the options carry a retry policy, `503` sheds are waited out with
    /// its seeded backoff; otherwise a plain round trip.
    pub fn round_trip_opts(
        &mut self,
        req: &Request,
        options: &mut ClientOptions,
    ) -> Result<Response> {
        match options.retry.as_mut() {
            Some(policy) => {
                let mut attempt = 0u32;
                loop {
                    let resp = self.round_trip(req)?;
                    if resp.status != Status::SERVICE_UNAVAILABLE || attempt >= policy.max_retries {
                        return Ok(resp);
                    }
                    let delay = policy.delay_for(attempt, resp.retry_after());
                    std::thread::sleep(delay);
                    attempt += 1;
                }
            }
            None => self.round_trip(req),
        }
    }

    /// [`HttpConnection::round_trip`], retrying `503 Service Unavailable`
    /// sheds with seeded jittered exponential backoff. Transport errors
    /// still surface immediately (this connection may be half-dead; the
    /// caller owns reconnects), but an overloaded server that answers
    /// with the shed prefab is waited out — so a client storm converges
    /// instead of hammering the admission gate in lockstep.
    pub fn round_trip_with_retry(
        &mut self,
        req: &Request,
        policy: &mut RetryPolicy,
    ) -> Result<Response> {
        let mut attempt = 0u32;
        loop {
            let resp = self.round_trip(req)?;
            if resp.status != Status::SERVICE_UNAVAILABLE || attempt >= policy.max_retries {
                return Ok(resp);
            }
            let delay = policy.delay_for(attempt, resp.retry_after());
            std::thread::sleep(delay);
            attempt += 1;
        }
    }
}

/// Seeded jittered exponential backoff for shed (`503`) replies.
///
/// Deterministic given its seed: every delay is drawn from the policy's
/// own [`DetRng`], so tests replay byte-identically while distinct
/// clients (distinct seeds) still spread out after a shed storm.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First-retry nominal delay; doubles per attempt.
    pub base: Duration,
    /// Ceiling on any single delay (before the additive Retry-After
    /// jitter).
    pub max_delay: Duration,
    /// Retries before the `503` is returned to the caller as-is.
    pub max_retries: u32,
    rng: DetRng,
}

impl RetryPolicy {
    /// 100ms base, 5s cap, 5 retries — enough for a shed storm to drain
    /// at the default `Retry-After` horizon.
    pub fn seeded(seed: u64) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(100),
            max_delay: Duration::from_secs(5),
            max_retries: 5,
            rng: DetRng::new(seed),
        }
    }

    /// The delay before retry number `attempt` (0-based). A server
    /// `Retry-After` is honored as a floor with additive jitter of up to
    /// one `base` (never retry *earlier* than the server asked);
    /// otherwise exponential `base * 2^attempt` capped at `max_delay`,
    /// with half jitter (uniform in `[nominal/2, nominal]`) to
    /// decorrelate clients shed in the same instant.
    pub fn delay_for(&mut self, attempt: u32, retry_after: Option<u64>) -> Duration {
        let base_ms = self.base.as_millis() as u64;
        match retry_after {
            Some(secs) => {
                let floor = Duration::from_secs(secs);
                floor + Duration::from_millis(self.rng.next_below(base_ms + 1))
            }
            None => {
                let nominal = self
                    .base
                    .saturating_mul(1u32 << attempt.min(16))
                    .min(self.max_delay);
                let ms = nominal.as_millis() as u64;
                Duration::from_millis(ms / 2 + self.rng.next_below(ms / 2 + 1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Status;
    use crate::server::{handler_fn, Handler, HttpServer};

    #[test]
    fn persistent_connection_round_trips() {
        let handler: Handler = handler_fn(|req| {
            crate::message::Response::with_body(Status::OK, "text/plain", req.body.clone())
        });
        let mut server = HttpServer::bind("127.0.0.1:0", handler).unwrap();
        let mut conn = HttpConnection::connect(&server.addr().to_string()).unwrap();
        for i in 0..3 {
            let body = format!("ping-{i}").into_bytes();
            let resp = conn
                .round_trip(&Request::post("/echo", body.clone()))
                .unwrap();
            assert_eq!(resp.body, body);
        }
        server.shutdown();
    }

    #[test]
    fn retry_policy_is_seeded_jittered_exponential() {
        let mut a = RetryPolicy::seeded(7);
        let mut b = RetryPolicy::seeded(7);
        let da: Vec<_> = (0..4).map(|i| a.delay_for(i, None)).collect();
        let db: Vec<_> = (0..4).map(|i| b.delay_for(i, None)).collect();
        assert_eq!(da, db, "same seed, same schedule");
        for (i, d) in da.iter().enumerate() {
            let nominal = 100u64 << i;
            let ms = d.as_millis() as u64;
            assert!(
                ms >= nominal / 2 && ms <= nominal,
                "attempt {i}: {ms}ms outside [{}, {nominal}]",
                nominal / 2
            );
        }
        // Retry-After is a floor: never retry earlier than the server
        // asked, jitter only stretches it.
        let d = a.delay_for(0, Some(2));
        assert!(d >= Duration::from_secs(2));
        assert!(d <= Duration::from_secs(2) + Duration::from_millis(100));
    }

    #[test]
    fn round_trip_with_retry_waits_out_a_shed_then_succeeds() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut discard = [0u8; 4096];
            let _ = stream.read(&mut discard);
            stream
                .write_all(
                    b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\n\r\n",
                )
                .unwrap();
            let _ = stream.read(&mut discard);
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
        });
        let mut conn = HttpConnection::connect(&addr).unwrap();
        let mut policy = RetryPolicy::seeded(9);
        let resp = conn
            .round_trip_with_retry(&Request::get("/"), &mut policy)
            .unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.body_str(), "ok");
        server.join().unwrap();
    }

    #[test]
    fn malformed_response_content_length_is_a_parse_error() {
        // A raw listener playing a broken origin: each canned response
        // has a Content-Length the client must reject outright (the old
        // code treated all of these as 0 and returned a bodyless
        // response, desyncing the stream).
        for raw in [
            &b"HTTP/1.1 200 OK\r\nContent-Length: nan\r\n\r\nhello"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: +5\r\n\r\nhello"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!"[..],
        ] {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let server = std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().unwrap();
                let mut discard = [0u8; 4096];
                let _ = stream.read(&mut discard);
                stream.write_all(raw).unwrap();
            });
            let err = send_request(&addr, &Request::get("/"));
            assert!(err.is_err(), "{:?}", String::from_utf8_lossy(raw));
            server.join().unwrap();
        }
    }
}
