//! The event-driven epoll server backend.
//!
//! Where the worker-pool backend ([`crate::server`]) burns one blocked
//! thread per in-flight connection (capping concurrent keep-alive sessions
//! at the worker count), this backend holds every connection on a single
//! event-loop thread over nonblocking sockets: raw `epoll` readiness (via
//! the libc-free syscall shims in [`rcb_util::sys`]) drives a
//! per-connection state machine — read/parse, dispatch to the shared
//! [`Handler`], staged zero-copy write with partial-write resumption,
//! keep-alive reset. The connection ceiling becomes the process fd limit,
//! not the thread count.
//!
//! `Handler` calls are synchronous and may be arbitrarily slow (a poll that
//! triggers a merge takes the host mutex), so the loop never invokes the
//! handler itself: parsed requests are handed to a small blocking-dispatch
//! thread pool, and finished responses come back over a completion queue
//! plus a socketpair waker. Requests pipelined on one connection are
//! dispatched one at a time, so responses always return in request order;
//! requests on *different* connections run concurrently up to the pool
//! size.
//!
//! The write path reuses the same zero-copy shapes as the blocking server:
//! prefab wire images go to the socket verbatim from their `Arc`, and
//! non-prefab responses are head + body vectored writes
//! ([`crate::serialize::ResponseWriter`]) — a `WouldBlock` mid-response
//! parks the cursor and the loop resumes on the next `EPOLLOUT`.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rcb_util::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use rcb_util::Result;

use crate::message::{Request, Response, Status};
use crate::parse::RequestParser;
use crate::serialize::{ResponseWriter, WriteProgress};
use crate::server::{Handler, ServerConfig};

/// This module variant is the real backend (see `epoll_stub.rs` for the
/// other half of the contract behind `server::EPOLL_SUPPORTED`).
pub(crate) const SUPPORTED: bool = true;

/// Epoll token of the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token of the dispatch-completion waker.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Cap on parsed-but-undispatched requests buffered per connection: past
/// this the loop stops reading from the socket (TCP backpressure) until
/// the queue drains, so one pipelining flooder cannot balloon memory.
const PIPELINE_LIMIT: usize = 64;

/// Initial/maximum accept backoff, mirroring the worker backend's
/// EMFILE-storm behaviour — but implemented by muting the listener's
/// registration rather than sleeping (the loop must keep serving).
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// A request handed to the dispatch pool.
struct Job {
    token: u64,
    request: Request,
    close: bool,
}

/// A handler result travelling back to the event loop.
struct Completion {
    token: u64,
    response: Response,
    close: bool,
}

/// Queues shared between the event loop and the dispatch pool.
struct DispatchShared {
    jobs: Mutex<VecDeque<Job>>,
    /// Signaled when a job is queued (dispatch threads wait on this).
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    stop: AtomicBool,
}

impl DispatchShared {
    fn new() -> DispatchShared {
        DispatchShared {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn submit(&self, job: Job) {
        let mut q = self
            .jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.push_back(job);
        self.available.notify_one();
    }

    fn take_completions(&self) -> Vec<Completion> {
        let mut c = self
            .completions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut *c)
    }
}

/// Wakes the event loop out of `epoll_wait` (dispatch completions,
/// shutdown). One byte on a nonblocking socketpair; a full pipe means a
/// wake is already pending, which is all a waker needs.
#[derive(Clone)]
struct WakeHandle(Arc<UnixStream>);

impl WakeHandle {
    fn wake(&self) {
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// One dispatch-pool thread: pop a job, run the handler, return the
/// completion, wake the loop.
fn dispatch_worker(shared: Arc<DispatchShared>, handler: Handler, waker: WakeHandle) {
    loop {
        let job = {
            let mut q = shared
                .jobs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if shared.stopped() {
                    return;
                }
                if let Some(job) = q.pop_front() {
                    break job;
                }
                // Timeout only as a stop-flag safety net; submissions
                // notify `available` directly.
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
            }
        };
        // Unwind-protected: a panicking handler must still produce a
        // completion (and close the connection), or the dispatch thread
        // dies and the connection wedges with dispatch_in_flight set.
        let (response, panicked) = crate::server::invoke_handler(&handler, job.request);
        {
            let mut c = shared
                .completions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            c.push(Completion {
                token: job.token,
                response,
                close: job.close || panicked,
            });
        }
        waker.wake();
    }
}

/// One connection's state machine, owned by the event loop.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// This connection's epoll token (`slot index | generation << 32`).
    token: u64,
    /// Readiness bits currently registered with epoll.
    interest: u32,
    /// Parsed requests waiting their turn (pipelining; served in order).
    pending: VecDeque<(Request, bool)>,
    /// The response currently being written, if any.
    write: Option<ResponseWriter>,
    /// Close the connection once the current write completes.
    close_after_write: bool,
    /// A request is at the handler; at most one per connection.
    dispatch_in_flight: bool,
    /// The parser hit malformed bytes: answer 400 after the queue drains,
    /// then close. Sticky — no further reads once set.
    parse_failed: bool,
    /// `read` returned EOF; finish pending work, then close.
    peer_closed: bool,
}

/// What the loop should do with a connection after an event.
#[derive(PartialEq)]
enum Verdict {
    Keep,
    Close,
}

/// Drains the socket into the parser and the parsed-request queue.
/// Returns `Close` only on a fatal I/O error (EOF is recorded, not fatal:
/// responses for already-received requests are still delivered).
fn read_conn(conn: &mut Conn) -> Verdict {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if conn.parse_failed || conn.peer_closed || conn.pending.len() >= PIPELINE_LIMIT {
            return Verdict::Keep;
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.peer_closed = true;
                return Verdict::Keep;
            }
            Ok(n) => {
                conn.parser.feed(&buf[..n]);
                loop {
                    match conn.parser.next_request() {
                        Ok(Some(req)) => {
                            let close = req.wants_close();
                            conn.pending.push_back((req, close));
                        }
                        Ok(None) => break,
                        Err(_) => {
                            conn.parse_failed = true;
                            break;
                        }
                    }
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close,
        }
    }
}

/// Pushes the connection's state machine as far as it will go without
/// blocking: finish the in-flight write, then dispatch the next request or
/// emit the deferred 400, until the socket blocks or the machine idles.
fn advance_conn(conn: &mut Conn, dispatch: &DispatchShared) -> Verdict {
    loop {
        let Conn { write, stream, .. } = conn;
        if let Some(writer) = write.as_mut() {
            match writer.write_some(stream) {
                Ok(WriteProgress::Done) => {
                    conn.write = None;
                    if conn.close_after_write {
                        return Verdict::Close;
                    }
                }
                Ok(WriteProgress::Blocked) => return Verdict::Keep,
                Err(_) => return Verdict::Close,
            }
        } else if conn.dispatch_in_flight {
            return Verdict::Keep;
        } else if let Some((request, close)) = conn.pending.pop_front() {
            conn.dispatch_in_flight = true;
            dispatch.submit(Job {
                token: conn.token,
                request,
                close,
            });
        } else if conn.parse_failed {
            // In-order with everything before it: emitted only once the
            // dispatch queue drained. `parse_failed` stays set so the
            // read side remains off; `close_after_write` ends the
            // connection once the 400 is out.
            let resp = Response::error(Status::BAD_REQUEST, "malformed request");
            conn.write = Some(ResponseWriter::new(resp));
            conn.close_after_write = true;
        } else if conn.peer_closed {
            return Verdict::Close;
        } else {
            return Verdict::Keep;
        }
    }
}

/// The readiness bits this connection currently needs.
fn desired_interest(conn: &Conn) -> u32 {
    let mut want = 0;
    if !conn.peer_closed && !conn.parse_failed && conn.pending.len() < PIPELINE_LIMIT {
        want |= EPOLLIN | EPOLLRDHUP;
    }
    if conn.write.is_some() {
        want |= EPOLLOUT;
    }
    want
}

/// A slab slot: the generation survives the connection, so a completion
/// for a closed-and-reused slot is recognized as stale and dropped.
struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

fn token_of(index: usize, gen: u32) -> u64 {
    index as u64 | (u64::from(gen) << 32)
}

fn token_parts(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

/// The event loop: owns the listener, the epoll instance, and every
/// connection. Everything socket-shaped happens on this one thread.
struct EventLoop {
    epoll: Epoll,
    listener: TcpListener,
    waker_rx: UnixStream,
    dispatch: Arc<DispatchShared>,
    accept_errors: Arc<AtomicU64>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Listener muted (deregistered) until this instant after a transient
    /// accept error — the event-loop version of accept backoff.
    listener_muted_until: Option<Instant>,
    accept_backoff: Duration,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); 1024];
        while !self.dispatch.stopped() {
            // The 50 ms ceiling is the stop-flag safety net; a muted
            // listener shortens the wait to its unmute deadline so a 1 ms
            // accept backoff is not quantized up to a full tick.
            let timeout = match self.listener_muted_until {
                Some(deadline) => (deadline
                    .saturating_duration_since(Instant::now())
                    .as_millis() as i32)
                    .clamp(1, 50),
                None => 50,
            };
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => break, // epoll fd itself failed: unrecoverable
            };
            let mut accept_ready = false;
            for ev in &events[..n] {
                match ev.token() {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => self.drain_waker(),
                    token => self.conn_event(token, ev.events()),
                }
            }
            self.process_completions();
            self.maybe_unmute_listener();
            if accept_ready {
                self.accept_drain();
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.waker_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    /// Accepts until the listener runs dry; a transient error (EMFILE,
    /// ECONNABORTED, ...) mutes the listener for a backoff window instead
    /// of busy-looping on a level-triggered readable listener.
    fn accept_drain(&mut self) {
        if self.listener_muted_until.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_START;
                    self.register_conn(stream);
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.accept_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = self.epoll.delete(self.listener.as_raw_fd());
                    self.listener_muted_until = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    break;
                }
            }
        }
    }

    fn maybe_unmute_listener(&mut self) {
        if let Some(deadline) = self.listener_muted_until {
            if Instant::now() >= deadline {
                if self
                    .epoll
                    .add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
                    .is_ok()
                {
                    self.listener_muted_until = None;
                    // Level-triggered: pending connections re-fire on the
                    // next wait, but accept now to shave a tick.
                    self.accept_drain();
                } else {
                    // Registration failed (likely the same resource
                    // pressure that caused the mute): stay muted for
                    // another backoff window and retry, rather than
                    // leaving the listener permanently unwatched.
                    self.accept_errors.fetch_add(1, Ordering::Relaxed);
                    self.listener_muted_until = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot { gen: 0, conn: None });
                self.slots.len() - 1
            }
        };
        let token = token_of(index, self.slots[index].gen);
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
            self.free.push(index);
            return;
        }
        self.slots[index].conn = Some(Conn {
            stream,
            parser: RequestParser::new(),
            token,
            interest,
            pending: VecDeque::new(),
            write: None,
            close_after_write: false,
            dispatch_in_flight: false,
            parse_failed: false,
            peer_closed: false,
        });
    }

    /// Routes one readiness event to the owning connection's state machine.
    fn conn_event(&mut self, token: u64, readiness: u32) {
        let (index, gen) = token_parts(token);
        let Some(slot) = self.slots.get_mut(index) else {
            return;
        };
        if slot.gen != gen {
            return; // stale event for a reused slot
        }
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        let readable = readiness & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0;
        let mut verdict = Verdict::Keep;
        if readable {
            verdict = read_conn(conn);
        }
        // EPOLLERR/EPOLLHUP (RST, full hangup) are reported regardless of
        // the interest mask and the socket can neither deliver our
        // responses nor send more requests: close now — after the read
        // above drained any final bytes — rather than spinning on a
        // level-triggered event no interest change can silence. (A plain
        // write-side shutdown arrives as EPOLLRDHUP and keeps serving.)
        if verdict == Verdict::Keep && readiness & (EPOLLERR | EPOLLHUP) != 0 {
            verdict = Verdict::Close;
        }
        if verdict == Verdict::Keep {
            verdict = advance_conn(conn, &self.dispatch);
        }
        self.settle(index, verdict);
    }

    /// Applies a verdict: close the connection or refresh its epoll
    /// registration to match what the state machine now waits for.
    fn settle(&mut self, index: usize, verdict: Verdict) {
        let slot = &mut self.slots[index];
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        match verdict {
            Verdict::Close => {
                let conn = slot.conn.take().expect("checked above");
                let _ = self.epoll.delete(conn.stream.as_raw_fd());
                // The generation bump invalidates any in-flight dispatch
                // for this slot; its completion will be dropped as stale.
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(index);
            }
            Verdict::Keep => {
                let want = desired_interest(conn);
                if want != conn.interest
                    && self
                        .epoll
                        .modify(conn.stream.as_raw_fd(), want, conn.token)
                        .is_ok()
                {
                    conn.interest = want;
                }
            }
        }
    }

    /// Delivers finished handler responses back to their connections.
    fn process_completions(&mut self) {
        for completion in self.dispatch.take_completions() {
            let (index, gen) = token_parts(completion.token);
            let Some(slot) = self.slots.get_mut(index) else {
                continue;
            };
            if slot.gen != gen {
                continue; // connection closed while the handler ran
            }
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            conn.dispatch_in_flight = false;
            conn.close_after_write = completion.close;
            conn.write = Some(ResponseWriter::new(completion.response));
            let verdict = advance_conn(conn, &self.dispatch);
            self.settle(index, verdict);
        }
    }
}

/// A running epoll-backed HTTP server: one event-loop thread plus
/// `config.workers` dispatch threads.
pub(crate) struct EpollServer {
    addr: SocketAddr,
    dispatch: Arc<DispatchShared>,
    waker: WakeHandle,
    accept_errors: Arc<AtomicU64>,
    threads: Vec<JoinHandle<()>>,
}

impl EpollServer {
    pub(crate) fn bind(addr: &str, handler: Handler, config: &ServerConfig) -> Result<EpollServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        let waker = WakeHandle(Arc::new(waker_tx));

        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(waker_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKER)?;

        let dispatch = Arc::new(DispatchShared::new());
        let accept_errors = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::with_capacity(config.workers + 1);

        let event_loop = EventLoop {
            epoll,
            listener,
            waker_rx,
            dispatch: Arc::clone(&dispatch),
            accept_errors: Arc::clone(&accept_errors),
            slots: Vec::new(),
            free: Vec::new(),
            listener_muted_until: None,
            accept_backoff: ACCEPT_BACKOFF_START,
        };
        threads.push(std::thread::spawn(move || event_loop.run()));

        for _ in 0..config.workers.max(1) {
            let shared = Arc::clone(&dispatch);
            let handler = Arc::clone(&handler);
            let waker = waker.clone();
            threads.push(std::thread::spawn(move || {
                dispatch_worker(shared, handler, waker)
            }));
        }

        Ok(EpollServer {
            addr: local,
            dispatch,
            waker,
            accept_errors,
            threads,
        })
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub(crate) fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    pub(crate) fn shutdown(&mut self) {
        self.dispatch.stop.store(true, Ordering::Relaxed);
        self.dispatch.available.notify_all();
        self.waker.wake();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EpollServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
