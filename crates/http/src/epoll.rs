//! The event-driven epoll server engine: one or many event-loop shards.
//!
//! Where the worker-pool backend ([`crate::server`]) burns one blocked
//! thread per in-flight connection (capping concurrent keep-alive sessions
//! at the worker count), this engine holds every connection on nonblocking
//! sockets driven by raw `epoll` readiness (via the libc-free syscall
//! shims in [`rcb_util::sys`]). The unit of the engine is the
//! [`LoopShard`]: one thread owning its own epoll instance,
//! connection-slot table, socketpair waker, and blocking-dispatch pool,
//! running the per-connection state machine — read/parse, dispatch to the
//! shared [`Handler`], staged zero-copy write with partial-write
//! resumption, keep-alive reset.
//!
//! [`ServerBackend::Epoll`](crate::server::ServerBackend::Epoll) runs one
//! shard; [`ServerBackend::EpollSharded`](crate::server::ServerBackend::EpollSharded)
//! runs `n` of them (`SO_REUSEPORT`-style scale-out) — same state machine,
//! the single loop is literally the `n = 1` case. Shard 0 is the
//! **acceptor shard**: it owns the listening socket and distributes
//! accepted connections round-robin — its own share it registers directly,
//! a peer's share travels through that shard's handoff inbox followed by a
//! waker byte (an `EPOLL_CTL_ADD` handoff executed by the owning loop, so
//! slot tables stay loop-private and unlocked). The `sys` shim also offers
//! `SO_REUSEPORT` for the per-loop-listener alternative; round-robin
//! handoff was chosen because it keeps the distribution deterministic and
//! the listener lifecycle (mute-with-backoff on transient accept errors)
//! in exactly one place.
//!
//! `Handler` calls are synchronous and may be arbitrarily slow (a poll
//! that triggers a merge takes the host mutex), so no loop ever invokes
//! the handler itself: parsed requests go to the shard's small
//! blocking-dispatch thread pool, and finished responses come back over
//! the shard's completion queue plus its waker. Requests pipelined on one
//! connection are dispatched one at a time, so responses always return in
//! request order; requests on *different* connections run concurrently up
//! to the shard's pool size, and different shards share nothing but the
//! handler `Arc` — there is no cross-shard lock on any per-request path.
//!
//! The write path reuses the same zero-copy shapes as the blocking server:
//! prefab wire images go to the socket verbatim from their `Arc`, and
//! non-prefab responses are head + body vectored writes
//! ([`crate::serialize::ResponseWriter`]) — a `WouldBlock` mid-response
//! parks the cursor and the owning loop resumes on the next `EPOLLOUT`.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rcb_util::fault;
use rcb_util::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use rcb_util::{Clock, Result, SimDuration, SimTime};

use crate::message::{Request, Response};
use crate::parse::{ParseReject, RequestParser};
use crate::serialize::{ResponseWriter, WriteProgress};
use crate::server::{
    reject_response, Handler, HandlerOutcome, OverloadCtx, ParkHub, ServerConfig, ServerStats,
};

/// This module variant is the real backend (see `epoll_stub.rs` for the
/// other half of the contract behind `server::EPOLL_SUPPORTED`).
pub(crate) const SUPPORTED: bool = true;

/// Epoll token of the listening socket (acceptor shard only).
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token of the shard's waker (handoffs, completions, shutdown).
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Cap on parsed-but-undispatched requests buffered per connection: past
/// this the loop stops reading from the socket (TCP backpressure) until
/// the queue drains, so one pipelining flooder cannot balloon memory.
const PIPELINE_LIMIT: usize = 64;

/// Initial/maximum accept backoff, mirroring the worker backend's
/// EMFILE-storm behaviour — but implemented by muting the listener's
/// registration rather than sleeping (the loop must keep serving).
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// A request handed to a shard's dispatch pool.
struct Job {
    token: u64,
    request: Request,
    close: bool,
}

/// A handler result travelling back to the owning shard's event loop —
/// either a response to write or a park instruction to install on the
/// connection's slot.
struct Completion {
    token: u64,
    outcome: HandlerOutcome,
    close: bool,
}

/// Everything a shard shares with threads outside its event loop: the
/// dispatch queues (loop ↔ dispatch pool) and the handoff inbox (acceptor
/// shard → this shard). All leaves, held only for a push or a pop.
struct ShardShared {
    jobs: Mutex<VecDeque<Job>>,
    /// Signaled when a job is queued (dispatch threads wait on this).
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Accepted connections handed off by the acceptor shard, awaiting
    /// registration on this shard's epoll (drained by the owning loop).
    inbox: Mutex<Vec<TcpStream>>,
    stop: AtomicBool,
    /// Connections this shard has registered over its lifetime (stats).
    conns_assigned: AtomicU64,
}

impl ShardShared {
    fn new() -> ShardShared {
        ShardShared {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            conns_assigned: AtomicU64::new(0),
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn submit(&self, job: Job) {
        let mut q = self
            .jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.push_back(job);
        self.available.notify_one();
    }

    /// Jobs queued but not yet claimed by a dispatch thread — this
    /// shard's admission signal.
    fn queue_len(&self) -> usize {
        self.jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    fn take_completions(&self) -> Vec<Completion> {
        let mut c = self
            .completions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut *c)
    }
}

/// Wakes a shard's event loop out of `epoll_wait` (dispatch completions,
/// connection handoffs, shutdown). One byte on a nonblocking socketpair; a
/// full pipe means a wake is already pending, which is all a waker needs.
#[derive(Clone)]
struct WakeHandle(Arc<UnixStream>);

impl WakeHandle {
    fn wake(&self) {
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// The externally visible face of one shard: enough to feed it work
/// (handoffs), wake it, stop it, and read its counters. Clonable; the
/// acceptor shard holds one per peer, the server facade one per shard.
#[derive(Clone)]
struct ShardHandle {
    shared: Arc<ShardShared>,
    waker: WakeHandle,
}

impl ShardHandle {
    /// Hands an accepted connection to this shard: inbox push + wake. The
    /// owning loop registers it on its own epoll (slot tables never cross
    /// threads).
    fn hand_off(&self, stream: TcpStream) {
        {
            let mut inbox = self
                .shared
                .inbox
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inbox.push(stream);
        }
        self.waker.wake();
    }
}

/// One dispatch-pool thread: pop a job, run the handler, return the
/// completion, wake the owning loop.
fn dispatch_worker(shared: Arc<ShardShared>, handler: Handler, waker: WakeHandle) {
    loop {
        let job = {
            let mut q = shared
                .jobs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if shared.stopped() {
                    return;
                }
                if let Some(job) = q.pop_front() {
                    break job;
                }
                // Timeout only as a stop-flag safety net; submissions
                // notify `available` directly.
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
            }
        };
        // Unwind-protected: a panicking handler must still produce a
        // completion (and close the connection), or the dispatch thread
        // dies and the connection wedges with dispatch_in_flight set.
        let (outcome, panicked) = crate::server::invoke_handler(&handler, job.request);
        {
            let mut c = shared
                .completions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            c.push(Completion {
                token: job.token,
                outcome,
                close: job.close || panicked,
            });
        }
        waker.wake();
    }
}

/// A long-poll parked on a connection slot: the handler declined to
/// answer until the [`ParkHub`] publishes a key newer than `wait_key` or
/// `deadline` passes. The connection consumes no dispatch slot while
/// parked — it sits in the slot table like an idle keep-alive connection,
/// and the owning loop completes it from `on_wake`/`on_timeout` on a
/// future tick.
struct ParkedPoll {
    /// The hub channel this park waits on (0 = the default channel; a
    /// session router parks each session on its own channel).
    channel: u64,
    wait_key: u64,
    /// Engine-clock deadline (`ServerConfig::clock`): real time in
    /// deployment, virtual time if the engine ever runs under simulation.
    deadline: SimTime,
    on_wake: Box<dyn FnOnce() -> Response + Send>,
    on_timeout: Box<dyn FnOnce() -> Response + Send>,
    /// `Connection: close` (or a panic) was attached to the parked
    /// request: close once the eventual response is written.
    close: bool,
}

/// One connection's state machine, owned by exactly one shard's loop.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// This connection's epoll token (`slot index | generation << 32`).
    token: u64,
    /// Readiness bits currently registered with epoll.
    interest: u32,
    /// Parsed requests waiting their turn (pipelining; served in order).
    pending: VecDeque<(Request, bool)>,
    /// The response currently being written, if any.
    write: Option<ResponseWriter>,
    /// Close the connection once the current write completes.
    close_after_write: bool,
    /// A request is at the handler; at most one per connection.
    dispatch_in_flight: bool,
    /// A long-poll is parked here awaiting publish/timeout. Like
    /// `dispatch_in_flight`, it blocks further dispatch from `pending`,
    /// so pipelined requests behind a parked poll still complete in
    /// request order.
    parked: Option<ParkedPoll>,
    /// The parser refused the byte stream: answer the matching prefab
    /// error (400/413/431) after the queue drains, then close. Sticky —
    /// no further reads once set.
    parse_failed: Option<ParseReject>,
    /// `read` returned EOF; finish pending work, then close.
    peer_closed: bool,
    /// Engine-clock instant of the last byte read (the idle guard).
    last_activity: SimTime,
    /// Set while a partial request sits in the parser (the slowloris
    /// guard); cleared when the buffer drains.
    partial_since: Option<SimTime>,
    /// Engine-clock instant the in-flight write last moved a byte (the
    /// write-stall guard); reset whenever a write is installed.
    write_progress_at: SimTime,
}

/// What the loop should do with a connection after an event.
#[derive(PartialEq)]
enum Verdict {
    Keep,
    Close,
}

/// Drains the socket into the parser and the parsed-request queue.
/// Returns `Close` only on a fatal I/O error (EOF is recorded, not fatal:
/// responses for already-received requests are still delivered).
fn read_conn(conn: &mut Conn, now: SimTime) -> Verdict {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if conn.parse_failed.is_some() || conn.peer_closed || conn.pending.len() >= PIPELINE_LIMIT {
            return Verdict::Keep;
        }
        // Test-only fault hook (inert in production builds): an armed
        // Read fault behaves exactly like the kernel failing the call.
        let read = match fault::take(fault::Op::Read) {
            Some(e) => Err(e),
            None => conn.stream.read(&mut buf),
        };
        match read {
            Ok(0) => {
                conn.peer_closed = true;
                return Verdict::Keep;
            }
            Ok(n) => {
                conn.parser.feed(&buf[..n]);
                conn.last_activity = now;
                loop {
                    match conn.parser.next_request() {
                        Ok(Some(req)) => {
                            let close = req.wants_close();
                            conn.pending.push_back((req, close));
                        }
                        Ok(None) => break,
                        Err(_) => {
                            conn.parse_failed = Some(
                                conn.parser
                                    .reject_reason()
                                    .unwrap_or(ParseReject::Malformed),
                            );
                            break;
                        }
                    }
                }
                // Slowloris guard bookkeeping: leftover bytes that are
                // not a refused stream are a partial request in flight.
                conn.partial_since = if conn.parser.buffered() > 0 && conn.parse_failed.is_none() {
                    conn.partial_since.or(Some(now))
                } else {
                    None
                };
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close,
        }
    }
}

/// Pushes the connection's state machine as far as it will go without
/// blocking: finish the in-flight write, then dispatch (or shed) the next
/// request or emit the deferred parse-error reply, until the socket
/// blocks or the machine idles.
fn advance_conn(
    conn: &mut Conn,
    dispatch: &ShardShared,
    overload: &OverloadCtx,
    now: SimTime,
) -> Verdict {
    loop {
        let Conn { write, stream, .. } = conn;
        if let Some(writer) = write.as_mut() {
            let before = writer.written();
            let progress = writer.write_some(stream);
            if writer.written() > before {
                conn.write_progress_at = now;
            }
            match progress {
                Ok(WriteProgress::Done) => {
                    conn.write = None;
                    if conn.close_after_write {
                        return Verdict::Close;
                    }
                }
                Ok(WriteProgress::Blocked) => return Verdict::Keep,
                Err(_) => return Verdict::Close,
            }
        } else if conn.dispatch_in_flight || conn.parked.is_some() {
            // A parked long-poll holds the dispatch position exactly like
            // an in-flight handler call: nothing behind it starts until
            // the park resolves, preserving pipeline order.
            return Verdict::Keep;
        } else if let Some((request, close)) = conn.pending.pop_front() {
            // Admission control: over the high-water mark the prefab
            // shed reply answers from the event loop — no dispatch slot
            // is consumed and the handler never runs.
            if dispatch.queue_len() >= overload.config.queue_high_water {
                overload
                    .counters
                    .requests_shed
                    .fetch_add(1, Ordering::Relaxed);
                drop(request);
                conn.close_after_write = close;
                conn.write = Some(ResponseWriter::new(overload.shed.next()));
                conn.write_progress_at = now;
            } else {
                conn.dispatch_in_flight = true;
                dispatch.submit(Job {
                    token: conn.token,
                    request,
                    close,
                });
            }
        } else if let Some(reason) = conn.parse_failed {
            // In-order with everything before it: emitted only once the
            // dispatch queue drained. `parse_failed` stays set so the
            // read side remains off; `close_after_write` ends the
            // connection once the error reply is out.
            overload.counters.count_reject(reason);
            conn.write = Some(ResponseWriter::new(reject_response(reason)));
            conn.write_progress_at = now;
            conn.close_after_write = true;
        } else if conn.peer_closed {
            return Verdict::Close;
        } else {
            return Verdict::Keep;
        }
    }
}

/// The readiness bits this connection currently needs.
fn desired_interest(conn: &Conn) -> u32 {
    let mut want = 0;
    if !conn.peer_closed && conn.parse_failed.is_none() && conn.pending.len() < PIPELINE_LIMIT {
        want |= EPOLLIN | EPOLLRDHUP;
    }
    if conn.write.is_some() {
        want |= EPOLLOUT;
    }
    want
}

/// A slab slot: the generation survives the connection, so a completion
/// for a closed-and-reused slot is recognized as stale and dropped.
struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

fn token_of(index: usize, gen: u32) -> u64 {
    index as u64 | (u64::from(gen) << 32)
}

fn token_parts(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

/// The accept half, present only on shard 0: the listener, the
/// round-robin pointer over every shard, and the mute-with-backoff state
/// for transient accept errors.
struct Acceptor {
    listener: TcpListener,
    /// Handles to every shard, index-aligned; entry 0 is the acceptor
    /// shard itself (registered directly, not through the inbox).
    shards: Vec<ShardHandle>,
    /// Next shard in the round-robin rotation.
    next_shard: usize,
    accept_errors: Arc<AtomicU64>,
    /// Listener muted (deregistered) until this engine-clock time after a
    /// transient accept error — the event-loop version of accept backoff.
    listener_muted_until: Option<SimTime>,
    accept_backoff: Duration,
}

/// One event-loop shard: a thread owning an epoll instance, a slot table
/// of connections, a waker, and (through [`ShardShared`]) its dispatch
/// pool. Shard 0 additionally owns the [`Acceptor`]. Everything
/// socket-shaped for a given connection happens on its owning shard's
/// thread; the single-loop backend is the one-shard instance of this
/// struct, not a separate implementation.
struct LoopShard {
    epoll: Epoll,
    waker_rx: UnixStream,
    shared: Arc<ShardShared>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Present only on the acceptor shard (index 0).
    acceptor: Option<Acceptor>,
    /// The park/wake rendezvous shared with the application (and the
    /// other shards). Publishes poke this loop's waker; the loop re-scans
    /// its parked slots on every tick regardless, so a racing publish is
    /// at worst one tick late, never lost.
    park: Arc<ParkHub>,
    /// Live parked long-polls in this shard's slot table — lets every
    /// tick skip the slot scan in the (typical) no-parks case.
    parked_count: usize,
    /// Engine clock for park deadlines and listener-mute windows
    /// (`ServerConfig::clock` — the wall clock in deployment).
    clock: Clock,
    /// Overload limits, counters, and the shed-response pool (shared
    /// across shards, so counters aggregate server-wide).
    overload: Arc<OverloadCtx>,
}

impl LoopShard {
    fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); 1024];
        while !self.shared.stopped() {
            // The 50 ms ceiling is the stop-flag safety net; a muted
            // listener, a parked long-poll, or a lifecycle-guard deadline
            // shortens the wait to its own deadline so neither a 1 ms
            // accept backoff nor a short guard timeout is quantized up to
            // a full tick.
            let muted_until = self.acceptor.as_ref().and_then(|a| a.listener_muted_until);
            let deadline = [
                muted_until,
                self.nearest_park_deadline(),
                self.nearest_guard_deadline(),
            ]
            .into_iter()
            .flatten()
            .min();
            let timeout = match deadline {
                Some(deadline) => deadline.since(self.clock.now()).as_millis().clamp(1, 50) as i32,
                None => 50,
            };
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => break, // epoll fd itself failed: unrecoverable
            };
            let mut accept_ready = false;
            for ev in &events[..n] {
                match ev.token() {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => self.drain_waker(),
                    token => self.conn_event(token, ev.events()),
                }
            }
            self.adopt_handoffs();
            self.process_completions();
            self.service_parked();
            self.sweep_guards();
            self.maybe_unmute_listener();
            if accept_ready {
                self.accept_drain();
            }
        }
    }

    /// The soonest park timeout in this shard's slot table, if any.
    fn nearest_park_deadline(&self) -> Option<SimTime> {
        if self.parked_count == 0 {
            return None;
        }
        self.slots
            .iter()
            .filter_map(|s| s.conn.as_ref())
            .filter_map(|c| c.parked.as_ref())
            .map(|p| p.deadline)
            .min()
    }

    /// The lifecycle-guard deadline a connection is currently on, if any:
    /// a stalled write is on the write-stall clock; a connection with
    /// work in flight is exempt (the park deadline governs parks); a
    /// buffered partial request is on the slowloris clock; everything
    /// else is an idle keep-alive on the idle clock.
    fn guard_deadline(&self, conn: &Conn) -> Option<SimTime> {
        let cfg = &self.overload.config;
        if conn.write.is_some() {
            Some(conn.write_progress_at + SimDuration::from_duration(cfg.write_stall_timeout))
        } else if conn.dispatch_in_flight || conn.parked.is_some() || !conn.pending.is_empty() {
            None
        } else if let Some(since) = conn.partial_since {
            Some(since + SimDuration::from_duration(cfg.header_read_timeout))
        } else {
            Some(conn.last_activity + SimDuration::from_duration(cfg.idle_timeout))
        }
    }

    /// The soonest lifecycle-guard deadline in this shard's slot table.
    fn nearest_guard_deadline(&self) -> Option<SimTime> {
        self.slots
            .iter()
            .filter_map(|s| s.conn.as_ref())
            .filter_map(|c| self.guard_deadline(c))
            .min()
    }

    /// Cuts every connection whose lifecycle-guard deadline has passed,
    /// counting the cut under the guard that fired. One O(slots) pass per
    /// tick — the same cost profile as the parked-slot scan.
    fn sweep_guards(&mut self) {
        let now = self.clock.now();
        for index in 0..self.slots.len() {
            let expired = {
                let Some(conn) = self.slots[index].conn.as_ref() else {
                    continue;
                };
                match self.guard_deadline(conn) {
                    Some(deadline) if now >= deadline => {
                        let counters = &self.overload.counters;
                        let counter = if conn.write.is_some() {
                            &counters.write_stall_timeouts
                        } else if conn.partial_since.is_some() {
                            &counters.header_timeouts
                        } else {
                            &counters.idle_timeouts
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        true
                    }
                    _ => false,
                }
            };
            if expired {
                self.settle(index, Verdict::Close);
            }
        }
    }

    /// Completes parked long-polls whose wake condition or timeout has
    /// arrived: the response comes from the park's own closure (wake =
    /// fresh content, timeout = the empty-poll fallback) and enters the
    /// ordinary staged write path — prefab images stay zero-copy, and
    /// `advance_conn` resumes any requests pipelined behind the park.
    fn service_parked(&mut self) {
        if self.parked_count == 0 {
            return;
        }
        let now = self.clock.now();
        for index in 0..self.slots.len() {
            let Some(conn) = self.slots[index].conn.as_mut() else {
                continue;
            };
            // Per-channel status: parks on the default channel read the
            // lock-free atomic; a routed session's parks consult its own
            // channel, so another session's publish never wakes them. A
            // closed channel (evicted session) resolves as a timeout.
            let due = match conn.parked.as_ref() {
                Some(p) => {
                    let (published, closed) = self.park.channel_status(p.channel);
                    closed || published > p.wait_key || now >= p.deadline
                }
                None => false,
            };
            if !due {
                continue;
            }
            let parked = conn.parked.take().expect("checked above");
            self.parked_count -= 1;
            self.park.release_park();
            let (published, closed) = self.park.channel_status(parked.channel);
            let response = if !closed && published > parked.wait_key {
                (parked.on_wake)()
            } else {
                (parked.on_timeout)()
            };
            conn.close_after_write = parked.close;
            conn.write = Some(ResponseWriter::new(response));
            conn.write_progress_at = now;
            let verdict = advance_conn(conn, &self.shared, &self.overload, now);
            self.settle(index, verdict);
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.waker_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    /// Registers connections the acceptor shard handed to this shard.
    fn adopt_handoffs(&mut self) {
        let streams = {
            let mut inbox = self
                .shared
                .inbox
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *inbox)
        };
        for stream in streams {
            self.register_conn(stream);
        }
    }

    /// Accepts until the listener runs dry, spreading connections across
    /// shards round-robin; a transient error (EMFILE, ECONNABORTED, ...)
    /// mutes the listener for a backoff window instead of busy-looping on
    /// a level-triggered readable listener. No-op on non-acceptor shards.
    fn accept_drain(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        let clock = self.clock.clone();
        loop {
            let acc = self.acceptor.as_mut().expect("checked above");
            if acc.listener_muted_until.is_some() {
                return;
            }
            // Test-only fault hook: an armed Accept fault behaves exactly
            // like the kernel refusing the accept.
            let accepted = match fault::take(fault::Op::Accept) {
                Some(e) => Err(e),
                None => acc.listener.accept().map(|(stream, _)| stream),
            };
            match accepted {
                Ok(stream) => {
                    acc.accept_backoff = ACCEPT_BACKOFF_START;
                    let target = acc.next_shard;
                    acc.next_shard = (acc.next_shard + 1) % acc.shards.len();
                    if target == 0 {
                        self.register_conn(stream);
                    } else {
                        acc.shards[target].hand_off(stream);
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    acc.accept_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = self.epoll.delete(acc.listener.as_raw_fd());
                    acc.listener_muted_until =
                        Some(clock.now() + SimDuration::from_duration(acc.accept_backoff));
                    acc.accept_backoff = (acc.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    break;
                }
            }
        }
    }

    fn maybe_unmute_listener(&mut self) {
        let mut unmuted = false;
        let clock = self.clock.clone();
        {
            let Some(acc) = self.acceptor.as_mut() else {
                return;
            };
            let Some(deadline) = acc.listener_muted_until else {
                return;
            };
            if clock.now() < deadline {
                return;
            }
            if self
                .epoll
                .add(acc.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
                .is_ok()
            {
                acc.listener_muted_until = None;
                unmuted = true;
            } else {
                // Registration failed (likely the same resource pressure
                // that caused the mute): stay muted for another backoff
                // window and retry, rather than leaving the listener
                // permanently unwatched.
                acc.accept_errors.fetch_add(1, Ordering::Relaxed);
                acc.listener_muted_until =
                    Some(clock.now() + SimDuration::from_duration(acc.accept_backoff));
                acc.accept_backoff = (acc.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
        if unmuted {
            // Level-triggered: pending connections re-fire on the next
            // wait, but accept now to shave a tick.
            self.accept_drain();
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot { gen: 0, conn: None });
                self.slots.len() - 1
            }
        };
        let token = token_of(index, self.slots[index].gen);
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
            self.free.push(index);
            return;
        }
        self.shared.conns_assigned.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now();
        let cfg = &self.overload.config;
        self.slots[index].conn = Some(Conn {
            stream,
            parser: RequestParser::with_limits(cfg.max_header_bytes, cfg.max_body_bytes),
            token,
            interest,
            pending: VecDeque::new(),
            write: None,
            close_after_write: false,
            dispatch_in_flight: false,
            parked: None,
            parse_failed: None,
            peer_closed: false,
            last_activity: now,
            partial_since: None,
            write_progress_at: now,
        });
    }

    /// Routes one readiness event to the owning connection's state machine.
    fn conn_event(&mut self, token: u64, readiness: u32) {
        let (index, gen) = token_parts(token);
        let Some(slot) = self.slots.get_mut(index) else {
            return;
        };
        if slot.gen != gen {
            return; // stale event for a reused slot
        }
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        let readable = readiness & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0;
        let now = self.clock.now();
        let mut verdict = Verdict::Keep;
        if readable {
            verdict = read_conn(conn, now);
        }
        // EPOLLERR/EPOLLHUP (RST, full hangup) are reported regardless of
        // the interest mask and the socket can neither deliver our
        // responses nor send more requests: close now — after the read
        // above drained any final bytes — rather than spinning on a
        // level-triggered event no interest change can silence. (A plain
        // write-side shutdown arrives as EPOLLRDHUP and keeps serving.)
        if verdict == Verdict::Keep && readiness & (EPOLLERR | EPOLLHUP) != 0 {
            verdict = Verdict::Close;
        }
        if verdict == Verdict::Keep {
            verdict = advance_conn(conn, &self.shared, &self.overload, now);
        }
        self.settle(index, verdict);
    }

    /// Applies a verdict: close the connection or refresh its epoll
    /// registration to match what the state machine now waits for.
    fn settle(&mut self, index: usize, verdict: Verdict) {
        let slot = &mut self.slots[index];
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        match verdict {
            Verdict::Close => {
                let conn = slot.conn.take().expect("checked above");
                if conn.parked.is_some() {
                    self.parked_count -= 1;
                    // The park slot frees with its connection, or the cap
                    // would leak down to zero under churn.
                    self.park.release_park();
                }
                let _ = self.epoll.delete(conn.stream.as_raw_fd());
                // The generation bump invalidates any in-flight dispatch
                // for this slot; its completion will be dropped as stale.
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(index);
            }
            Verdict::Keep => {
                let want = desired_interest(conn);
                if want != conn.interest
                    && self
                        .epoll
                        .modify(conn.stream.as_raw_fd(), want, conn.token)
                        .is_ok()
                {
                    conn.interest = want;
                }
            }
        }
    }

    /// Delivers finished handler outcomes back to their connections: a
    /// response starts its staged write; a park installs on the slot (to
    /// be completed by [`LoopShard::service_parked`] — which runs right
    /// after this on the same tick, so a publish that already happened
    /// wakes the poll without waiting another tick).
    fn process_completions(&mut self) {
        let now = self.clock.now();
        for completion in self.shared.take_completions() {
            let (index, gen) = token_parts(completion.token);
            let Some(slot) = self.slots.get_mut(index) else {
                continue;
            };
            if slot.gen != gen {
                continue; // connection closed while the handler ran
            }
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            conn.dispatch_in_flight = false;
            match completion.outcome {
                HandlerOutcome::Respond(response) => {
                    conn.close_after_write = completion.close;
                    conn.write = Some(ResponseWriter::new(response));
                    conn.write_progress_at = now;
                }
                HandlerOutcome::Park(park) => {
                    if self.park.try_admit_park(self.overload.config.max_parked) {
                        conn.parked = Some(ParkedPoll {
                            channel: park.channel,
                            wait_key: park.wait_key,
                            deadline: now + SimDuration::from_duration(park.max_wait),
                            on_wake: park.on_wake,
                            on_timeout: park.on_timeout,
                            close: completion.close,
                        });
                        self.parked_count += 1;
                    } else {
                        // Park cap reached: degrade to the immediate
                        // empty-poll reply instead of holding the slot.
                        conn.close_after_write = completion.close;
                        conn.write = Some(ResponseWriter::new((park.on_timeout)()));
                        conn.write_progress_at = now;
                    }
                }
            }
            let verdict = advance_conn(conn, &self.shared, &self.overload, now);
            self.settle(index, verdict);
        }
    }
}

/// A running epoll-backed HTTP server: `shards` event-loop threads (shard
/// 0 accepting), each with its own dispatch pool slice.
pub(crate) struct EpollServer {
    addr: SocketAddr,
    shards: Vec<ShardHandle>,
    accept_errors: Arc<AtomicU64>,
    overload: Arc<OverloadCtx>,
    hub: Arc<ParkHub>,
    threads: Vec<JoinHandle<()>>,
}

impl EpollServer {
    /// Binds and starts `shard_count` event loops (min 1). The dispatch
    /// budget `config.workers` is spread across shards (ceiling division),
    /// so one shard keeps exactly the configured pool size.
    pub(crate) fn bind(
        addr: &str,
        handler: Handler,
        config: &ServerConfig,
        shard_count: usize,
    ) -> Result<EpollServer> {
        let shard_count = shard_count.max(1);
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let accept_errors = Arc::new(AtomicU64::new(0));
        let overload = OverloadCtx::new(config.overload.clone());

        // Handles first: shard 0's acceptor needs one per shard before any
        // loop thread starts.
        let mut handles = Vec::with_capacity(shard_count);
        let mut waker_rxs = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (waker_rx, waker_tx) = UnixStream::pair()?;
            waker_rx.set_nonblocking(true)?;
            waker_tx.set_nonblocking(true)?;
            handles.push(ShardHandle {
                shared: Arc::new(ShardShared::new()),
                waker: WakeHandle(Arc::new(waker_tx)),
            });
            waker_rxs.push(waker_rx);
        }

        // Phase 1, fallible: every epoll instance and registration is
        // created before any thread starts, so a failure partway (fd
        // exhaustion on a later shard) unwinds by Drop — epolls, wakers,
        // and the listener all close, no thread was spawned, the port is
        // released. (Spawning as we went would leak running loops and a
        // bound listener feeding shards that never came to exist.)
        let mut loop_shards = Vec::with_capacity(shard_count);
        let mut listener = Some(listener);
        for (index, waker_rx) in waker_rxs.into_iter().enumerate() {
            let epoll = Epoll::new()?;
            epoll.add(waker_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKER)?;
            let acceptor = match listener.take() {
                Some(listener) => {
                    debug_assert_eq!(index, 0, "listener goes to shard 0");
                    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
                    Some(Acceptor {
                        listener,
                        shards: handles.clone(),
                        next_shard: 0,
                        accept_errors: Arc::clone(&accept_errors),
                        listener_muted_until: None,
                        accept_backoff: ACCEPT_BACKOFF_START,
                    })
                }
                None => None,
            };
            loop_shards.push(LoopShard {
                epoll,
                waker_rx,
                shared: Arc::clone(&handles[index].shared),
                slots: Vec::new(),
                free: Vec::new(),
                acceptor,
                park: Arc::clone(&config.park_hub),
                parked_count: 0,
                clock: config.clock.clone(),
                overload: Arc::clone(&overload),
            });
            // A publish on the hub pokes this shard's waker, so a parked
            // poll completes on the very next loop iteration instead of
            // waiting out the 50 ms tick.
            let waker = handles[index].waker.clone();
            config
                .park_hub
                .register_waker(Box::new(move || waker.wake()));
        }

        // Phase 2, infallible: start every loop and its dispatch slice.
        let per_shard_workers = config.workers.max(1).div_ceil(shard_count);
        let mut threads = Vec::with_capacity(shard_count * (per_shard_workers + 1));
        for (index, shard) in loop_shards.into_iter().enumerate() {
            threads.push(std::thread::spawn(move || shard.run()));
            for _ in 0..per_shard_workers {
                let shared = Arc::clone(&handles[index].shared);
                let handler = Arc::clone(&handler);
                let waker = handles[index].waker.clone();
                threads.push(std::thread::spawn(move || {
                    dispatch_worker(shared, handler, waker)
                }));
            }
        }

        Ok(EpollServer {
            addr: local,
            shards: handles,
            accept_errors,
            overload,
            hub: Arc::clone(&config.park_hub),
            threads,
        })
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate engine counters: accept errors plus the per-shard
    /// connection assignment (round-robin keeps these balanced).
    pub(crate) fn stats(&self) -> ServerStats {
        let connections_per_shard: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.shared.conns_assigned.load(Ordering::Relaxed))
            .collect();
        let mut stats = ServerStats {
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            connections_accepted: connections_per_shard.iter().sum(),
            shards: connections_per_shard.len(),
            connections_per_shard,
            ..ServerStats::default()
        };
        self.overload.fill_stats(&mut stats, &self.hub);
        stats
    }

    /// Stops every shard **before** joining any thread: all loops observe
    /// the stop flag concurrently (each gets its own waker byte), so total
    /// shutdown time is one drain, not one drain per shard. Join order is
    /// deterministic — shard 0's loop, its dispatch pool, shard 1's loop,
    /// ... — which the drain test relies on being prompt and leak-free.
    pub(crate) fn shutdown(&mut self) {
        for shard in &self.shards {
            shard.shared.stop.store(true, Ordering::Relaxed);
            shard.shared.available.notify_all();
            shard.waker.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EpollServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
