//! Stand-in for [`crate::epoll`] on targets without the epoll shims.
//!
//! Never constructed at runtime: `ServerBackend::effective()` degrades
//! `Epoll` and `EpollSharded` to `Workers` wherever this module is the one
//! compiled in, so `HttpServer::bind_with` never reaches
//! [`EpollServer::bind`]. The type exists so the server facade's `Engine`
//! enum and its match arms compile identically on every target — the
//! platform `cfg` lives on the module declarations in `lib.rs` and nowhere
//! else in the crate.

use std::convert::Infallible;
use std::net::SocketAddr;

use rcb_util::Result;

use crate::server::{Handler, ServerConfig, ServerStats};

/// This module variant is the stub (backs `server::EPOLL_SUPPORTED`).
pub(crate) const SUPPORTED: bool = false;

/// Uninhabited: holds an [`Infallible`], so instances cannot exist and
/// the accessors below type-check by matching on the void.
pub(crate) struct EpollServer {
    void: Infallible,
}

impl EpollServer {
    pub(crate) fn bind(
        _addr: &str,
        _handler: Handler,
        _config: &ServerConfig,
        _shard_count: usize,
    ) -> Result<EpollServer> {
        unreachable!(
            "epoll backend not compiled in; ServerBackend::effective() degrades to workers"
        )
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        match self.void {}
    }

    pub(crate) fn shard_count(&self) -> usize {
        match self.void {}
    }

    pub(crate) fn stats(&self) -> ServerStats {
        match self.void {}
    }

    pub(crate) fn shutdown(&mut self) {
        match self.void {}
    }
}
