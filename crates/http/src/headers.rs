//! Ordered, case-insensitive header map.
//!
//! HTTP header field names are case-insensitive (RFC 2616 §4.2) but order
//! can matter for repeated fields (`Set-Cookie`), so the map preserves
//! insertion order and stores the original spelling.

use rcb_util::{RcbError, Result};

/// An ordered multimap of HTTP header fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Appends a field, keeping any existing fields with the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Sets a field, replacing all existing fields with the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.entries.push((name.to_string(), value.into()));
    }

    /// First value for `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether a field named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Removes all fields named `name`.
    pub fn remove(&mut self, name: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses `Content-Length`, distinguishing *absent* from *invalid*.
    ///
    /// `Ok(None)` means the header is absent (callers pick their own
    /// default); `Ok(Some(n))` means every `Content-Length` field agrees
    /// on the decimal value `n`. Anything else — a non-digit value, an
    /// empty value, a signed value like `+5`, or duplicates that disagree
    /// — is `Err`, never silently 0: a message framed by a bad length
    /// desyncs the connection (the request-smuggling shape), so it must
    /// be rejected, not guessed at. Identical duplicates are tolerated
    /// (RFC 7230 §3.3.2 allows receivers to accept them).
    pub fn content_length(&self) -> Result<Option<usize>> {
        let values = self.get_all("content-length");
        let Some(first) = values.first() else {
            return Ok(None);
        };
        let parse = |v: &str| {
            let v = v.trim();
            // `usize::from_str` accepts a leading '+'; HTTP does not.
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(RcbError::parse(
                    "http",
                    format!("invalid Content-Length {v:?}"),
                ));
            }
            v.parse::<usize>()
                .map_err(|_| RcbError::parse("http", format!("invalid Content-Length {v:?}")))
        };
        let n = parse(first)?;
        for v in &values[1..] {
            if parse(v)? != n {
                return Err(RcbError::parse(
                    "http",
                    "conflicting duplicate Content-Length",
                ));
            }
        }
        Ok(Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_get() {
        let mut h = HeaderMap::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
    }

    #[test]
    fn set_replaces_append_keeps() {
        let mut h = HeaderMap::new();
        h.append("Set-Cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        assert_eq!(h.get_all("set-cookie"), vec!["a=1", "b=2"]);
        h.set("Set-Cookie", "c=3");
        assert_eq!(h.get_all("set-cookie"), vec!["c=3"]);
    }

    #[test]
    fn remove_clears_all() {
        let mut h = HeaderMap::new();
        h.append("X", "1");
        h.append("x", "2");
        h.remove("X");
        assert!(h.is_empty());
    }

    #[test]
    fn content_length_parsing() {
        let mut h = HeaderMap::new();
        assert_eq!(h.content_length().unwrap(), None, "absent is fine");
        h.set("Content-Length", " 42 ");
        assert_eq!(h.content_length().unwrap(), Some(42));
        // Invalid values are errors, never a silent 0.
        for bad in ["nan", "", "+5", "-1", "4 2", "0x10", "42abc"] {
            h.set("Content-Length", bad);
            assert!(h.content_length().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn content_length_duplicates() {
        // Identical duplicates are tolerated (RFC 7230 §3.3.2)...
        let mut h = HeaderMap::new();
        h.append("Content-Length", "7");
        h.append("content-length", " 7");
        assert_eq!(h.content_length().unwrap(), Some(7));
        // ...conflicting ones are the smuggling shape: hard error.
        h.append("Content-Length", "8");
        assert!(h.content_length().is_err());
        // A duplicate that is itself malformed is also an error.
        let mut h2 = HeaderMap::new();
        h2.append("Content-Length", "7");
        h2.append("Content-Length", "x");
        assert!(h2.content_length().is_err());
    }

    #[test]
    fn iteration_preserves_order() {
        let mut h = HeaderMap::new();
        h.append("A", "1");
        h.append("B", "2");
        let names: Vec<&str> = h.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["A", "B"]);
        assert_eq!(h.len(), 2);
    }
}
