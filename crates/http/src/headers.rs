//! Ordered, case-insensitive header map.
//!
//! HTTP header field names are case-insensitive (RFC 2616 §4.2) but order
//! can matter for repeated fields (`Set-Cookie`), so the map preserves
//! insertion order and stores the original spelling.

/// An ordered multimap of HTTP header fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Appends a field, keeping any existing fields with the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Sets a field, replacing all existing fields with the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.entries.push((name.to_string(), value.into()));
    }

    /// First value for `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether a field named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Removes all fields named `name`.
    pub fn remove(&mut self, name: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses `Content-Length` if present and well-formed.
    pub fn content_length(&self) -> Option<usize> {
        self.get("content-length")
            .and_then(|v| v.trim().parse().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_get() {
        let mut h = HeaderMap::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
    }

    #[test]
    fn set_replaces_append_keeps() {
        let mut h = HeaderMap::new();
        h.append("Set-Cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        assert_eq!(h.get_all("set-cookie"), vec!["a=1", "b=2"]);
        h.set("Set-Cookie", "c=3");
        assert_eq!(h.get_all("set-cookie"), vec!["c=3"]);
    }

    #[test]
    fn remove_clears_all() {
        let mut h = HeaderMap::new();
        h.append("X", "1");
        h.append("x", "2");
        h.remove("X");
        assert!(h.is_empty());
    }

    #[test]
    fn content_length_parsing() {
        let mut h = HeaderMap::new();
        assert_eq!(h.content_length(), None);
        h.set("Content-Length", " 42 ");
        assert_eq!(h.content_length(), Some(42));
        h.set("Content-Length", "nan");
        assert_eq!(h.content_length(), None);
    }

    #[test]
    fn iteration_preserves_order() {
        let mut h = HeaderMap::new();
        h.append("A", "1");
        h.append("B", "2");
        let names: Vec<&str> = h.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["A", "B"]);
        assert_eq!(h.len(), 2);
    }
}
