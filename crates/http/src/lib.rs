//! HTTP/1.1 substrate.
//!
//! RCB-Agent *is* an HTTP server living inside the host browser (paper
//! §3.2.2): it accepts TCP connections, classifies GET/POST requests by
//! method and request-URI (Fig. 2), and answers with `text/html`,
//! `application/xml`, or cached-object responses. This crate supplies the
//! message model ([`Request`], [`Response`]), an incremental parser that
//! consumes bytes exactly as they arrive off a socket ([`parse`]), the
//! serializer, and a bounded worker-pool TCP [`server`] + blocking
//! [`client`] used by the real-socket deployment path and the loopback
//! integration tests.

pub mod client;
pub mod headers;
pub mod message;
pub mod parse;
pub mod serialize;
pub mod server;

pub use headers::HeaderMap;
pub use message::{Body, Method, Request, Response, Status};
pub use parse::{parse_request, parse_response, RequestParser};
pub use server::{Handler, HttpServer, ServerConfig};
