//! HTTP/1.1 substrate.
//!
//! RCB-Agent *is* an HTTP server living inside the host browser (paper
//! §3.2.2): it accepts TCP connections, classifies GET/POST requests by
//! method and request-URI (Fig. 2), and answers with `text/html`,
//! `application/xml`, or cached-object responses. This crate supplies the
//! message model ([`Request`], [`Response`]), an incremental parser that
//! consumes bytes exactly as they arrive off a socket ([`parse`]), the
//! serializer, and a TCP [`server`] with two runtime-selectable backends —
//! a bounded worker pool and an event-driven [`epoll`] loop — plus the
//! blocking [`client`] used by the real-socket deployment path and the
//! loopback integration tests.
//!
//! The server and client move bytes through the [`transport`] seam
//! (kernel sockets or the seeded in-process fabric from `rcb-sim`), and
//! [`simdrive`] is the single-threaded deterministic server driver the
//! world sim pumps in place of the threaded engines.

pub mod batch;
pub mod client;
// The one place the platform condition for the epoll backend appears in
// this crate: everywhere else compiles identically against whichever
// `epoll` module is selected (`server::EPOLL_SUPPORTED` mirrors it as a
// runtime-checkable const, and `ServerBackend::effective()` guarantees
// the stub is never reached at runtime).
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod epoll;
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
#[path = "epoll_stub.rs"]
pub(crate) mod epoll;
pub mod headers;
pub mod message;
pub mod parse;
pub mod serialize;
pub mod server;
pub mod simdrive;
pub mod transport;

pub use batch::{
    parse_batch_parts, BatchPart, BATCH_BOUNDARY, BATCH_CONTENT_TYPE, BATCH_MEDIA_TYPE,
};
pub use headers::HeaderMap;
pub use message::{Body, Method, Request, Response, Status};
pub use parse::{parse_request, parse_response, ParseReject, RequestParser};
pub use server::{
    handler_fn, Handler, HandlerOutcome, HttpServer, OverloadConfig, Park, ParkHub, ServerBackend,
    ServerConfig, ServerStats,
};
pub use simdrive::SimDriver;
