//! HTTP request and response types.

use std::fmt;

use rcb_util::{RcbError, Result};

use crate::headers::HeaderMap;

/// HTTP request methods used by the RCB protocol.
///
/// New-connection and object requests use GET; Ajax polling requests
/// "always use the POST method because we want to directly piggyback action
/// information of a co-browsing participant onto a polling request"
/// (paper §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// HEAD.
    Head,
}

impl Method {
    /// Parses a method token.
    pub fn parse(token: &str) -> Result<Method> {
        match token {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "HEAD" => Ok(Method::Head),
            other => Err(RcbError::parse("http", format!("unsupported method {other:?}"))),
        }
    }

    /// The wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP status codes used by the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Status(pub u16);

impl Status {
    /// 200 OK.
    pub const OK: Status = Status(200);
    /// 302 Found.
    pub const FOUND: Status = Status(302);
    /// 304 Not Modified.
    pub const NOT_MODIFIED: Status = Status(304);
    /// 400 Bad Request.
    pub const BAD_REQUEST: Status = Status(400);
    /// 401 Unauthorized.
    pub const UNAUTHORIZED: Status = Status(401);
    /// 403 Forbidden.
    pub const FORBIDDEN: Status = Status(403);
    /// 404 Not Found.
    pub const NOT_FOUND: Status = Status(404);
    /// 500 Internal Server Error.
    pub const INTERNAL: Status = Status(500);

    /// Canonical reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request-target: absolute path plus optional query (`/poll?hmac=..`).
    pub target: String,
    /// Header fields.
    pub headers: HeaderMap,
    /// Entity body (empty for GET).
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a GET request for `target`.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            headers: HeaderMap::new(),
            body: Vec::new(),
        }
    }

    /// Builds a POST request with a body; sets `Content-Length` (the paper
    /// notes the snippet must set it correctly before sending, §4.2.1).
    pub fn post(target: impl Into<String>, body: Vec<u8>) -> Request {
        let mut headers = HeaderMap::new();
        headers.set("Content-Length", body.len().to_string());
        Request {
            method: Method::Post,
            target: target.into(),
            headers,
            body,
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// The path component of the target (before `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// The query component of the target (after `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Decoded query parameters.
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        self.query().map(rcb_url::percent::parse_query).unwrap_or_default()
    }

    /// First query parameter named `name`.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query_pairs()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Total serialized size in bytes (the unit the network simulator
    /// charges for).
    pub fn wire_len(&self) -> usize {
        crate::serialize::serialize_request(self).len()
    }

    /// Parses a cookie header into `(name, value)` pairs.
    pub fn cookies(&self) -> Vec<(String, String)> {
        self.headers
            .get("cookie")
            .map(|h| {
                h.split(';')
                    .filter_map(|kv| {
                        let (k, v) = kv.trim().split_once('=')?;
                        Some((k.to_string(), v.to_string()))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Header fields.
    pub headers: HeaderMap,
    /// Entity body.
    pub body: Vec<u8>,
}

impl Response {
    /// Builds a response with a typed body and correct `Content-Length`.
    pub fn with_body(status: Status, content_type: &str, body: Vec<u8>) -> Response {
        let mut headers = HeaderMap::new();
        headers.set("Content-Type", content_type);
        headers.set("Content-Length", body.len().to_string());
        Response {
            status,
            headers,
            body,
        }
    }

    /// A `text/html` 200 response — the initial-page reply (Fig. 2).
    pub fn html(body: impl Into<Vec<u8>>) -> Response {
        Response::with_body(Status::OK, "text/html; charset=utf-8", body.into())
    }

    /// An `application/xml` 200 response — the newContent reply (Fig. 2).
    pub fn xml(body: impl Into<Vec<u8>>) -> Response {
        Response::with_body(Status::OK, "application/xml; charset=utf-8", body.into())
    }

    /// An empty-content 200 response — "if no new content needs to be sent
    /// back, RCB-Agent sends a response with empty content ... to avoid
    /// hanging requests" (§4.1.1).
    pub fn empty_ok() -> Response {
        Response::with_body(Status::OK, "application/xml; charset=utf-8", Vec::new())
    }

    /// An error response with a plain-text body.
    pub fn error(status: Status, detail: &str) -> Response {
        Response::with_body(status, "text/plain; charset=utf-8", detail.as_bytes().to_vec())
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.set(name, value);
        self
    }

    /// The `Content-Type` without parameters, lower-cased.
    pub fn content_type(&self) -> Option<String> {
        self.headers.get("content-type").map(|v| {
            v.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
    }

    /// Total serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        crate::serialize::serialize_response(self).len()
    }

    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_tokens() {
        assert_eq!(Method::parse("GET").unwrap(), Method::Get);
        assert_eq!(Method::parse("POST").unwrap(), Method::Post);
        assert!(Method::parse("DELETE").is_err());
        assert_eq!(Method::Post.to_string(), "POST");
    }

    #[test]
    fn status_reasons() {
        assert_eq!(Status::OK.reason(), "OK");
        assert_eq!(Status::NOT_FOUND.reason(), "Not Found");
        assert!(Status::OK.is_success());
        assert!(!Status::NOT_FOUND.is_success());
    }

    #[test]
    fn request_target_decomposition() {
        let r = Request::get("/poll?hmac=abc&t=5");
        assert_eq!(r.path(), "/poll");
        assert_eq!(r.query(), Some("hmac=abc&t=5"));
        assert_eq!(r.query_param("hmac").as_deref(), Some("abc"));
        assert_eq!(r.query_param("t").as_deref(), Some("5"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn post_sets_content_length() {
        let r = Request::post("/poll", b"a=1".to_vec());
        assert_eq!(r.headers.content_length(), Some(3));
    }

    #[test]
    fn cookies_parse() {
        let r = Request::get("/").with_header("Cookie", "sid=xyz; theme=dark");
        assert_eq!(
            r.cookies(),
            vec![
                ("sid".to_string(), "xyz".to_string()),
                ("theme".to_string(), "dark".to_string())
            ]
        );
        assert!(Request::get("/").cookies().is_empty());
    }

    #[test]
    fn response_constructors() {
        let r = Response::html("<html></html>");
        assert_eq!(r.content_type().as_deref(), Some("text/html"));
        assert_eq!(r.headers.content_length(), Some(13));
        let x = Response::xml("<a/>");
        assert_eq!(x.content_type().as_deref(), Some("application/xml"));
        let e = Response::empty_ok();
        assert!(e.body.is_empty());
        assert!(e.status.is_success());
    }

    #[test]
    fn wire_len_is_positive() {
        assert!(Request::get("/").wire_len() > 10);
        assert!(Response::empty_ok().wire_len() > 10);
    }
}
