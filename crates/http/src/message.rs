//! HTTP request and response types.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use rcb_util::{RcbError, Result};

use crate::headers::HeaderMap;

/// HTTP request methods used by the RCB protocol.
///
/// New-connection and object requests use GET; Ajax polling requests
/// "always use the POST method because we want to directly piggyback action
/// information of a co-browsing participant onto a polling request"
/// (paper §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// HEAD.
    Head,
}

impl Method {
    /// Parses a method token.
    pub fn parse(token: &str) -> Result<Method> {
        match token {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "HEAD" => Ok(Method::Head),
            other => Err(RcbError::parse(
                "http",
                format!("unsupported method {other:?}"),
            )),
        }
    }

    /// The wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP status codes used by the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Status(pub u16);

impl Status {
    /// 200 OK.
    pub const OK: Status = Status(200);
    /// 302 Found.
    pub const FOUND: Status = Status(302);
    /// 304 Not Modified.
    pub const NOT_MODIFIED: Status = Status(304);
    /// 400 Bad Request.
    pub const BAD_REQUEST: Status = Status(400);
    /// 401 Unauthorized.
    pub const UNAUTHORIZED: Status = Status(401);
    /// 403 Forbidden.
    pub const FORBIDDEN: Status = Status(403);
    /// 404 Not Found.
    pub const NOT_FOUND: Status = Status(404);
    /// 413 Payload Too Large — a declared body over the server's limit.
    pub const PAYLOAD_TOO_LARGE: Status = Status(413);
    /// 431 Request Header Fields Too Large — a request head over the
    /// server's limit (including a slowloris head that never completes).
    pub const HEADER_TOO_LARGE: Status = Status(431);
    /// 500 Internal Server Error.
    pub const INTERNAL: Status = Status(500);
    /// 503 Service Unavailable — the load-shed reply; carries Retry-After.
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    /// Canonical reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request-target: absolute path plus optional query (`/poll?hmac=..`).
    pub target: String,
    /// Header fields.
    pub headers: HeaderMap,
    /// Entity body (empty for GET).
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a GET request for `target`.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            headers: HeaderMap::new(),
            body: Vec::new(),
        }
    }

    /// Builds a POST request with a body; sets `Content-Length` (the paper
    /// notes the snippet must set it correctly before sending, §4.2.1).
    pub fn post(target: impl Into<String>, body: Vec<u8>) -> Request {
        let mut headers = HeaderMap::new();
        headers.set("Content-Length", body.len().to_string());
        Request {
            method: Method::Post,
            target: target.into(),
            headers,
            body,
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// The path component of the target (before `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// The query component of the target (after `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Decoded query parameters.
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        self.query()
            .map(rcb_url::percent::parse_query)
            .unwrap_or_default()
    }

    /// First query parameter named `name`.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query_pairs()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Total serialized size in bytes (the unit the network simulator
    /// charges for).
    pub fn wire_len(&self) -> usize {
        crate::serialize::serialize_request(self).len()
    }

    /// Whether the client asked the server to close the connection after
    /// this request (`Connection: close`). Both server backends consult
    /// this before dispatching, so the response is still delivered.
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Parses a cookie header into `(name, value)` pairs.
    pub fn cookies(&self) -> Vec<(String, String)> {
        self.headers
            .get("cookie")
            .map(|h| {
                h.split(';')
                    .filter_map(|kv| {
                        let (k, v) = kv.trim().split_once('=')?;
                        Some((k.to_string(), v.to_string()))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// A response entity body: either bytes owned by this response, or a
/// reference-counted slice shared with other responses.
///
/// The paper's scalability claim (§5.1.2) rests on generated content being
/// "reusable for multiple participant browsers"; `Shared` makes that reuse
/// literal on the wire — every response for one content generation holds
/// the same `Arc<[u8]>`, and the server writes it to the socket without
/// ever materializing a per-request copy.
#[derive(Debug, Clone)]
pub enum Body {
    /// Bytes owned by this response alone.
    Owned(Vec<u8>),
    /// Bytes shared across responses (cloning the body clones a pointer).
    Shared(Arc<[u8]>),
}

impl Body {
    /// An empty owned body.
    pub fn empty() -> Body {
        Body::Owned(Vec::new())
    }

    /// The body bytes, whichever representation holds them.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(a) => a,
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Bytes that a clone of this body would heap-copy: the full length
    /// for `Owned`, zero for `Shared` (an `Arc` clone is a pointer bump).
    /// Instrumentation hooks use this to count per-request copy cost.
    pub fn copied_len(&self) -> usize {
        match self {
            Body::Owned(v) => v.len(),
            Body::Shared(_) => 0,
        }
    }

    /// Extracts owned bytes: a move for `Owned`, one copy for `Shared`.
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Body::Owned(v) => v,
            Body::Shared(a) => a.to_vec(),
        }
    }
}

impl Default for Body {
    fn default() -> Self {
        Body::empty()
    }
}

impl Deref for Body {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Body {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body::Owned(v)
    }
}

impl From<Arc<[u8]>> for Body {
    fn from(a: Arc<[u8]>) -> Body {
        Body::Shared(a)
    }
}

impl From<&[u8]> for Body {
    fn from(s: &[u8]) -> Body {
        Body::Owned(s.to_vec())
    }
}

impl From<String> for Body {
    fn from(s: String) -> Body {
        Body::Owned(s.into_bytes())
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Body {
        Body::Owned(s.as_bytes().to_vec())
    }
}

/// Converting a body into a shared slice is free for `Shared` (the `Arc`
/// moves) and one copy for `Owned` — so storing a downloaded response into
/// a browser cache that keeps `Arc<[u8]>` never double-copies.
impl From<Body> for Arc<[u8]> {
    fn from(b: Body) -> Arc<[u8]> {
        match b {
            Body::Owned(v) => Arc::from(v),
            Body::Shared(a) => a,
        }
    }
}

/// Bodies compare by bytes, not by representation: `Owned` and `Shared`
/// holding the same bytes are equal (they serialize identically).
impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Body {}

impl PartialEq<Vec<u8>> for Body {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u8]> for Body {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Body {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Body {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Body {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Header fields.
    pub headers: HeaderMap,
    /// Entity body.
    pub body: Body,
    /// Prefab wire image: the complete serialization (status line +
    /// headers + body) frozen by [`Response::into_prefab`]. When present,
    /// the server writes these bytes verbatim and serialization clones a
    /// pointer instead of assembling anything. Invariant: the bytes match
    /// the other fields exactly — every constructor that sets this field
    /// serializes the finished response, and [`Response::with_header`]
    /// drops it on mutation. Not part of equality (a parsed copy of a
    /// prefab response equals the original).
    prefab: Option<Arc<[u8]>>,
}

/// Responses compare by status, headers, and body bytes; the prefab cache
/// is a serialization detail and never affects equality.
impl PartialEq for Response {
    fn eq(&self, other: &Self) -> bool {
        self.status == other.status && self.headers == other.headers && self.body == other.body
    }
}

impl Eq for Response {}

impl Response {
    /// Builds a response with a typed body and correct `Content-Length`.
    pub fn with_body(status: Status, content_type: &str, body: impl Into<Body>) -> Response {
        let body = body.into();
        let mut headers = HeaderMap::new();
        headers.set("Content-Type", content_type);
        headers.set("Content-Length", body.len().to_string());
        Response {
            status,
            headers,
            body,
            prefab: None,
        }
    }

    /// Assembles a response from already-parsed parts (no prefab).
    pub fn from_parts(status: Status, headers: HeaderMap, body: impl Into<Body>) -> Response {
        Response {
            status,
            headers,
            body: body.into(),
            prefab: None,
        }
    }

    /// A `text/html` 200 response — the initial-page reply (Fig. 2).
    pub fn html(body: impl Into<Body>) -> Response {
        Response::with_body(Status::OK, "text/html; charset=utf-8", body)
    }

    /// An `application/xml` 200 response — the newContent reply (Fig. 2).
    pub fn xml(body: impl Into<Body>) -> Response {
        Response::with_body(Status::OK, "application/xml; charset=utf-8", body)
    }

    /// An empty-content 200 response — "if no new content needs to be sent
    /// back, RCB-Agent sends a response with empty content ... to avoid
    /// hanging requests" (§4.1.1).
    pub fn empty_ok() -> Response {
        Response::with_body(Status::OK, "application/xml; charset=utf-8", Body::empty())
    }

    /// An error response with a plain-text body.
    pub fn error(status: Status, detail: &str) -> Response {
        Response::with_body(status, "text/plain; charset=utf-8", detail.as_bytes())
    }

    /// Adds a header (builder style). Drops any prefab wire image, since
    /// the frozen bytes no longer match the headers.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.set(name, value);
        self.prefab = None;
        self
    }

    /// Freezes the response into a prefab wire image: serializes it once
    /// and remembers the bytes, so every subsequent send (and clone) is an
    /// `Arc` pointer bump instead of a head+body assembly. Build one per
    /// reusable response (content generation, cached object, static page)
    /// and serve clones of it.
    pub fn into_prefab(mut self) -> Response {
        self.prefab = Some(Arc::from(crate::serialize::serialize_response(&self)));
        self
    }

    /// The prefab wire image, if this response was frozen.
    pub fn prefab_bytes(&self) -> Option<&Arc<[u8]>> {
        self.prefab.as_ref()
    }

    /// Whether this response carries a prefab wire image.
    pub fn is_prefab(&self) -> bool {
        self.prefab.is_some()
    }

    /// The `Retry-After` header as delta-seconds, if present and numeric.
    /// The load-shed `503` carries this; clients feed it into their
    /// backoff so a shed storm converges instead of amplifying.
    pub fn retry_after(&self) -> Option<u64> {
        self.headers.get("retry-after")?.trim().parse().ok()
    }

    /// The `Content-Type` without parameters, lower-cased.
    pub fn content_type(&self) -> Option<String> {
        self.headers.get("content-type").map(|v| {
            v.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
    }

    /// Total serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        crate::serialize::serialize_response(self).len()
    }

    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_tokens() {
        assert_eq!(Method::parse("GET").unwrap(), Method::Get);
        assert_eq!(Method::parse("POST").unwrap(), Method::Post);
        assert!(Method::parse("DELETE").is_err());
        assert_eq!(Method::Post.to_string(), "POST");
    }

    #[test]
    fn status_reasons() {
        assert_eq!(Status::OK.reason(), "OK");
        assert_eq!(Status::NOT_FOUND.reason(), "Not Found");
        assert!(Status::OK.is_success());
        assert!(!Status::NOT_FOUND.is_success());
    }

    #[test]
    fn request_target_decomposition() {
        let r = Request::get("/poll?hmac=abc&t=5");
        assert_eq!(r.path(), "/poll");
        assert_eq!(r.query(), Some("hmac=abc&t=5"));
        assert_eq!(r.query_param("hmac").as_deref(), Some("abc"));
        assert_eq!(r.query_param("t").as_deref(), Some("5"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn post_sets_content_length() {
        let r = Request::post("/poll", b"a=1".to_vec());
        assert_eq!(r.headers.content_length().unwrap(), Some(3));
    }

    #[test]
    fn cookies_parse() {
        let r = Request::get("/").with_header("Cookie", "sid=xyz; theme=dark");
        assert_eq!(
            r.cookies(),
            vec![
                ("sid".to_string(), "xyz".to_string()),
                ("theme".to_string(), "dark".to_string())
            ]
        );
        assert!(Request::get("/").cookies().is_empty());
    }

    #[test]
    fn response_constructors() {
        let r = Response::html("<html></html>");
        assert_eq!(r.content_type().as_deref(), Some("text/html"));
        assert_eq!(r.headers.content_length().unwrap(), Some(13));
        let x = Response::xml("<a/>");
        assert_eq!(x.content_type().as_deref(), Some("application/xml"));
        let e = Response::empty_ok();
        assert!(e.body.is_empty());
        assert!(e.status.is_success());
    }

    #[test]
    fn wire_len_is_positive() {
        assert!(Request::get("/").wire_len() > 10);
        assert!(Response::empty_ok().wire_len() > 10);
    }
}
