//! Incremental HTTP/1.1 parsing.
//!
//! RCB-Agent attaches an asynchronous data listener to each accepted socket
//! and must cope with requests arriving in arbitrary chunks (paper §4.1.1,
//! the `nsIStreamListener` machinery). [`RequestParser`] mirrors that: feed
//! it byte slices as they arrive; it yields complete [`Request`]s when the
//! head and `Content-Length`-framed body are fully buffered.

use rcb_util::{RcbError, Result};

use crate::headers::HeaderMap;
use crate::message::{Method, Request, Response, Status};

/// Default maximum accepted head (request-line + headers) size.
pub const MAX_HEAD: usize = 64 * 1024;
/// Default maximum accepted body size (synthetic pages stay far below
/// this).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Why the parser refused the connection's byte stream. The engines
/// consult this after an `Err` from [`RequestParser::next_request`] to
/// pick the right prefab error reply — `431` for an oversized head, `413`
/// for an oversized declared body, `400` for anything malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseReject {
    /// Syntactically invalid input (→ `400`).
    Malformed,
    /// Head exceeded the configured limit before completing (→ `431`).
    HeadTooLarge,
    /// Declared `Content-Length` exceeded the configured limit (→ `413`).
    BodyTooLarge,
}

/// Incremental request parser for one connection.
#[derive(Debug)]
pub struct RequestParser {
    buffer: Vec<u8>,
    max_head: usize,
    max_body: usize,
    reject: Option<ParseReject>,
}

impl Default for RequestParser {
    fn default() -> Self {
        RequestParser::with_limits(MAX_HEAD, MAX_BODY)
    }
}

impl RequestParser {
    /// Creates a parser with an empty buffer and the default limits.
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Creates a parser with explicit head/body byte limits (the server's
    /// overload-protection knobs).
    pub fn with_limits(max_head: usize, max_body: usize) -> Self {
        RequestParser {
            buffer: Vec::new(),
            max_head,
            max_body,
            reject: None,
        }
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buffer.extend_from_slice(data);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Why the last [`next_request`](RequestParser::next_request) call
    /// returned `Err`, if it did.
    pub fn reject_reason(&self) -> Option<ParseReject> {
        self.reject
    }

    fn refuse<T>(&mut self, reason: ParseReject, detail: &'static str) -> Result<T> {
        self.reject = Some(reason);
        Err(RcbError::parse("http", detail))
    }

    /// Attempts to extract the next complete request.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(_))` when a
    /// full request was consumed, and `Err(_)` on malformed input (with
    /// [`reject_reason`](RequestParser::reject_reason) set).
    pub fn next_request(&mut self) -> Result<Option<Request>> {
        let Some(head_end) = find_double_crlf(&self.buffer) else {
            if self.buffer.len() > self.max_head {
                return self.refuse(ParseReject::HeadTooLarge, "request head too large");
            }
            return Ok(None);
        };
        if head_end > self.max_head {
            return self.refuse(ParseReject::HeadTooLarge, "request head too large");
        }
        let Ok(head) = std::str::from_utf8(&self.buffer[..head_end]) else {
            return self.refuse(ParseReject::Malformed, "non-UTF-8 request head");
        };
        let (method, target, headers) = match parse_request_head(head) {
            Ok(parts) => parts,
            Err(e) => {
                self.reject = Some(ParseReject::Malformed);
                return Err(e);
            }
        };
        // Absent Content-Length means no body; present-but-invalid is a
        // parse error (→ 400 and close), never treated as 0 — framing by
        // a guessed length is how request smuggling starts.
        let body_len = match headers.content_length() {
            Ok(len) => len.unwrap_or(0),
            Err(e) => {
                self.reject = Some(ParseReject::Malformed);
                return Err(e);
            }
        };
        if body_len > self.max_body {
            return self.refuse(ParseReject::BodyTooLarge, "declared body too large");
        }
        let total = head_end + 4 + body_len;
        if self.buffer.len() < total {
            return Ok(None);
        }
        let body = self.buffer[head_end + 4..total].to_vec();
        self.buffer.drain(..total);
        Ok(Some(Request {
            method,
            target,
            headers,
            body,
        }))
    }
}

/// Parses a complete request from a byte slice (errors if bytes remain).
pub fn parse_request(data: &[u8]) -> Result<Request> {
    let mut p = RequestParser::new();
    p.feed(data);
    match p.next_request()? {
        Some(req) if p.buffered() == 0 => Ok(req),
        Some(_) => Err(RcbError::parse("http", "trailing bytes after request")),
        None => Err(RcbError::parse("http", "incomplete request")),
    }
}

/// Parses a complete response from a byte slice.
pub fn parse_response(data: &[u8]) -> Result<Response> {
    let head_end = find_double_crlf(data)
        .ok_or_else(|| RcbError::parse("http", "incomplete response head"))?;
    let head = std::str::from_utf8(&data[..head_end])
        .map_err(|_| RcbError::parse("http", "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| RcbError::parse("http", "missing status line"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts
        .next()
        .ok_or_else(|| RcbError::parse("http", "missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RcbError::parse("http", format!("bad version {version:?}")));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| RcbError::parse("http", "bad status code"))?;
    let headers = parse_header_lines(lines)?;
    let body_start = head_end + 4;
    // Chunked transfer-encoding (RFC 2616 §3.6.1): real 2009 origins used
    // it heavily for dynamically generated pages.
    if headers
        .get("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    {
        let body = decode_chunked(&data[body_start..])?;
        return Ok(Response::from_parts(Status(code), headers, body));
    }
    let body_len = headers
        .content_length()?
        .unwrap_or(data.len() - head_end - 4);
    if data.len() < body_start + body_len {
        return Err(RcbError::parse("http", "truncated response body"));
    }
    Ok(Response::from_parts(
        Status(code),
        headers,
        data[body_start..body_start + body_len].to_vec(),
    ))
}

/// Decodes a chunked body: `size-hex CRLF data CRLF ... 0 CRLF CRLF`.
fn decode_chunked(mut data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len());
    loop {
        let line_end = data
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| RcbError::parse("http", "missing chunk-size line"))?;
        let size_line = std::str::from_utf8(&data[..line_end])
            .map_err(|_| RcbError::parse("http", "non-UTF-8 chunk size"))?;
        // Chunk extensions after ';' are ignored per spec.
        let size_token = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_token, 16)
            .map_err(|_| RcbError::parse("http", format!("bad chunk size {size_token:?}")))?;
        data = &data[line_end + 2..];
        if size == 0 {
            // Trailers (if any) run to the final blank line; accept both
            // an immediate CRLF and trailer fields.
            return Ok(out);
        }
        if data.len() < size + 2 {
            return Err(RcbError::parse("http", "truncated chunk"));
        }
        out.extend_from_slice(&data[..size]);
        if &data[size..size + 2] != b"\r\n" {
            return Err(RcbError::parse("http", "chunk missing terminator"));
        }
        data = &data[size + 2..];
    }
}

fn parse_request_head(head: &str) -> Result<(Method, String, HeaderMap)> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| RcbError::parse("http", "missing request line"))?;
    let mut parts = request_line.split(' ');
    let method = Method::parse(
        parts
            .next()
            .ok_or_else(|| RcbError::parse("http", "missing method"))?,
    )?;
    let target = parts
        .next()
        .ok_or_else(|| RcbError::parse("http", "missing request-target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RcbError::parse("http", "missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RcbError::parse("http", format!("bad version {version:?}")));
    }
    if parts.next().is_some() {
        return Err(RcbError::parse("http", "malformed request line"));
    }
    if target.is_empty() || (!target.starts_with('/') && target != "*") {
        return Err(RcbError::parse(
            "http",
            format!("bad request-target {target:?}"),
        ));
    }
    let headers = parse_header_lines(lines)?;
    Ok((method, target, headers))
}

pub(crate) fn parse_header_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Result<HeaderMap> {
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RcbError::parse("http", format!("malformed header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(RcbError::parse("http", format!("bad header name {name:?}")));
        }
        headers.append(name, value.trim());
    }
    Ok(headers)
}

fn find_double_crlf(data: &[u8]) -> Option<usize> {
    data.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{serialize_request, serialize_response};

    #[test]
    fn roundtrip_get() {
        let req = Request::get("/a?b=1").with_header("Host", "h");
        let parsed = parse_request(&serialize_request(&req)).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn roundtrip_post_with_body() {
        let req = Request::post("/poll", b"x=1&y=2".to_vec());
        let parsed = parse_request(&serialize_request(&req)).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn roundtrip_response() {
        let resp = Response::xml("<n/>").with_header("X-Custom", "v");
        let parsed = parse_response(&serialize_response(&resp)).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn incremental_feeding_byte_at_a_time() {
        let req = Request::post("/poll?hmac=ff", b"actions".to_vec());
        let wire = serialize_request(&req);
        let mut p = RequestParser::new();
        for (i, b) in wire.iter().enumerate() {
            p.feed(std::slice::from_ref(b));
            let got = p.next_request().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "request complete too early at byte {i}");
            } else {
                assert_eq!(got.unwrap(), req);
            }
        }
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_requests() {
        let a = Request::get("/a");
        let b = Request::post("/b", b"bb".to_vec());
        let mut wire = serialize_request(&a);
        wire.extend_from_slice(&serialize_request(&b));
        let mut p = RequestParser::new();
        p.feed(&wire);
        assert_eq!(p.next_request().unwrap().unwrap(), a);
        assert_eq!(p.next_request().unwrap().unwrap(), b);
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_request(b"GARBAGE\r\n\r\n").is_err());
        assert!(parse_request(b"GET /\r\n\r\n").is_err()); // missing version
        assert!(parse_request(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(parse_request(b"GET x HTTP/1.1\r\n\r\n").is_err()); // bad target
        assert!(parse_request(b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1 extra\r\n\r\n").is_err());
    }

    #[test]
    fn incomplete_returns_none_or_error() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\n");
        assert!(p.next_request().unwrap().is_none());
        // Body shorter than Content-Length → keep waiting.
        let mut p2 = RequestParser::new();
        p2.feed(b"POST /p HTTP/1.1\r\nContent-Length: 5\r\n\r\nab");
        assert!(p2.next_request().unwrap().is_none());
        p2.feed(b"cde");
        assert!(p2.next_request().unwrap().is_some());
    }

    #[test]
    fn invalid_content_length_is_a_parse_error_not_zero() {
        // The old behaviour mapped these to body_len = 0, splitting one
        // request into a bogus request plus trailing garbage.
        for bad in [
            &b"POST /p HTTP/1.1\r\nContent-Length: nan\r\n\r\nhello"[..],
            &b"POST /p HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello"[..],
            &b"POST /p HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!"[..],
            &b"POST /p HTTP/1.1\r\nContent-Length:\r\n\r\n"[..],
        ] {
            let mut p = RequestParser::new();
            p.feed(bad);
            assert!(
                p.next_request().is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
        // Identical duplicates still frame correctly.
        let mut p = RequestParser::new();
        p.feed(b"POST /p HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(p.next_request().unwrap().unwrap().body, b"hello");
    }

    #[test]
    fn response_with_invalid_content_length_rejected() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: zz\r\n\r\n").is_err());
        assert!(parse_response(
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nabc"
        )
        .is_err());
    }

    #[test]
    fn rejects_oversized_head() {
        let mut p = RequestParser::new();
        p.feed(&vec![b'a'; 70 * 1024]);
        assert!(p.next_request().is_err());
        assert_eq!(p.reject_reason(), Some(ParseReject::HeadTooLarge));
    }

    #[test]
    fn configured_limits_set_distinguishable_reject_reasons() {
        // A complete-but-oversized head trips the limit even though the
        // double-CRLF arrived.
        let mut p = RequestParser::with_limits(64, MAX_BODY);
        p.feed(
            b"GET / HTTP/1.1\r\nX-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n",
        );
        assert!(p.next_request().is_err());
        assert_eq!(p.reject_reason(), Some(ParseReject::HeadTooLarge));

        let mut p = RequestParser::with_limits(MAX_HEAD, 8);
        p.feed(b"POST /p HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789");
        assert!(p.next_request().is_err());
        assert_eq!(p.reject_reason(), Some(ParseReject::BodyTooLarge));

        let mut p = RequestParser::new();
        p.feed(b"GARBAGE\r\n\r\n");
        assert!(p.next_request().is_err());
        assert_eq!(p.reject_reason(), Some(ParseReject::Malformed));

        // A clean parse leaves no reject reason behind.
        let mut p = RequestParser::new();
        p.feed(&serialize_request(&Request::get("/ok")));
        assert!(p.next_request().unwrap().is_some());
        assert_eq!(p.reject_reason(), None);
    }

    #[test]
    fn response_without_content_length_takes_rest() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\nhello";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.body, b"hello");
    }

    #[test]
    fn chunked_response_decodes() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4\r\nWiki\r\n6\r\npedia \r\nB\r\nin \r\nchunks\r\n0\r\n\r\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.body, b"Wikipedia in \r\nchunks");
    }

    #[test]
    fn chunked_with_extension_and_uppercase_hex() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    A;ext=1\r\n0123456789\r\n0\r\n\r\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.body, b"0123456789");
    }

    #[test]
    fn chunked_rejects_malformed() {
        for raw in [
            &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nxx\r\n0\r\n\r\n"[..],
            &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab\r\n0\r\n\r\n"[..],
            &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nabcdXX0\r\n\r\n"[..],
        ] {
            assert!(parse_response(raw).is_err());
        }
    }

    #[test]
    fn trailing_bytes_rejected_by_oneshot() {
        let mut wire = serialize_request(&Request::get("/"));
        wire.extend_from_slice(b"junk-after");
        assert!(parse_request(&wire).is_err());
    }
}
