//! HTTP/1.1 wire serialization.
//!
//! Two producers: [`serialize_response`] materializes the full byte form
//! (clients, `wire_len`, prefab freezing), while [`write_response_to`] is
//! the server's zero-copy path — the head is assembled into a small
//! buffer and the body is handed to the socket straight from wherever it
//! lives (a shared `Arc<[u8]>` is never copied into a scratch buffer),
//! via vectored writes. Prefab responses skip even the head assembly.

use std::io::{self, IoSlice, Write};

use crate::message::{Request, Response};

/// Serializes a request into its on-the-wire byte form.
pub fn serialize_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(req.body.len() + 128);
    out.extend_from_slice(req.method.as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    for (name, value) in req.headers.iter() {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&req.body);
    out
}

/// Serializes a response head (status line + headers + blank line).
pub fn serialize_response_head(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status.0, resp.status.reason()).as_bytes(),
    );
    for (name, value) in resp.headers.iter() {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out
}

/// Serializes a response into its on-the-wire byte form (one allocation;
/// prefab responses return a copy of the frozen image).
pub fn serialize_response(resp: &Response) -> Vec<u8> {
    if let Some(prefab) = resp.prefab_bytes() {
        return prefab.to_vec();
    }
    let mut out = serialize_response_head(resp);
    out.extend_from_slice(&resp.body);
    out
}

/// Writes a response to `w` without materializing head+body into one
/// buffer: prefab responses are written verbatim from the frozen image;
/// otherwise the head is assembled (~128 bytes) and the body is written
/// straight from its own storage via vectored I/O. This is what makes
/// `Body::Shared` zero-copy end to end — the shared bytes travel from the
/// `Arc` to the socket with no intermediate heap copy.
pub fn write_response_to<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    if let Some(prefab) = resp.prefab_bytes() {
        return w.write_all(prefab);
    }
    let head = serialize_response_head(resp);
    let body = resp.body.as_slice();
    if body.is_empty() {
        return w.write_all(&head);
    }
    let total = head.len() + body.len();
    let mut written = 0usize;
    while written < total {
        let result = if written < head.len() {
            let bufs = [IoSlice::new(&head[written..]), IoSlice::new(body)];
            w.write_vectored(&bufs)
        } else {
            w.write(&body[written - head.len()..])
        };
        match result {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            // Retry on EINTR, matching `write_all` semantics.
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Progress of a resumable response write on a nonblocking socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProgress {
    /// The response is fully on the wire.
    Done,
    /// The kernel buffer filled mid-response (`EWOULDBLOCK`); call
    /// [`ResponseWriter::write_some`] again when the socket is writable.
    Blocked,
}

/// A response mid-flight on a nonblocking socket.
///
/// The event-driven server backend cannot use [`write_response_to`]
/// directly: a nonblocking write can stop anywhere inside the response and
/// must resume from exactly that byte on the next writability event. This
/// writer owns the response (keeping prefab images and shared bodies alive
/// without copying them) plus a byte cursor, and preserves the zero-copy
/// shape: prefab images go to the socket verbatim from their `Arc`, and
/// non-prefab responses assemble only the ~128-byte head, with the body
/// written straight from its own storage via vectored I/O.
#[derive(Debug)]
pub struct ResponseWriter {
    resp: Response,
    /// Assembled head for non-prefab responses (`None` when prefab).
    head: Option<Vec<u8>>,
    written: usize,
}

impl ResponseWriter {
    /// Starts a resumable write of `resp` from byte zero.
    pub fn new(resp: Response) -> ResponseWriter {
        let head = if resp.is_prefab() {
            None
        } else {
            Some(serialize_response_head(&resp))
        };
        ResponseWriter {
            resp,
            head,
            written: 0,
        }
    }

    /// Total bytes this response occupies on the wire.
    pub fn total_len(&self) -> usize {
        match self.resp.prefab_bytes() {
            Some(prefab) => prefab.len(),
            None => self.head.as_ref().map_or(0, Vec::len) + self.resp.body.len(),
        }
    }

    /// Bytes already written.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Writes as much as the socket accepts, resuming from the cursor.
    ///
    /// Returns [`WriteProgress::Blocked`] on `EWOULDBLOCK` (re-arm for
    /// writability and retry later); retries `EINTR` internally; any other
    /// error (including a zero-length write) is fatal for the connection.
    pub fn write_some<W: Write>(&mut self, w: &mut W) -> io::Result<WriteProgress> {
        loop {
            // Test-only fault hook (inert in production builds): an armed
            // Write fault stands in for the socket's verdict — an injected
            // EWOULDBLOCK parks the cursor exactly like a full kernel
            // buffer, which is how the resumption tests provoke partial
            // writes without contorting real socket state.
            if let Some(e) = rcb_util::fault::take(rcb_util::fault::Op::Write) {
                if e.kind() == io::ErrorKind::WouldBlock {
                    return Ok(WriteProgress::Blocked);
                }
                return Err(e);
            }
            let head = self.head.as_deref().unwrap_or(&[]);
            let (total, result) = if let Some(prefab) = self.resp.prefab_bytes() {
                if self.written >= prefab.len() {
                    return Ok(WriteProgress::Done);
                }
                (prefab.len(), w.write(&prefab[self.written..]))
            } else {
                let body = self.resp.body.as_slice();
                let total = head.len() + body.len();
                if self.written >= total {
                    return Ok(WriteProgress::Done);
                }
                let result = if self.written < head.len() {
                    let bufs = [IoSlice::new(&head[self.written..]), IoSlice::new(body)];
                    w.write_vectored(&bufs)
                } else {
                    w.write(&body[self.written - head.len()..])
                };
                (total, result)
            };
            match result {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.written += n;
                    if self.written >= total {
                        return Ok(WriteProgress::Done);
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(WriteProgress::Blocked)
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Request, Response};

    #[test]
    fn request_wire_form() {
        let req = Request::get("/x").with_header("Host", "h");
        let wire = serialize_request(&req);
        let s = String::from_utf8(wire).unwrap();
        assert!(s.starts_with("GET /x HTTP/1.1\r\n"));
        assert!(s.contains("Host: h\r\n"));
        assert!(s.ends_with("\r\n\r\n"));
    }

    #[test]
    fn post_includes_body() {
        let req = Request::post("/poll", b"payload".to_vec());
        let s = String::from_utf8(serialize_request(&req)).unwrap();
        assert!(s.ends_with("\r\n\r\npayload"));
        assert!(s.contains("Content-Length: 7\r\n"));
    }

    #[test]
    fn response_wire_form() {
        let resp = Response::html("<p>x</p>");
        let s = String::from_utf8(serialize_response(&resp)).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.ends_with("\r\n\r\n<p>x</p>"));
    }

    #[test]
    fn shared_and_owned_bodies_serialize_identically() {
        use crate::message::{Body, Status};
        use std::sync::Arc;
        let bytes = b"<n>shared</n>".to_vec();
        let owned = Response::with_body(Status::OK, "application/xml", bytes.clone());
        let shared = Response::with_body(
            Status::OK,
            "application/xml",
            Body::Shared(Arc::from(bytes.as_slice())),
        );
        assert_eq!(serialize_response(&owned), serialize_response(&shared));
        let mut sink_o = Vec::new();
        let mut sink_s = Vec::new();
        write_response_to(&mut sink_o, &owned).unwrap();
        write_response_to(&mut sink_s, &shared).unwrap();
        assert_eq!(sink_o, serialize_response(&owned));
        assert_eq!(sink_s, sink_o);
    }

    #[test]
    fn prefab_writes_frozen_image_verbatim() {
        let resp = Response::xml("<n>prefab</n>");
        let plain_wire = serialize_response(&resp);
        let prefab = resp.into_prefab();
        assert!(prefab.is_prefab());
        assert_eq!(serialize_response(&prefab), plain_wire);
        let mut sink = Vec::new();
        write_response_to(&mut sink, &prefab).unwrap();
        assert_eq!(sink, plain_wire);
        // A clone shares the frozen image (pointer equality, no re-serialize).
        let clone = prefab.clone();
        assert!(std::sync::Arc::ptr_eq(
            prefab.prefab_bytes().unwrap(),
            clone.prefab_bytes().unwrap()
        ));
        // Mutating headers drops the image rather than desyncing it.
        let mutated = prefab.with_header("X-Extra", "1");
        assert!(!mutated.is_prefab());
        assert!(String::from_utf8(serialize_response(&mutated))
            .unwrap()
            .contains("X-Extra: 1\r\n"));
    }

    /// A writer that accepts at most `cap` bytes per call, exercising the
    /// partial-write resume logic in `write_response_to`.
    struct Trickle {
        out: Vec<u8>,
        cap: usize,
    }

    impl std::io::Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
            let mut left = self.cap;
            for b in bufs {
                if left == 0 {
                    break;
                }
                let n = b.len().min(left);
                self.out.extend_from_slice(&b[..n]);
                left -= n;
            }
            Ok(self.cap - left)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A writer that signals `WouldBlock` after accepting `burst` bytes,
    /// mimicking a nonblocking socket whose kernel buffer fills.
    struct Choky {
        out: Vec<u8>,
        burst: usize,
        accepted: usize,
    }

    impl std::io::Write for Choky {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.accepted >= self.burst {
                self.accepted = 0;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.burst - self.accepted);
            self.out.extend_from_slice(&buf[..n]);
            self.accepted += n;
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn response_writer_resumes_across_would_block() {
        use crate::message::{Body, Status};
        use std::sync::Arc;
        let body: Vec<u8> = (0..=255u8).cycle().take(3000).collect();
        let shared = Response::with_body(
            Status::OK,
            "application/octet-stream",
            Body::Shared(Arc::from(body.as_slice())),
        );
        let prefab = shared.clone().into_prefab();
        for resp in [shared, prefab] {
            let expect = serialize_response(&resp);
            for burst in [1, 7, 100, 4096] {
                let mut sink = Choky {
                    out: Vec::new(),
                    burst,
                    accepted: 0,
                };
                let mut writer = ResponseWriter::new(resp.clone());
                assert_eq!(writer.total_len(), expect.len());
                let mut rounds = 0;
                loop {
                    match writer.write_some(&mut sink).unwrap() {
                        WriteProgress::Done => break,
                        WriteProgress::Blocked => rounds += 1,
                    }
                    assert!(rounds < 100_000, "no forward progress at burst {burst}");
                }
                assert_eq!(sink.out, expect, "burst {burst}");
                assert_eq!(writer.written(), expect.len());
                // Idempotent once done.
                assert_eq!(writer.write_some(&mut sink).unwrap(), WriteProgress::Done);
            }
        }
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        use crate::message::{Body, Status};
        use std::sync::Arc;
        let body: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let resp = Response::with_body(
            Status::OK,
            "application/octet-stream",
            Body::Shared(Arc::from(body.as_slice())),
        );
        for cap in [1, 3, 7, 64, 4096] {
            let mut t = Trickle {
                out: Vec::new(),
                cap,
            };
            write_response_to(&mut t, &resp).unwrap();
            assert_eq!(t.out, serialize_response(&resp), "cap {cap}");
        }
    }
}
