//! HTTP/1.1 wire serialization.

use crate::message::{Request, Response};

/// Serializes a request into its on-the-wire byte form.
pub fn serialize_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(req.body.len() + 128);
    out.extend_from_slice(req.method.as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    for (name, value) in req.headers.iter() {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&req.body);
    out
}

/// Serializes a response into its on-the-wire byte form.
pub fn serialize_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(resp.body.len() + 128);
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status.0, resp.status.reason()).as_bytes(),
    );
    for (name, value) in resp.headers.iter() {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&resp.body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Request, Response};

    #[test]
    fn request_wire_form() {
        let req = Request::get("/x").with_header("Host", "h");
        let wire = serialize_request(&req);
        let s = String::from_utf8(wire).unwrap();
        assert!(s.starts_with("GET /x HTTP/1.1\r\n"));
        assert!(s.contains("Host: h\r\n"));
        assert!(s.ends_with("\r\n\r\n"));
    }

    #[test]
    fn post_includes_body() {
        let req = Request::post("/poll", b"payload".to_vec());
        let s = String::from_utf8(serialize_request(&req)).unwrap();
        assert!(s.ends_with("\r\n\r\npayload"));
        assert!(s.contains("Content-Length: 7\r\n"));
    }

    #[test]
    fn response_wire_form() {
        let resp = Response::html("<p>x</p>");
        let s = String::from_utf8(serialize_response(&resp)).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.ends_with("\r\n\r\n<p>x</p>"));
    }
}
