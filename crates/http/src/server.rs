//! A bounded worker-pool TCP HTTP server.
//!
//! This is the real-socket face of RCB-Agent: "a co-browsing host starts
//! running RCB-Agent on the host browser with an open TCP port (e.g., 3000)"
//! (paper §3.1, step 1). Connections are accepted onto a bounded queue and
//! multiplexed across a fixed pool of worker threads, so participant count
//! is decoupled from thread count: each worker pops a connection, services
//! whatever complete requests have arrived (keep-alive supported), and
//! rotates the connection back onto the queue. A connection closes on parse
//! error, client close, or `Connection: close`.
//!
//! The accept loop never dies on a transient `accept(2)` error (EMFILE
//! under load, ECONNABORTED, EINTR, ...): it backs off exponentially and
//! retries, exiting only on shutdown. Before this design a single such
//! error permanently killed the listener mid-session.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rcb_util::Result;

use crate::message::{Request, Response};
use crate::parse::RequestParser;
use crate::serialize::write_response_to;

/// The request handler type: shared across worker threads.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// Worker-pool and queue sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads servicing connections (the concurrency bound).
    pub workers: usize,
    /// Maximum connections admitted onto the queue before the accept loop
    /// applies backpressure (waits for capacity).
    pub queue_capacity: usize,
    /// How long a worker waits for bytes on one connection before rotating
    /// it back onto the queue. Smaller values lower worst-case latency
    /// under many idle connections; larger values reduce queue churn.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_capacity: 256,
            read_timeout: Duration::from_millis(2),
        }
    }
}

/// Initial backoff after a transient `accept(2)` error.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
/// Backoff ceiling — EMFILE storms retry twice a second, not in a hot loop.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Doubles an accept backoff up to the ceiling.
fn next_accept_backoff(current: Duration) -> Duration {
    (current * 2).min(ACCEPT_BACKOFF_MAX)
}

/// One live connection plus its incremental parse state, as it travels
/// between the queue and workers.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
}

/// What a worker decided after one service pass over a connection.
enum ConnFate {
    /// Still healthy: rotate back onto the queue.
    Keep,
    /// Closed by the client, by protocol (`Connection: close` / parse
    /// error), or by an I/O error: drop it.
    Close,
}

/// The bounded connection queue shared by the accept loop and workers.
struct ConnQueue {
    inner: Mutex<VecDeque<Conn>>,
    /// Signaled when a connection is queued (workers wait on this).
    readable: Condvar,
    /// Signaled when a pop frees capacity (the accept loop waits on this
    /// while applying backpressure).
    writable: Condvar,
    capacity: usize,
    stop: AtomicBool,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(VecDeque::new()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
            stop: AtomicBool::new(false),
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Admits a newly accepted connection, waiting while the queue is at
    /// capacity (backpressure on the accept loop). Returns `false` (and
    /// drops the connection) when shutting down.
    fn push_accepted(&self, conn: Conn) -> bool {
        let mut q = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while q.len() >= self.capacity {
            if self.stopped() {
                return false;
            }
            // Timeout only as a stop-flag safety net; pops signal
            // `writable` the moment capacity frees.
            let (guard, _) = self
                .writable
                .wait_timeout(q, Duration::from_millis(10))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
        }
        if self.stopped() {
            return false;
        }
        q.push_back(conn);
        self.readable.notify_one();
        true
    }

    /// Rotates a serviced connection back. Never blocks: workers must not
    /// deadlock against a full queue, so rotation may transiently exceed
    /// capacity by at most the worker count.
    fn push_rotated(&self, conn: Conn) {
        if self.stopped() {
            return;
        }
        let mut q = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        q.push_back(conn);
        self.readable.notify_one();
    }

    /// Pops the next connection, waiting up to `timeout`.
    fn pop(&self, timeout: Duration) -> Option<Conn> {
        let mut q = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if q.is_empty() && !self.stopped() {
            let (guard, _) = self
                .readable
                .wait_timeout(q, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
        }
        let conn = q.pop_front();
        if conn.is_some() && q.len() < self.capacity {
            self.writable.notify_one();
        }
        conn
    }
}

/// A running HTTP server; dropping it (or calling [`HttpServer::shutdown`])
/// stops the accept loop, drains workers, and joins all threads.
pub struct HttpServer {
    addr: SocketAddr,
    queue: Arc<ConnQueue>,
    accept_errors: Arc<AtomicU64>,
    threads: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds with the default pool sizing (see [`ServerConfig`]).
    pub fn bind(addr: &str, handler: Handler) -> Result<HttpServer> {
        Self::bind_with(addr, handler, ServerConfig::default())
    }

    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread plus `config.workers` worker threads.
    pub fn bind_with(addr: &str, handler: Handler, config: ServerConfig) -> Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let queue = Arc::new(ConnQueue::new(config.queue_capacity.max(1)));
        let accept_errors = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::with_capacity(config.workers + 1);

        let accept_queue = Arc::clone(&queue);
        let errors = Arc::clone(&accept_errors);
        threads.push(std::thread::spawn(move || {
            accept_loop(listener, accept_queue, errors);
        }));

        for _ in 0..config.workers.max(1) {
            let worker_queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let read_timeout = config.read_timeout;
            threads.push(std::thread::spawn(move || {
                while !worker_queue.stopped() {
                    let Some(mut conn) = worker_queue.pop(Duration::from_millis(50)) else {
                        continue;
                    };
                    match service_connection(&mut conn, &handler, read_timeout) {
                        ConnFate::Keep => worker_queue.push_rotated(conn),
                        ConnFate::Close => {}
                    }
                }
            }));
        }

        Ok(HttpServer {
            addr: local,
            queue,
            accept_errors,
            threads,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Transient `accept(2)` errors survived so far (the loop retries them
    /// with backoff instead of dying).
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(&mut self) {
        self.queue.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The accept loop: admit connections, survive transient errors.
fn accept_loop(listener: TcpListener, queue: Arc<ConnQueue>, errors: Arc<AtomicU64>) {
    let mut backoff = ACCEPT_BACKOFF_START;
    while !queue.stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_START;
                queue.push_accepted(Conn {
                    stream,
                    parser: RequestParser::new(),
                });
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // EMFILE, ECONNABORTED, EINTR, ...: all transient from the
                // listener's point of view. Back off and retry; only a
                // shutdown request ends the loop.
                errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = next_accept_backoff(backoff);
            }
        }
    }
}

/// One service pass: read whatever arrived within `read_timeout`, serve
/// every complete request, report whether the connection stays alive.
fn service_connection(conn: &mut Conn, handler: &Handler, read_timeout: Duration) -> ConnFate {
    if conn.stream.set_read_timeout(Some(read_timeout)).is_err() {
        return ConnFate::Close;
    }
    let mut buf = [0u8; 16 * 1024];
    // Drain reads until the socket has nothing more for us this pass; the
    // first empty read rotates the connection so one chatty client cannot
    // pin a worker.
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => return ConnFate::Close, // client closed
            Ok(n) => {
                conn.parser.feed(&buf[..n]);
                loop {
                    match conn.parser.next_request() {
                        Ok(Some(req)) => {
                            let close = req
                                .headers
                                .get("connection")
                                .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                            let resp = handler(req);
                            // Zero-copy send: prefab images and shared
                            // bodies go to the socket from their own
                            // storage, never through a scratch buffer.
                            if write_response_to(&mut conn.stream, &resp).is_err()
                                || conn.stream.flush().is_err()
                            {
                                return ConnFate::Close;
                            }
                            if close {
                                return ConnFate::Close;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            let resp = Response::error(
                                crate::message::Status::BAD_REQUEST,
                                "malformed request",
                            );
                            let _ = write_response_to(&mut conn.stream, &resp);
                            return ConnFate::Close;
                        }
                    }
                }
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return ConnFate::Keep; // idle: rotate
            }
            Err(_) => return ConnFate::Close,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::send_request;
    use crate::message::{Request, Status};

    fn echo_handler() -> Handler {
        Arc::new(|req: Request| {
            Response::with_body(
                Status::OK,
                "text/plain",
                format!("{} {}", req.method, req.target).into_bytes(),
            )
        })
    }

    #[test]
    fn serves_single_request() {
        let mut server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.addr();
        let resp = send_request(&addr.to_string(), &Request::get("/hello")).unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.body_str(), "GET /hello");
        server.shutdown();
    }

    #[test]
    fn serves_keepalive_sequence() {
        let mut server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        for i in 0..3 {
            let req = Request::get(format!("/r{i}"));
            stream
                .write_all(&crate::serialize::serialize_request(&req))
                .unwrap();
            let resp = crate::client::read_response(&mut stream).unwrap();
            assert_eq!(resp.body_str(), format!("GET /r{i}"));
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let mut server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let resp =
                        send_request(&addr, &Request::get(format!("/c{i}"))).unwrap();
                    assert_eq!(resp.body_str(), format!("GET /c{i}"));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn more_connections_than_workers_all_serviced() {
        // 2 workers, 12 persistent clients, several keep-alive requests
        // each: the pool must multiplex, not starve (the old design used a
        // thread per connection; this one cannot).
        let mut server = HttpServer::bind_with(
            "127.0.0.1:0",
            echo_handler(),
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
                read_timeout: Duration::from_millis(2),
            },
        )
        .unwrap();
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut conn = crate::client::HttpConnection::connect(&addr).unwrap();
                    for j in 0..4 {
                        let resp = conn
                            .round_trip(&Request::get(format!("/c{i}/r{j}")))
                            .unwrap();
                        assert_eq!(resp.body_str(), format!("GET /c{i}/r{j}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let mut server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let resp = crate::client::read_response(&mut stream).unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        server.shutdown();
    }

    #[test]
    fn accept_backoff_doubles_to_ceiling() {
        let mut b = ACCEPT_BACKOFF_START;
        let mut seen = vec![b];
        for _ in 0..12 {
            b = next_accept_backoff(b);
            seen.push(b);
        }
        assert!(seen.windows(2).all(|w| w[1] >= w[0]), "monotone");
        assert_eq!(*seen.last().unwrap(), ACCEPT_BACKOFF_MAX, "capped");
        assert_eq!(seen[1], ACCEPT_BACKOFF_START * 2);
    }

    #[test]
    fn survives_connection_churn() {
        // Open-and-drop many sockets quickly (aborted connections surface
        // as transient conditions on some platforms); the listener must
        // still serve afterwards.
        let mut server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.addr().to_string();
        for _ in 0..50 {
            let s = TcpStream::connect(&addr).unwrap();
            drop(s);
        }
        let resp = send_request(&addr, &Request::get("/alive")).unwrap();
        assert_eq!(resp.body_str(), "GET /alive");
        server.shutdown();
    }
}
